"""Tests for the bounded top-weight priority queue."""

import pytest

from repro.utils import BoundedTopQueue


class TestBoundedTopQueue:
    def test_keeps_top_weighted_items(self):
        queue = BoundedTopQueue(2)
        queue.push(0.1, "low")
        queue.push(0.9, "high")
        queue.push(0.5, "mid")
        assert queue.items() == ["high", "mid"]

    def test_eviction_returns_displaced_item(self):
        queue = BoundedTopQueue(1)
        assert queue.push(0.5, "a") is None
        assert queue.push(0.9, "b") == "a"
        assert queue.push(0.1, "c") == "c"  # rejected item is "evicted" immediately

    def test_min_weight_tracks_admission_threshold(self):
        queue = BoundedTopQueue(2)
        assert queue.min_weight == 0.0
        queue.push(0.4, "a")
        assert queue.min_weight == 0.0  # not yet full
        queue.push(0.7, "b")
        assert queue.min_weight == pytest.approx(0.4)
        queue.push(0.9, "c")
        assert queue.min_weight == pytest.approx(0.7)

    def test_items_ordered_by_decreasing_weight(self):
        queue = BoundedTopQueue(3)
        for weight, item in [(0.2, "c"), (0.9, "a"), (0.5, "b")]:
            queue.push(weight, item)
        assert queue.items() == ["a", "b", "c"]
        assert queue.weighted_items()[0] == (0.9, "a")

    def test_ties_keep_earlier_insertions(self):
        queue = BoundedTopQueue(1)
        queue.push(0.5, "first")
        evicted = queue.push(0.5, "second")
        assert evicted == "second"
        assert queue.items() == ["first"]

    def test_contains(self):
        queue = BoundedTopQueue(2)
        queue.push(0.5, "x")
        assert "x" in queue
        assert "y" not in queue

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedTopQueue(0)

    def test_len_and_iter(self):
        queue = BoundedTopQueue(5)
        for index in range(3):
            queue.push(index / 10, index)
        assert len(queue) == 3
        assert list(queue) == [2, 1, 0]


class TestDeterministicTieKeys:
    def test_explicit_keys_break_ties_order_independently(self):
        """Among equal weights the smallest key survives, however pushed."""
        for order in ([(7, "g"), (3, "c"), (5, "e")], [(5, "e"), (7, "g"), (3, "c")]):
            queue = BoundedTopQueue(2)
            for key, item in order:
                queue.push(0.5, item, key=key)
            assert queue.items() == ["c", "e"]

    def test_key_beats_insertion_order(self):
        queue = BoundedTopQueue(1)
        queue.push(0.5, "late-key", key=9)
        evicted = queue.push(0.5, "early-key", key=1)
        assert evicted == "late-key"
        assert queue.items() == ["early-key"]

    def test_weight_still_dominates_key(self):
        queue = BoundedTopQueue(1)
        queue.push(0.4, "low", key=1)
        assert queue.push(0.9, "high", key=99) == "low"
        assert queue.items() == ["high"]


class TestLazyDeletion:
    def test_discard_frees_a_slot(self):
        queue = BoundedTopQueue(2)
        queue.push(0.9, "a")
        queue.push(0.8, "b")
        assert queue.min_weight == pytest.approx(0.8)
        assert queue.discard("b") is True
        assert len(queue) == 1
        assert "b" not in queue
        assert queue.min_weight == 0.0  # not full any more
        assert queue.push(0.1, "c") is None  # freed slot admits a weak item
        assert queue.items() == ["a", "c"]

    def test_discard_unknown_item_is_a_safe_no_op(self):
        queue = BoundedTopQueue(2)
        queue.push(0.9, "a")
        assert queue.discard("ghost") is False
        assert queue.discard("a") is True
        assert queue.discard("a") is False  # already gone
        assert len(queue) == 0

    def test_dead_entries_are_skimmed_from_the_threshold(self):
        queue = BoundedTopQueue(3)
        queue.push(0.2, "low")
        queue.push(0.5, "mid")
        queue.push(0.9, "high")
        queue.discard("low")
        queue.push(0.3, "fill")
        # the tombstoned 0.2 entry must not masquerade as the minimum
        assert queue.min_weight == pytest.approx(0.3)
        assert queue.items() == ["high", "mid", "fill"]

    def test_discarded_then_repushed_item(self):
        queue = BoundedTopQueue(2)
        queue.push(0.6, "x")
        queue.discard("x")
        queue.push(0.7, "x")
        assert "x" in queue
        assert queue.weighted_items() == [(0.7, "x")]
