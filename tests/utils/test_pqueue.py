"""Tests for the bounded top-weight priority queue."""

import pytest

from repro.utils import BoundedTopQueue


class TestBoundedTopQueue:
    def test_keeps_top_weighted_items(self):
        queue = BoundedTopQueue(2)
        queue.push(0.1, "low")
        queue.push(0.9, "high")
        queue.push(0.5, "mid")
        assert queue.items() == ["high", "mid"]

    def test_eviction_returns_displaced_item(self):
        queue = BoundedTopQueue(1)
        assert queue.push(0.5, "a") is None
        assert queue.push(0.9, "b") == "a"
        assert queue.push(0.1, "c") == "c"  # rejected item is "evicted" immediately

    def test_min_weight_tracks_admission_threshold(self):
        queue = BoundedTopQueue(2)
        assert queue.min_weight == 0.0
        queue.push(0.4, "a")
        assert queue.min_weight == 0.0  # not yet full
        queue.push(0.7, "b")
        assert queue.min_weight == pytest.approx(0.4)
        queue.push(0.9, "c")
        assert queue.min_weight == pytest.approx(0.7)

    def test_items_ordered_by_decreasing_weight(self):
        queue = BoundedTopQueue(3)
        for weight, item in [(0.2, "c"), (0.9, "a"), (0.5, "b")]:
            queue.push(weight, item)
        assert queue.items() == ["a", "b", "c"]
        assert queue.weighted_items()[0] == (0.9, "a")

    def test_ties_keep_earlier_insertions(self):
        queue = BoundedTopQueue(1)
        queue.push(0.5, "first")
        evicted = queue.push(0.5, "second")
        assert evicted == "second"
        assert queue.items() == ["first"]

    def test_contains(self):
        queue = BoundedTopQueue(2)
        queue.push(0.5, "x")
        assert "x" in queue
        assert "y" not in queue

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedTopQueue(0)

    def test_len_and_iter(self):
        queue = BoundedTopQueue(5)
        for index in range(3):
            queue.push(index / 10, index)
        assert len(queue) == 3
        assert list(queue) == [2, 1, 0]
