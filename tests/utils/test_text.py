"""Tests for text normalisation and signature extraction."""

import pytest

from repro.utils import (
    distinct_qgrams,
    distinct_suffixes,
    distinct_tokens,
    jaccard,
    normalize,
    qgrams,
    suffixes,
    tokens,
)


class TestNormalize:
    def test_lowercase_and_punctuation(self):
        assert normalize("Apple iPhone-X!") == "apple iphone-x!"

    def test_accent_stripping(self):
        assert normalize("Café Münster") == "cafe munster"

    def test_empty(self):
        assert normalize("") == ""


class TestTokens:
    def test_basic_tokenisation(self):
        assert tokens("Apple iPhone X") == ["apple", "iphone", "x"]

    def test_punctuation_split(self):
        assert tokens("samsung-s20, 128GB") == ["samsung", "s20", "128gb"]

    def test_min_length_filter(self):
        assert tokens("a bb ccc", min_length=2) == ["bb", "ccc"]

    def test_stop_word_removal(self):
        assert tokens("the apple and the orange", remove_stop_words=True) == [
            "apple",
            "orange",
        ]

    def test_distinct_tokens(self):
        assert distinct_tokens("apple apple banana") == {"apple", "banana"}

    def test_same_signature_after_case_and_punctuation(self):
        assert distinct_tokens("iPhone-X") == distinct_tokens("iphone x")


class TestQGrams:
    def test_trigram_extraction(self):
        assert qgrams("abcd", q=3) == ["abc", "bcd"]

    def test_short_token_kept_whole(self):
        assert qgrams("ab", q=3) == ["ab"]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_distinct_qgrams(self):
        assert distinct_qgrams("aaaa", q=2) == {"aa"}


class TestSuffixes:
    def test_suffix_extraction(self):
        assert suffixes("abcde", min_suffix_length=3) == ["abcde", "bcde", "cde"]

    def test_short_token_kept_whole(self):
        assert suffixes("ab", min_suffix_length=3) == ["ab"]

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            suffixes("abc", min_suffix_length=0)

    def test_distinct_suffixes_over_multiple_tokens(self):
        result = distinct_suffixes("abcd wxyz", min_suffix_length=3)
        assert "bcd" in result and "xyz" in result


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(0.5)

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 0.0
