"""Tests for RNG helpers, timing utilities and validation functions."""

import time

import numpy as np
import pytest

from repro.utils import StageTimer, make_rng, sample_without_replacement, spawn_seeds, speedup
from repro.utils.validation import (
    check_binary_labels,
    check_consistent_length,
    check_matrix,
    check_positive,
    check_positive_int,
    check_probability,
    check_ratio,
)


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        assert make_rng(42).integers(0, 100, 5).tolist() == make_rng(42).integers(0, 100, 5).tolist()

    def test_make_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_spawn_seeds_deterministic_and_distinct(self):
        seeds = spawn_seeds(7, 5)
        assert seeds == spawn_seeds(7, 5)
        assert len(set(seeds)) == 5

    def test_spawn_seeds_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_sample_without_replacement_distinct(self):
        rng = make_rng(0)
        sample = sample_without_replacement(rng, 100, 10)
        assert len(sample) == 10
        assert len(set(sample.tolist())) == 10

    def test_sample_without_replacement_oversized_returns_all(self):
        rng = make_rng(0)
        sample = sample_without_replacement(rng, 5, 10)
        assert sorted(sample.tolist()) == [0, 1, 2, 3, 4]


class TestStageTimer:
    def test_stage_accumulates(self):
        timer = StageTimer()
        with timer.stage("work"):
            time.sleep(0.01)
        with timer.stage("work"):
            time.sleep(0.01)
        assert timer.get("work") >= 0.02
        assert timer.total == pytest.approx(timer.get("work"))

    def test_add_and_merge(self):
        first = StageTimer()
        first.add("a", 1.0)
        second = StageTimer()
        second.add("a", 2.0)
        second.add("b", 3.0)
        merged = first.merge(second)
        assert merged.get("a") == 3.0
        assert merged.get("b") == 3.0
        assert first.get("a") == 1.0  # merge does not mutate

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            StageTimer().add("x", -1.0)

    def test_speedup_linear_scaling_is_one(self):
        assert speedup(100, 1000, 1.0, 10.0) == pytest.approx(1.0)

    def test_speedup_sublinear(self):
        assert speedup(100, 1000, 1.0, 20.0) == pytest.approx(0.5)

    def test_speedup_invalid_inputs(self):
        with pytest.raises(ValueError):
            speedup(0, 10, 1.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1, 10, 0.0, 1.0)


class TestValidation:
    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)

    def test_check_positive(self):
        assert check_positive(2.0) == 2.0
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_check_positive_int(self):
        assert check_positive_int(3) == 3
        with pytest.raises(ValueError):
            check_positive_int(0)
        with pytest.raises(ValueError):
            check_positive_int(2.5)

    def test_check_ratio(self):
        assert check_ratio(1.0) == 1.0
        with pytest.raises(ValueError):
            check_ratio(0.0)

    def test_check_matrix(self):
        matrix = check_matrix([[1, 2], [3, 4]])
        assert matrix.shape == (2, 2)
        with pytest.raises(ValueError):
            check_matrix([1, 2, 3])
        with pytest.raises(ValueError):
            check_matrix([[np.nan, 1.0]])

    def test_check_binary_labels(self):
        labels = check_binary_labels([0, 1, 1])
        assert labels.tolist() == [0.0, 1.0, 1.0]
        with pytest.raises(ValueError):
            check_binary_labels([0, 2])
        with pytest.raises(ValueError):
            check_binary_labels([[0, 1]])

    def test_check_consistent_length(self):
        check_consistent_length(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            check_consistent_length(np.zeros(3), np.zeros(4))
