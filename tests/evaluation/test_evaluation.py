"""Tests for effectiveness metrics, the experiment runner and report formatting."""

import numpy as np
import pytest

from repro.core import GeneralizedSupervisedMetaBlocking
from repro.datamodel import CandidateSet, EntityIndexSpace, GroundTruth
from repro.evaluation import (
    EffectivenessReport,
    ExperimentRunner,
    average_over_datasets,
    average_reports,
    evaluate_blocks,
    evaluate_candidates,
    evaluate_retained_mask,
    format_measure_series,
    format_table,
    format_value,
    paper_vs_measured,
)


@pytest.fixture
def simple_truth_and_candidates():
    space = EntityIndexSpace(3, 3)
    truth = GroundTruth([(0, 3), (1, 4), (2, 5)], space)
    candidates = CandidateSet.from_pairs([(0, 3), (1, 4), (0, 4), (2, 4)], space)
    return truth, candidates


class TestMetrics:
    def test_evaluate_candidates(self, simple_truth_and_candidates):
        truth, candidates = simple_truth_and_candidates
        report = evaluate_candidates(candidates, truth)
        assert report.true_positives == 2
        assert report.retained_pairs == 4
        assert report.total_duplicates == 3
        assert report.recall == pytest.approx(2 / 3)
        assert report.precision == pytest.approx(0.5)
        assert report.f1 == pytest.approx(2 * (2 / 3) * 0.5 / (2 / 3 + 0.5))

    def test_evaluate_blocks_matches_candidates(self, small_blocks):
        truth = GroundTruth([(0, 3)], small_blocks.index_space)
        by_blocks = evaluate_blocks(small_blocks, truth)
        by_candidates = evaluate_candidates(CandidateSet.from_blocks(small_blocks), truth)
        assert by_blocks == by_candidates

    def test_evaluate_retained_mask_counts_blocking_misses(self):
        labels = np.array([True, False, True])
        mask = np.array([True, True, False])
        # 5 total duplicates, only 3 pairs in the candidate set
        report = evaluate_retained_mask(mask, labels, total_duplicates=5)
        assert report.true_positives == 1
        assert report.recall == pytest.approx(0.2)
        assert report.precision == pytest.approx(0.5)

    def test_retained_mask_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_retained_mask(np.array([True]), np.array([True, False]), 1)

    def test_zero_duplicates(self):
        report = evaluate_retained_mask(np.array([False]), np.array([False]), 0)
        assert report.recall == 0.0 and report.f1 == 0.0

    def test_average_reports(self):
        first = EffectivenessReport(0.8, 0.2, 0.32, 8, 40, 10)
        second = EffectivenessReport(0.6, 0.4, 0.48, 6, 15, 10)
        averaged = average_reports([first, second])
        assert averaged.recall == pytest.approx(0.7)
        assert averaged.precision == pytest.approx(0.3)
        assert averaged.f1 == pytest.approx(0.4)
        assert averaged.true_positives == 7

    def test_average_reports_empty(self):
        with pytest.raises(ValueError):
            average_reports([])

    def test_as_dict(self):
        report = EffectivenessReport(0.5, 0.25, 1 / 3, 5, 20, 10)
        assert report.as_dict()["recall"] == 0.5


class TestRunner:
    def test_run_pipeline_averages_repetitions(self, prepared_dblpacm):
        runner = ExperimentRunner(repetitions=2, seed=0)
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        outcome = runner.run_pipeline(pipeline, prepared_dblpacm)
        assert outcome.dataset == "DblpAcm"
        assert outcome.algorithm == "BLAST"
        assert len(outcome.per_run_reports) == 2
        assert 0.0 <= outcome.report.recall <= 1.0
        assert outcome.runtime_seconds > 0.0

    def test_run_matrix_and_averaging(self, prepared_dblpacm, prepared_abtbuy):
        runner = ExperimentRunner(repetitions=1, seed=0)
        pipelines = {
            "BLAST": GeneralizedSupervisedMetaBlocking(training_size=50, pruning="BLAST"),
            "BCl": GeneralizedSupervisedMetaBlocking(training_size=50, pruning="BCl"),
        }
        outcomes = runner.run_matrix(pipelines, [prepared_dblpacm, prepared_abtbuy])
        assert len(outcomes) == 4
        averages = average_over_datasets(outcomes)
        assert set(averages) == {"BLAST", "BCl"}

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            ExperimentRunner(repetitions=0)

    def test_outcome_row(self, prepared_dblpacm):
        runner = ExperimentRunner(repetitions=1, seed=0)
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50)
        row = runner.run_pipeline(pipeline, prepared_dblpacm, label="X").as_row()
        assert row["dataset"] == "DblpAcm"
        assert row["algorithm"] == "X"


class TestReporting:
    def test_format_value(self):
        assert format_value(0.12345, precision=3) == "0.123"
        assert format_value(1.2e-7) == "1.20e-07"
        assert format_value("text") == "text"
        assert format_value(5) == "5"

    def test_format_table_alignment_and_columns(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}]
        table = format_table(rows, title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_measure_series(self):
        series = {"BLAST": {"recall": 0.9, "precision": 0.2, "f1": 0.33}}
        text = format_measure_series(series)
        assert "BLAST" in text and "0.9000" in text

    def test_paper_vs_measured(self):
        text = paper_vs_measured({"recall": 0.9}, {"recall": 0.85})
        assert "paper" in text and "measured" in text and "0.85" in text
