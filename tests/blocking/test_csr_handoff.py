"""Regression tests for the zero-rebuild CSR handoff contract.

The array blocking backend builds the entity x block CSR incidence structure
while preparing blocks and hands it forward on :attr:`PreparedBlocks.csr`.
Statistics created through :meth:`PreparedBlocks.statistics` (and therefore
the sparse feature backend and ``build_blocking_graph``) must reuse it —
these tests fail if any consumer re-derives the incidence structure inside a
pipeline run.
"""

import numpy as np
import pytest

import repro.weights.sparse as sparse_module
import repro.weights.statistics as statistics_module
from repro.blocking import prepare_blocks
from repro.core.pipeline import GeneralizedSupervisedMetaBlocking
from repro.metablocking import build_blocking_graph
from repro.weights import BlockStatistics, build_entity_block_csr


@pytest.fixture()
def forbid_csr_rebuild(monkeypatch):
    """Make any CSR rebuild (from Block objects) fail loudly."""

    def _forbidden(blocks):  # pragma: no cover - failure path
        raise AssertionError(
            "build_entity_block_csr was called — the prepared CSR was not reused"
        )

    monkeypatch.setattr(sparse_module, "build_entity_block_csr", _forbidden)
    monkeypatch.setattr(statistics_module, "build_entity_block_csr", _forbidden)


class TestHandoff:
    def test_prepared_csr_matches_a_fresh_build(self, dblpacm_dataset):
        prepared = prepare_blocks(
            dblpacm_dataset.first, dblpacm_dataset.second, backend="array"
        )
        reference = build_entity_block_csr(prepared.blocks)
        assert np.array_equal(prepared.csr.indptr, reference.indptr)
        assert np.array_equal(prepared.csr.indices, reference.indices)

    def test_statistics_reuse_the_prepared_csr(self, dblpacm_dataset, forbid_csr_rebuild):
        prepared = prepare_blocks(
            dblpacm_dataset.first, dblpacm_dataset.second, backend="array"
        )
        stats = prepared.statistics()
        assert stats.csr() is prepared.csr
        assert prepared.statistics() is stats  # cached

    def test_pipeline_run_never_rebuilds_the_csr(self, dblpacm_dataset, forbid_csr_rebuild):
        prepared = prepare_blocks(
            dblpacm_dataset.first, dblpacm_dataset.second, backend="array"
        )
        pipeline = GeneralizedSupervisedMetaBlocking(
            training_size=50, seed=0, backend="sparse"
        )
        result = pipeline.run(
            prepared.blocks,
            prepared.candidates,
            dblpacm_dataset.ground_truth,
            stats=prepared.statistics(),
        )
        assert result.retained_count > 0

    def test_blocking_graph_reuses_the_prepared_csr(self, dblpacm_dataset, forbid_csr_rebuild):
        prepared = prepare_blocks(
            dblpacm_dataset.first, dblpacm_dataset.second, backend="array"
        )
        graph = build_blocking_graph(
            prepared.blocks,
            scheme="CBS",
            candidates=prepared.candidates,
            csr=prepared.csr,
        )
        assert graph.edge_count == len(prepared.candidates)

    def test_mismatched_csr_rejected(self, dblpacm_dataset):
        prepared = prepare_blocks(
            dblpacm_dataset.first, dblpacm_dataset.second, backend="array"
        )
        with pytest.raises(ValueError, match="does not match"):
            BlockStatistics(prepared.raw_blocks, csr=prepared.csr)


class TestBlockPreparationStage:
    def test_run_on_collections_records_the_stage(self, dblpacm_dataset):
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        result = pipeline.run_on_collections(
            dblpacm_dataset.first, dblpacm_dataset.second, dblpacm_dataset.ground_truth
        )
        assert result.timer.get("block-preparation") > 0.0
        # RT still covers the paper's stages on top of the new one
        for stage in ("features", "training", "scoring", "pruning"):
            assert result.timer.get(stage) > 0.0
        assert result.runtime_seconds >= result.timer.get("block-preparation")

    def test_prepare_blocks_feeds_an_external_timer(self, dblpacm_dataset):
        from repro.utils.timing import StageTimer

        timer = StageTimer()
        prepared = prepare_blocks(
            dblpacm_dataset.first,
            dblpacm_dataset.second,
            backend="array",
            timer=timer,
        )
        assert timer.get("block-preparation") == pytest.approx(
            prepared.timer.total
        )
