"""Tests for the blocking methods (Token, Q-Grams, Suffix-Arrays, Standard)."""

import pytest

from repro.blocking import (
    QGramsBlocking,
    StandardBlocking,
    SuffixArraysBlocking,
    TokenBlocking,
)
from repro.datamodel import EntityCollection, make_profile


@pytest.fixture
def product_collections():
    first = EntityCollection(
        [
            make_profile("a1", name="apple iphone x", category="smartphone"),
            make_profile("a2", name="samsung s20", category="smartphone"),
        ],
        name="first",
    )
    second = EntityCollection(
        [
            make_profile("b1", name="iphone 10 apple", kind="smartphone"),
            make_profile("b2", name="huawei mate"),
        ],
        name="second",
    )
    return first, second


class TestTokenBlocking:
    def test_paper_example_block_keys(self, paper_example_profiles):
        first, second, _ = paper_example_profiles
        blocks = TokenBlocking().build_blocks(first, second)
        keys = {block.key for block in blocks}
        # the redundancy-positive blocks of Figure 1b
        assert {"apple", "iphone", "samsung", "20", "smartphone", "mate", "phone"} <= keys

    def test_paper_example_duplicates_covered(self, paper_example_profiles):
        first, second, truth = paper_example_profiles
        blocks = TokenBlocking().build_blocks(first, second)
        from repro.datamodel import CandidateSet

        candidates = CandidateSet.from_blocks(blocks)
        assert truth.covered_by(candidates) == len(truth)

    def test_bilateral_blocks_only_shared_tokens(self, product_collections):
        first, second = product_collections
        blocks = TokenBlocking().build_blocks(first, second)
        keys = {block.key for block in blocks}
        assert "apple" in keys and "iphone" in keys
        assert "s20" not in keys  # appears only in the first collection
        assert all(block.is_bilateral for block in blocks)

    def test_dirty_blocks(self, product_collections):
        first, _ = product_collections
        blocks = TokenBlocking().build_blocks(first)
        keys = {block.key for block in blocks}
        assert "smartphone" in keys  # shared by both dirty entities
        assert all(not block.is_bilateral for block in blocks)

    def test_min_token_length(self, product_collections):
        first, second = product_collections
        blocks = TokenBlocking(min_token_length=3).build_blocks(first, second)
        assert all(len(block.key) >= 3 for block in blocks)

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            TokenBlocking(min_token_length=0)

    def test_callable_interface(self, product_collections):
        first, second = product_collections
        method = TokenBlocking()
        assert len(method(first, second)) == len(method.build_blocks(first, second))


class TestQGramsBlocking:
    def test_qgram_signatures(self):
        method = QGramsBlocking(q=3)
        profile = make_profile("x", name="abcd")
        assert method.signatures_of(profile) == {"abc", "bcd"}

    def test_more_blocks_than_token_blocking(self, product_collections):
        first, second = product_collections
        token_blocks = TokenBlocking().build_blocks(first, second)
        qgram_blocks = QGramsBlocking(q=3).build_blocks(first, second)
        assert len(qgram_blocks) >= len(token_blocks)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramsBlocking(q=0)


class TestSuffixArraysBlocking:
    def test_suffix_signatures(self):
        method = SuffixArraysBlocking(min_suffix_length=3, max_block_size=None)
        profile = make_profile("x", name="abcde")
        assert method.signatures_of(profile) == {"abcde", "bcde", "cde"}

    def test_oversized_suffix_blocks_dropped(self, product_collections):
        first, second = product_collections
        blocks = SuffixArraysBlocking(min_suffix_length=3, max_block_size=2).build_blocks(
            first, second
        )
        assert all(block.size() <= 2 for block in blocks)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SuffixArraysBlocking(min_suffix_length=0)
        with pytest.raises(ValueError):
            SuffixArraysBlocking(max_block_size=1)


class TestStandardBlocking:
    def test_whole_value_keys(self, product_collections):
        first, second = product_collections
        method = StandardBlocking(["category"])
        signatures = method.signatures_of(first[0])
        assert signatures == {"category:smartphone"}

    def test_tokenized_keys(self):
        method = StandardBlocking(["name"], tokenize=True)
        signatures = method.signatures_of(make_profile("x", name="Apple iPhone"))
        assert signatures == {"name:apple", "name:iphone"}

    def test_missing_attribute_produces_no_signature(self):
        method = StandardBlocking(["missing"])
        assert method.signatures_of(make_profile("x", name="foo")) == set()

    def test_requires_key_attributes(self):
        with pytest.raises(ValueError):
            StandardBlocking([])
