"""Equivalence tests: the ``array`` blocking backend vs the ``loop`` oracle.

The array engine (:mod:`repro.blocking.arrayops`) must be block-for-block and
pair-for-pair identical to the object-based reference pipeline — raw, purged
and filtered collections, candidate pairs, and the handed-over CSR incidence
structure — across unilateral and bilateral inputs, with and without
purging/filtering, and under stop-word and minimum-token-length variants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import (
    BLOCKING_BACKENDS,
    QGramsBlocking,
    TokenBlocking,
    prepare_blocks,
)
from repro.datamodel import EntityCollection, make_profile
from repro.weights.sparse import build_entity_block_csr

#: a small vocabulary (stop-words included) so random texts collide heavily
WORDS = (
    "apple", "samsung", "phone", "smartphone", "mate", "fold", "x",
    "s20", "20", "the", "and", "a", "pro", "mini",
)


def make_collection(token_rows, name):
    profiles = [
        make_profile(f"{name}-{position}", text=" ".join(row))
        for position, row in enumerate(token_rows)
    ]
    return EntityCollection(profiles, name=name)


@st.composite
def collections(draw, name, min_entities=1, max_entities=8):
    n_entities = draw(st.integers(min_entities, max_entities))
    rows = [
        draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=6))
        for _ in range(n_entities)
    ]
    return make_collection(rows, name)


@st.composite
def preparation_options(draw):
    return dict(
        purging_fraction=draw(st.sampled_from((0.3, 0.5, 1.0))),
        filtering_ratio=draw(st.sampled_from((0.3, 0.5, 0.8, 1.0))),
        apply_purging=draw(st.booleans()),
        apply_filtering=draw(st.booleans()),
    )


@st.composite
def token_blocking_variants(draw):
    return TokenBlocking(
        min_token_length=draw(st.sampled_from((1, 2))),
        remove_stop_words=draw(st.booleans()),
    )


def assert_collections_identical(loop_blocks, array_blocks):
    assert array_blocks.name == loop_blocks.name
    assert len(array_blocks) == len(loop_blocks)
    for loop_block, array_block in zip(loop_blocks, array_blocks):
        assert array_block.key == loop_block.key
        assert array_block.entities_first == loop_block.entities_first
        assert array_block.entities_second == loop_block.entities_second


def assert_equivalent(first, second, blocking=None, **options):
    loop = prepare_blocks(first, second, blocking=blocking, backend="loop", **options)
    array = prepare_blocks(first, second, blocking=blocking, backend="array", **options)
    assert_collections_identical(loop.raw_blocks, array.raw_blocks)
    assert_collections_identical(loop.purged_blocks, array.purged_blocks)
    assert_collections_identical(loop.blocks, array.blocks)
    assert loop.candidates.as_tuples() == array.candidates.as_tuples()
    assert loop.candidates.index_space == array.candidates.index_space
    reference_csr = build_entity_block_csr(loop.blocks)
    assert array.csr is not None
    assert np.array_equal(array.csr.indptr, reference_csr.indptr)
    assert np.array_equal(array.csr.indices, reference_csr.indices)
    assert array.csr.num_blocks == reference_csr.num_blocks
    return loop, array


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        first=collections(name="shop-1"),
        second=collections(name="shop-2"),
        options=preparation_options(),
        blocking=token_blocking_variants(),
    )
    def test_bilateral(self, first, second, options, blocking):
        assert_equivalent(first, second, blocking=blocking, **options)

    @settings(max_examples=60, deadline=None)
    @given(
        collection=collections(name="dirty", max_entities=10),
        options=preparation_options(),
        blocking=token_blocking_variants(),
    )
    def test_unilateral(self, collection, options, blocking):
        assert_equivalent(collection, None, blocking=blocking, **options)

    @settings(max_examples=25, deadline=None)
    @given(
        first=collections(name="shop-1"),
        second=collections(name="shop-2"),
    )
    def test_bilateral_qgrams_method(self, first, second):
        """The generic signature_lists path (non-token blocking methods)."""
        assert_equivalent(first, second, blocking=QGramsBlocking(q=3))


class TestEdgeCases:
    def test_empty_collections(self):
        empty = make_collection([], "empty")
        other = make_collection([["apple"]], "other")
        loop, array = assert_equivalent(empty, None)
        assert len(array.candidates) == 0
        assert_equivalent(empty, other)
        assert_equivalent(other, empty)

    def test_no_shared_tokens(self):
        first = make_collection([["apple"], ["samsung"]], "shop-1")
        second = make_collection([["nokia"], ["huawei"]], "shop-2")
        loop, array = assert_equivalent(first, second)
        assert len(array.blocks) == 0
        assert len(array.candidates) == 0

    def test_all_profiles_identical(self):
        rows = [["apple", "phone"]] * 5
        assert_equivalent(make_collection(rows, "dirty"), None)
        assert_equivalent(
            make_collection(rows, "dirty"), None, purging_fraction=1.0
        )

    def test_paper_example(self, paper_example_profiles):
        first, second, _ = paper_example_profiles
        assert_equivalent(first, second)

    def test_dblpacm_identical(self, dblpacm_dataset):
        loop, array = assert_equivalent(dblpacm_dataset.first, dblpacm_dataset.second)
        assert len(array.candidates) > 0

    def test_degenerate_single_side_blocks_after_filtering(self):
        """Filtering can strand clean-clean blocks with one populated side.

        ``Block.is_bilateral`` then flips and the block spawns intra-source
        pairs; the array path must reproduce that loop behaviour exactly.
        """
        first = make_collection(
            [["apple", "x"], ["apple", "x"], ["apple"], ["apple"]], "shop-1"
        )
        second = make_collection([["apple", "x", "s20", "pro"]], "shop-2")
        loop, array = assert_equivalent(
            first, second, filtering_ratio=0.3, apply_purging=False
        )
        stranded = [block for block in loop.blocks if not block.is_bilateral]
        assert stranded, "the construction must strand a single-side block"
        # the stranded block spawns an intra-source pair both backends keep
        assert (2, 3) in loop.candidates.as_tuples()


class TestBackendSwitch:
    def test_unknown_backend_rejected(self):
        collection = make_collection([["apple"]], "dirty")
        with pytest.raises(ValueError, match="unknown blocking backend"):
            prepare_blocks(collection, None, backend="bogus")

    @pytest.mark.parametrize("backend", BLOCKING_BACKENDS)
    def test_backend_recorded(self, backend):
        collection = make_collection([["apple", "x"], ["apple"]], "dirty")
        prepared = prepare_blocks(collection, None, backend=backend)
        assert prepared.backend == backend
        assert prepared.timer is not None
        assert set(prepared.timer.stages) == {
            "blocking", "purging", "filtering", "candidate-extraction",
        }

    def test_array_is_the_default(self):
        collection = make_collection([["apple", "x"], ["apple"]], "dirty")
        prepared = prepare_blocks(collection, None)
        assert prepared.backend == "array"
        assert prepared.csr is not None
