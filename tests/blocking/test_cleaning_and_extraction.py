"""Tests for Block Purging, Block Filtering and candidate extraction."""

import pytest

from repro.blocking import (
    TokenBlocking,
    extract_candidates,
    filter_blocks,
    prepare_blocks,
    purge_by_comparison_cardinality,
    purge_oversized_blocks,
)
from repro.datamodel import Block, BlockCollection, CandidateSet, EntityIndexSpace
from repro.evaluation import evaluate_candidates


@pytest.fixture
def skewed_blocks():
    """A collection with one huge (stop-word-like) block and small blocks."""
    space = EntityIndexSpace(6, 6)
    return BlockCollection(
        [
            Block("stopword", [0, 1, 2, 3, 4, 5], [6, 7, 8, 9, 10, 11]),
            Block("rare-1", [0], [6]),
            Block("rare-2", [1], [7]),
            Block("mid", [2, 3], [8, 9]),
        ],
        space,
    )


class TestBlockPurging:
    def test_oversized_block_removed(self, skewed_blocks):
        purged = purge_oversized_blocks(skewed_blocks, max_entity_fraction=0.5)
        assert all(block.key != "stopword" for block in purged)
        assert len(purged) == 3

    def test_threshold_one_keeps_everything(self, skewed_blocks):
        purged = purge_oversized_blocks(skewed_blocks, max_entity_fraction=1.0)
        assert len(purged) == len(skewed_blocks)

    def test_invalid_fraction(self, skewed_blocks):
        with pytest.raises(ValueError):
            purge_oversized_blocks(skewed_blocks, max_entity_fraction=0.0)

    def test_cardinality_purging_drops_largest(self, skewed_blocks):
        purged = purge_by_comparison_cardinality(skewed_blocks)
        assert len(purged) < len(skewed_blocks)
        assert all(block.key != "stopword" for block in purged)

    def test_cardinality_purging_empty_collection(self):
        space = EntityIndexSpace(2)
        blocks = BlockCollection([], space)
        assert len(purge_by_comparison_cardinality(blocks)) == 0


class TestBlockFiltering:
    def test_entities_keep_smallest_blocks(self, skewed_blocks):
        filtered = filter_blocks(skewed_blocks, ratio=0.5)
        keys = {block.key for block in filtered}
        # the small distinctive blocks survive; the huge block loses members
        assert "rare-1" in keys and "rare-2" in keys
        stopword_blocks = [block for block in filtered if block.key == "stopword"]
        if stopword_blocks:
            assert stopword_blocks[0].size() < 12

    def test_ratio_one_is_identity_on_memberships(self, skewed_blocks):
        filtered = filter_blocks(skewed_blocks, ratio=1.0)
        assert sum(block.size() for block in filtered) == sum(
            block.size() for block in skewed_blocks
        )

    def test_every_entity_keeps_at_least_one_block(self, skewed_blocks):
        filtered = filter_blocks(skewed_blocks, ratio=0.2)
        index = filtered.entity_block_index()
        original_index = skewed_blocks.entity_block_index()
        # entities that had any block before must still have one (unless their
        # only surviving block lost its counterpart side entirely)
        assert set(original_index) >= set(index)
        assert len(index) >= len(original_index) - 2

    def test_invalid_ratio(self, skewed_blocks):
        with pytest.raises(ValueError):
            filter_blocks(skewed_blocks, ratio=0.0)

    def test_reduces_comparisons(self, skewed_blocks):
        filtered = filter_blocks(skewed_blocks, ratio=0.5)
        assert filtered.total_comparisons() <= skewed_blocks.total_comparisons()


class TestCandidateExtraction:
    def test_extract_candidates_matches_from_blocks(self, skewed_blocks):
        assert (
            extract_candidates(skewed_blocks).as_tuples()
            == CandidateSet.from_blocks(skewed_blocks).as_tuples()
        )

    def test_prepare_blocks_pipeline(self, dblpacm_dataset):
        prepared = prepare_blocks(dblpacm_dataset.first, dblpacm_dataset.second)
        assert len(prepared.raw_blocks) >= len(prepared.purged_blocks) >= 0
        assert len(prepared.candidates) > 0
        # purging + filtering must not destroy recall on the clean dataset
        report = evaluate_candidates(prepared.candidates, dblpacm_dataset.ground_truth)
        assert report.recall > 0.95

    def test_prepare_blocks_toggles(self, dblpacm_dataset):
        without_cleaning = prepare_blocks(
            dblpacm_dataset.first,
            dblpacm_dataset.second,
            apply_purging=False,
            apply_filtering=False,
        )
        with_cleaning = prepare_blocks(dblpacm_dataset.first, dblpacm_dataset.second)
        assert len(with_cleaning.candidates) <= len(without_cleaning.candidates)

    def test_prepare_blocks_custom_method(self, dblpacm_dataset):
        prepared = prepare_blocks(
            dblpacm_dataset.first,
            dblpacm_dataset.second,
            blocking=TokenBlocking(min_token_length=2),
        )
        assert len(prepared.candidates) > 0

    def test_prepare_blocks_dirty(self, prepared_dirty):
        assert len(prepared_dirty.candidates) > 0
        report = evaluate_candidates(prepared_dirty.candidates, prepared_dirty.ground_truth)
        assert report.recall > 0.8
