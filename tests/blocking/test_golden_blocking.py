"""Golden regression test for the block-preparation pipeline on DblpAcm.

The exact outcome of ``prepare_blocks`` on a deterministic generated DblpAcm
benchmark (seed 3, scale 0.4) is frozen into
``tests/data/golden_blocking.json``: block counts per stage, per-stage
comparison totals, the first/last block keys, a digest of all candidate
pairs and a pair sample.  Both backends are checked against the frozen
values, so a change that shifts blocking output — even one affecting both
backends identically, which the equivalence tests cannot see — fails here.

To regenerate the fixture after an *intentional* semantic change::

    PYTHONPATH=src python tests/blocking/test_golden_blocking.py --regenerate
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.blocking import BLOCKING_BACKENDS, prepare_blocks
from repro.datasets import load_benchmark

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_blocking.json"

DATASET, SEED, SCALE = "DblpAcm", 3, 0.4


def _prepare(backend):
    dataset = load_benchmark(DATASET, seed=SEED, scale=SCALE)
    return prepare_blocks(dataset.first, dataset.second, backend=backend)


def _snapshot(prepared):
    pairs = prepared.candidates.as_tuples()
    digest = hashlib.sha256(
        ",".join(f"{i}-{j}" for i, j in pairs).encode("ascii")
    ).hexdigest()
    return {
        "raw_blocks": len(prepared.raw_blocks),
        "purged_blocks": len(prepared.purged_blocks),
        "filtered_blocks": len(prepared.blocks),
        "raw_comparisons": prepared.raw_blocks.total_comparisons(),
        "filtered_comparisons": prepared.blocks.total_comparisons(),
        "block_assignments": prepared.blocks.total_block_assignments(),
        "first_keys": [block.key for block in list(prepared.blocks)[:5]],
        "last_keys": [block.key for block in list(prepared.blocks)[-5:]],
        "candidate_pairs": len(pairs),
        "pair_digest": digest,
        "first_pairs": [list(pair) for pair in pairs[:10]],
    }


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("backend", BLOCKING_BACKENDS)
def test_prepared_blocks_match_golden(golden, backend):
    snapshot = _snapshot(_prepare(backend))
    assert snapshot == golden["snapshot"], (
        f"block preparation ({backend} backend) deviates from the frozen "
        "DblpAcm fixture; regenerate only if the change is intentional"
    )


def test_golden_fixture_is_nontrivial(golden):
    snapshot = golden["snapshot"]
    assert snapshot["candidate_pairs"] > 1000
    assert snapshot["raw_blocks"] >= snapshot["purged_blocks"] >= snapshot["filtered_blocks"] > 0


def _regenerate() -> None:
    payload = {
        "description": (
            f"Frozen loop-backend prepare_blocks outcome on {DATASET} "
            f"(seed {SEED}, scale {SCALE})"
        ),
        "snapshot": _snapshot(_prepare("loop")),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
