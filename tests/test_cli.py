"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("table2", "fig5", "table5", "fig17-18"):
            assert name in output

    def test_run_requires_known_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "bogus-experiment"])

    def test_dataset_choices_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "table2", "--datasets", "NotADataset"])

    def test_every_registered_experiment_has_a_handler(self):
        for name, handler in EXPERIMENTS.items():
            assert callable(handler), name


class TestExecution:
    def test_run_table2(self, capsys):
        exit_code = main(["run", "table2", "--datasets", "AbtBuy", "--seed", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "AbtBuy" in output
        assert "recall" in output

    def test_run_fig6_small(self, capsys):
        exit_code = main(
            [
                "run",
                "fig6",
                "--datasets",
                "AbtBuy",
                "--repetitions",
                "1",
                "--training-size",
                "50",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "RCNP" in output and "CEP" in output

    def test_quickstart(self, capsys):
        exit_code = main(
            ["quickstart", "--datasets", "DblpAcm", "--training-size", "50", "--seed", "1"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "before meta-blocking" in output
        assert "after  meta-blocking" in output
