"""Tests for the command-line interface."""

import pytest

from repro import __version__
from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("table2", "fig5", "table5", "fig17-18"):
            assert name in output

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_backend_defaults_to_sparse(self):
        parser = build_parser()
        args = parser.parse_args(["run", "table2"])
        assert args.backend == "sparse"
        args = parser.parse_args(["quickstart"])
        assert args.backend == "sparse"

    def test_blocking_backend_defaults_to_array(self):
        parser = build_parser()
        args = parser.parse_args(["run", "table2"])
        assert args.blocking_backend == "array"
        args = parser.parse_args(["quickstart", "--blocking-backend", "loop"])
        assert args.blocking_backend == "loop"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "table2", "--blocking-backend", "bogus"])

    def test_run_requires_known_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "bogus-experiment"])

    def test_dataset_choices_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "table2", "--datasets", "NotADataset"])

    def test_every_registered_experiment_has_a_handler(self):
        for name, handler in EXPERIMENTS.items():
            assert callable(handler), name


class TestExecution:
    def test_run_table2(self, capsys):
        exit_code = main(["run", "table2", "--datasets", "AbtBuy", "--seed", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "AbtBuy" in output
        assert "recall" in output

    def test_run_fig6_small(self, capsys):
        exit_code = main(
            [
                "run",
                "fig6",
                "--datasets",
                "AbtBuy",
                "--repetitions",
                "1",
                "--training-size",
                "50",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "RCNP" in output and "CEP" in output

    def test_quickstart(self, capsys):
        exit_code = main(
            ["quickstart", "--datasets", "DblpAcm", "--training-size", "50", "--seed", "1"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "before meta-blocking" in output
        assert "after  meta-blocking" in output


class TestStream:
    def test_stream_runs_end_to_end(self, capsys):
        exit_code = main(
            ["stream", "--dataset", "DblpAcm", "--scale", "0.1", "--limit", "200"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "per-insert latency" in output
        assert "pairs retained" in output

    def test_stream_handles_sources_sharing_id_values(self, tmp_path, capsys):
        """Both CSV sources numbering entities 0..N is a supported layout."""
        rows = "".join(f"{n},item {n} common token\n" for n in range(6))
        (tmp_path / "first.csv").write_text("id,name\n" + rows)
        (tmp_path / "second.csv").write_text("id,name\n" + rows)
        (tmp_path / "ground_truth.csv").write_text(
            "first_id,second_id\n" + "".join(f"{n},{n}\n" for n in range(6))
        )
        exit_code = main(["stream", "--dataset-dir", str(tmp_path), "--bootstrap", "1.0"])
        assert exit_code == 0
        assert "pairs retained" in capsys.readouterr().out

    def test_stream_with_deletes_reports_churn_and_live_recall(self, capsys):
        exit_code = main(
            ["stream", "--dataset", "DblpAcm", "--scale", "0.1", "--deletes", "0.4"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "deletes:" in output
        assert "entities retracted" in output
        assert "pairs retained" in output
        # recall is judged against the live index state, so heavy churn must
        # not drag it down by counting retracted duplicates as misses
        recall = float(output.rsplit("recall=", 1)[1].split()[0])
        assert 0.0 <= recall <= 1.0

    def test_stream_invalid_options_give_argparse_errors(self, capsys):
        for argv in (
            ["stream", "--bootstrap", "1.5"],
            ["stream", "--online", "topk", "--top-k", "0"],
            ["stream", "--deletes", "1.5"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_stream_without_ground_truth_gives_argparse_error(self, tmp_path, capsys):
        (tmp_path / "first.csv").write_text("id,name\n1,apple iphone\n2,samsung s20\n")
        (tmp_path / "second.csv").write_text("id,name\n10,iphone apple\n11,galaxy s20\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["stream", "--dataset-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        error = capsys.readouterr().err
        assert "no ground truth" in error
        assert "Traceback" not in error

    def test_stream_with_useless_bootstrap_gives_argparse_error(self, tmp_path, capsys):
        rows_first = "".join(f"{n},product {n} widget\n" for n in range(10))
        rows_second = "".join(f"{n + 100},gadget {n} widget\n" for n in range(10))
        (tmp_path / "first.csv").write_text("id,name\n" + rows_first)
        (tmp_path / "second.csv").write_text("id,name\n" + rows_second)
        # the only duplicate involves the LAST entities, outside the bootstrap
        (tmp_path / "ground_truth.csv").write_text("first_id,second_id\n9,109\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["stream", "--dataset-dir", str(tmp_path), "--bootstrap", "0.2"])
        assert excinfo.value.code == 2
        error = capsys.readouterr().err
        assert "no ground-truth duplicate" in error
        assert "Traceback" not in error
