"""Tests for the block co-occurrence statistics.

The expected values are hand-computed on the ``small_blocks`` fixture:

* block "alpha" = {0, 1} x {3}   (size 3, cardinality 2)
* block "beta"  = {0}    x {3, 4}(size 3, cardinality 2)
* block "gamma" = {1, 2} x {4, 5}(size 4, cardinality 4)
* block "delta" = {2}    x {5}   (size 2, cardinality 1)
"""

import numpy as np
import pytest

from repro.weights import BlockStatistics


class TestBlockStatistics:
    def test_global_counts(self, small_stats):
        assert small_stats.num_blocks == 4
        assert small_stats.total_cardinality == 9.0
        assert small_stats.block_sizes.tolist() == [3.0, 3.0, 4.0, 2.0]
        assert small_stats.block_cardinalities.tolist() == [2.0, 2.0, 4.0, 1.0]

    def test_entity_memberships(self, small_stats):
        assert small_stats.blocks_of(0) == frozenset({0, 1})
        assert small_stats.blocks_of(5) == frozenset({2, 3})
        assert small_stats.blocks_of(99) == frozenset()

    def test_blocks_per_entity(self, small_stats):
        assert small_stats.blocks_per_entity[0] == 2
        assert small_stats.blocks_per_entity[2] == 2
        assert small_stats.blocks_per_entity.sum() == 12

    def test_common_blocks(self, small_stats):
        assert small_stats.common_blocks(0, 3) == frozenset({0, 1})
        assert small_stats.common_blocks(1, 4) == frozenset({2})
        assert small_stats.common_blocks(0, 5) == frozenset()
        assert small_stats.common_block_count(0, 3) == 2

    def test_entity_cardinality(self, small_stats):
        # ||e_0|| = ||alpha|| + ||beta|| = 2 + 2
        assert small_stats.entity_cardinality[0] == 4.0
        # ||e_5|| = ||gamma|| + ||delta|| = 4 + 1
        assert small_stats.entity_cardinality[5] == 5.0

    def test_inverse_sums(self, small_stats):
        assert small_stats.entity_inv_cardinality[0] == pytest.approx(1.0)  # 1/2 + 1/2
        assert small_stats.entity_inv_size[0] == pytest.approx(2.0 / 3.0)  # 1/3 + 1/3
        assert small_stats.sum_inverse_cardinality(frozenset({0, 1})) == pytest.approx(1.0)
        assert small_stats.sum_inverse_size(frozenset({2, 3})) == pytest.approx(0.75)
        assert small_stats.sum_inverse_cardinality(frozenset()) == 0.0

    def test_local_candidate_counts(self, small_stats):
        lcp = small_stats.local_candidate_counts()
        assert lcp[0] == 2  # candidates of entity 0: {3, 4}
        assert lcp[1] == 3  # candidates of entity 1: {3, 4, 5}
        assert lcp[4] == 3  # candidates of entity 4: {0, 1, 2}
        assert lcp[5] == 2

    def test_lcp_is_cached(self, small_blocks):
        stats = BlockStatistics(small_blocks)
        first = stats.local_candidate_counts()
        second = stats.local_candidate_counts()
        assert first is second

    def test_describe(self, small_stats):
        summary = small_stats.describe()
        assert summary["blocks"] == 4
        assert summary["total_cardinality"] == 9.0
        assert summary["max_block_size"] == 4.0
        assert summary["avg_blocks_per_entity"] == pytest.approx(2.0)

    def test_dirty_blocks_lcp(self):
        from repro.datamodel import Block, BlockCollection, EntityIndexSpace

        space = EntityIndexSpace(4)
        blocks = BlockCollection([Block("k", [0, 1, 2]), Block("m", [2, 3])], space)
        stats = BlockStatistics(blocks)
        lcp = stats.local_candidate_counts()
        assert lcp.tolist() == [2.0, 2.0, 3.0, 1.0]
