"""Backend-equivalence property tests (loop oracle vs sparse backend).

The loop implementations of the weighting schemes are the reference oracle;
the vectorized sparse backend must reproduce them bit-for-bit up to float
summation order.  Hypothesis generates randomized unilateral and bilateral
block collections — including empty blocks, singleton entities, and entities
absent from every block — and every registered scheme is asserted
``np.allclose``-identical across backends, both per scheme and through the
full :class:`FeatureVectorGenerator` stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FeatureVectorGenerator, generate_features
from repro.datamodel import Block, BlockCollection, CandidateSet, EntityIndexSpace
from repro.weights import (
    BACKENDS,
    PAPER_FEATURES,
    SCHEME_CLASSES,
    BlockStatistics,
    resolve_backend,
)

ALL_SCHEMES = tuple(SCHEME_CLASSES)

#: absolute/relative tolerances: the two backends sum the same terms in a
#: different order, so only accumulation noise is allowed.
TOLERANCES = dict(rtol=1e-9, atol=1e-12)


# -- strategies -----------------------------------------------------------------------

@st.composite
def unilateral_collections(draw):
    """Random Dirty ER block collections plus a candidate set.

    The node space is drawn larger than the ids actually used, so some
    entities are absent from every block; blocks may be empty or singletons
    (spawning no comparison), which the loop backend tolerates and the sparse
    backend must too.
    """
    total = draw(st.integers(min_value=2, max_value=14))
    space = EntityIndexSpace(total, 0)
    n_blocks = draw(st.integers(min_value=0, max_value=8))
    blocks = []
    for index in range(n_blocks):
        members = draw(
            st.lists(st.integers(0, total - 1), min_size=0, max_size=total, unique=True)
        )
        blocks.append(Block(f"b{index}", sorted(members)))
    collection = BlockCollection(blocks, space)
    candidates = _draw_candidates(draw, collection)
    return collection, candidates


@st.composite
def bilateral_collections(draw):
    """Random Clean-Clean ER block collections plus a candidate set."""
    size_first = draw(st.integers(min_value=1, max_value=7))
    size_second = draw(st.integers(min_value=1, max_value=7))
    space = EntityIndexSpace(size_first, size_second)
    n_blocks = draw(st.integers(min_value=0, max_value=8))
    blocks = []
    for index in range(n_blocks):
        first = draw(
            st.lists(
                st.integers(0, size_first - 1),
                min_size=0,
                max_size=size_first,
                unique=True,
            )
        )
        second = draw(
            st.lists(
                st.integers(size_first, size_first + size_second - 1),
                min_size=0,
                max_size=size_second,
                unique=True,
            )
        )
        blocks.append(Block(f"b{index}", sorted(first), sorted(second)))
    collection = BlockCollection(blocks, space)
    candidates = _draw_candidates(draw, collection)
    return collection, candidates


def _draw_candidates(draw, collection: BlockCollection) -> CandidateSet:
    """The collection's distinct pairs plus random extra (non-co-occurring) pairs."""
    pairs = set(CandidateSet.from_blocks(collection).as_tuples())
    total = collection.index_space.total
    if total >= 2:
        extra = draw(
            st.lists(
                st.tuples(st.integers(0, total - 1), st.integers(0, total - 1)),
                min_size=0,
                max_size=6,
            )
        )
        for i, j in extra:
            if i != j:
                pairs.add((i, j) if i < j else (j, i))
    return CandidateSet.from_pairs(pairs, collection.index_space)


# -- per-scheme equivalence -----------------------------------------------------------

@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
@given(data=unilateral_collections())
@settings(max_examples=40, deadline=None)
def test_unilateral_equivalence(scheme_name, data):
    blocks, candidates = data
    stats = BlockStatistics(blocks)
    scheme = SCHEME_CLASSES[scheme_name]()
    loop = scheme.compute(candidates, stats)
    sparse = scheme.compute_sparse(candidates, stats)
    assert loop.shape == sparse.shape == (len(candidates), scheme.width)
    np.testing.assert_allclose(sparse, loop, **TOLERANCES)


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
@given(data=bilateral_collections())
@settings(max_examples=40, deadline=None)
def test_bilateral_equivalence(scheme_name, data):
    blocks, candidates = data
    stats = BlockStatistics(blocks)
    scheme = SCHEME_CLASSES[scheme_name]()
    loop = scheme.compute(candidates, stats)
    sparse = scheme.compute_sparse(candidates, stats)
    assert loop.shape == sparse.shape == (len(candidates), scheme.width)
    np.testing.assert_allclose(sparse, loop, **TOLERANCES)


# -- full-stack equivalence -----------------------------------------------------------

@given(data=bilateral_collections())
@settings(max_examples=25, deadline=None)
def test_full_feature_matrix_equivalence(data):
    """The whole generator stack produces identical matrices per backend."""
    blocks, candidates = data
    stats = BlockStatistics(blocks)
    feature_set = ("CBS",) + PAPER_FEATURES
    loop = FeatureVectorGenerator(feature_set, backend="loop").generate(candidates, stats)
    sparse = FeatureVectorGenerator(feature_set, backend="sparse").generate(candidates, stats)
    assert loop.columns == sparse.columns
    assert loop.backend == "loop" and sparse.backend == "sparse"
    np.testing.assert_allclose(sparse.values, loop.values, **TOLERANCES)


@given(data=unilateral_collections())
@settings(max_examples=25, deadline=None)
def test_generate_features_backend_equivalence(data):
    """The convenience wrapper honours the backend switch."""
    blocks, candidates = data
    loop = generate_features(candidates, blocks, feature_set=PAPER_FEATURES)
    sparse = generate_features(
        candidates, blocks, feature_set=PAPER_FEATURES, backend="sparse"
    )
    np.testing.assert_allclose(sparse.values, loop.values, **TOLERANCES)


# -- deterministic edge cases ---------------------------------------------------------

@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_empty_collection_equivalence(scheme_name):
    """No blocks, no candidates: both backends return empty matrices."""
    blocks = BlockCollection([], EntityIndexSpace(4, 0))
    candidates = CandidateSet.from_pairs([], blocks.index_space)
    stats = BlockStatistics(blocks)
    scheme = SCHEME_CLASSES[scheme_name]()
    loop = scheme.compute(candidates, stats)
    sparse = scheme.compute_sparse(candidates, stats)
    assert loop.shape == sparse.shape == (0, scheme.width)


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_absent_entities_equivalence(scheme_name):
    """Pairs whose entities appear in no block score zero on both backends."""
    space = EntityIndexSpace(8, 0)
    blocks = BlockCollection(
        [Block("a", [0, 1, 2]), Block("empty", []), Block("singleton", [5])], space
    )
    candidates = CandidateSet.from_pairs([(0, 1), (3, 4), (5, 6), (6, 7)], space)
    stats = BlockStatistics(blocks)
    scheme = SCHEME_CLASSES[scheme_name]()
    np.testing.assert_allclose(
        scheme.compute_sparse(candidates, stats),
        scheme.compute(candidates, stats),
        **TOLERANCES,
    )


def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown feature backend"):
        resolve_backend("gpu")
    assert [resolve_backend(name) for name in BACKENDS] == list(BACKENDS)


def test_generator_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown feature backend"):
        FeatureVectorGenerator(("JS",), backend="fancy")
