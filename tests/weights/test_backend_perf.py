"""Perf smoke test: the sparse backend must not be slower than the loop.

A single coarse guard — not a benchmark (those live in ``benchmarks/``) —
that fails loudly if a regression makes the vectorized backend degenerate
back into per-pair work.  On the ~5k-pair synthetic workload below the
sparse backend is typically >10x faster, so the 1.0x assertion threshold
leaves ample headroom against timer noise.

Deselect with ``-m "not perf"`` or skip by exporting ``REPRO_SKIP_PERF=1``
(for constrained CI runners with unreliable clocks).
"""

import os
import time

import numpy as np
import pytest

from repro.core import FeatureVectorGenerator
from repro.datamodel import Block, BlockCollection, CandidateSet, EntityIndexSpace
from repro.weights import BLAST_FEATURE_SET, PAPER_FEATURES, BlockStatistics

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(
        os.environ.get("REPRO_SKIP_PERF") == "1",
        reason="REPRO_SKIP_PERF=1: perf smoke tests disabled",
    ),
]


@pytest.fixture(scope="module")
def synthetic_workload():
    """A unilateral collection whose distinct pairs number ~5k."""
    rng = np.random.default_rng(42)
    total = 700
    space = EntityIndexSpace(total, 0)
    blocks = []
    for index in range(380):
        size = int(rng.integers(3, 9))
        members = sorted(int(node) for node in rng.choice(total, size=size, replace=False))
        blocks.append(Block(f"s{index}", members))
    collection = BlockCollection(blocks, space)
    candidates = CandidateSet.from_blocks(collection)
    assert 4_000 <= len(candidates) <= 12_000, len(candidates)
    return collection, candidates


def _time_backend(blocks, candidates, backend, feature_set):
    """Best-of-3 feature-generation time with fresh statistics per run."""
    generator = FeatureVectorGenerator(feature_set, backend=backend)
    best = float("inf")
    for _ in range(3):
        stats = BlockStatistics(blocks)
        start = time.perf_counter()
        generator.generate(candidates, stats)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize(
    "feature_set",
    [BLAST_FEATURE_SET, PAPER_FEATURES],
    ids=["blast_formula1", "all_paper_features"],
)
def test_sparse_backend_not_slower_than_loop(synthetic_workload, feature_set):
    blocks, candidates = synthetic_workload
    loop_seconds = _time_backend(blocks, candidates, "loop", feature_set)
    sparse_seconds = _time_backend(blocks, candidates, "sparse", feature_set)
    assert sparse_seconds <= loop_seconds, (
        f"sparse backend regressed: {sparse_seconds:.4f}s vs loop "
        f"{loop_seconds:.4f}s on {len(candidates)} pairs"
    )
