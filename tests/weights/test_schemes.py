"""Tests for the weighting schemes, with hand-computed expected values.

The fixture block collection (see ``tests/weights/test_statistics.py``) gives
closed-form values for the pair (0, 3), which shares blocks "alpha" and
"beta", and for the pair (1, 4), which shares only "gamma".
"""

import math

import numpy as np
import pytest

from repro.datamodel import CandidateSet
from repro.weights import (
    CFIBFScheme,
    CommonBlocksScheme,
    EnhancedJaccardScheme,
    JaccardScheme,
    LocalCandidatesScheme,
    NormalizedReciprocalSizesScheme,
    RACCBScheme,
    ReciprocalSizesScheme,
    WeightedJaccardScheme,
)


def pair_position(candidates: CandidateSet, i: int, j: int) -> int:
    return candidates.position_index()[(i, j) if i < j else (j, i)]


@pytest.fixture(scope="module")
def values(small_candidates, small_stats):
    """Compute every scheme once for all candidate pairs of the fixture."""
    schemes = {
        "CBS": CommonBlocksScheme(),
        "CF-IBF": CFIBFScheme(),
        "RACCB": RACCBScheme(),
        "JS": JaccardScheme(),
        "EJS": EnhancedJaccardScheme(),
        "WJS": WeightedJaccardScheme(),
        "RS": ReciprocalSizesScheme(),
        "NRS": NormalizedReciprocalSizesScheme(),
        "LCP": LocalCandidatesScheme(),
    }
    return {
        name: scheme.compute(small_candidates, small_stats)
        for name, scheme in schemes.items()
    }


class TestSchemeValues:
    def test_cbs(self, values, small_candidates):
        position = pair_position(small_candidates, 0, 3)
        assert values["CBS"][position, 0] == 2.0
        assert values["CBS"][pair_position(small_candidates, 1, 4), 0] == 1.0

    def test_jaccard(self, values, small_candidates):
        assert values["JS"][pair_position(small_candidates, 0, 3), 0] == pytest.approx(1.0)
        assert values["JS"][pair_position(small_candidates, 1, 4), 0] == pytest.approx(1 / 3)

    def test_cf_ibf(self, values, small_candidates):
        expected = 2.0 * math.log(4 / 2) * math.log(4 / 2)
        assert values["CF-IBF"][pair_position(small_candidates, 0, 3), 0] == pytest.approx(expected)

    def test_raccb(self, values, small_candidates):
        # shared blocks alpha (||b||=2) and beta (||b||=2): 1/2 + 1/2
        assert values["RACCB"][pair_position(small_candidates, 0, 3), 0] == pytest.approx(1.0)
        # shared block gamma (||b||=4): 1/4
        assert values["RACCB"][pair_position(small_candidates, 1, 4), 0] == pytest.approx(0.25)

    def test_rs(self, values, small_candidates):
        # shared blocks alpha (|b|=3) and beta (|b|=3): 1/3 + 1/3
        assert values["RS"][pair_position(small_candidates, 0, 3), 0] == pytest.approx(2 / 3)

    def test_wjs(self, values, small_candidates):
        assert values["WJS"][pair_position(small_candidates, 0, 3), 0] == pytest.approx(1.0)

    def test_nrs(self, values, small_candidates):
        assert values["NRS"][pair_position(small_candidates, 0, 3), 0] == pytest.approx(1.0)

    def test_ejs(self, values, small_candidates):
        expected = 1.0 * math.log(9 / 4) * math.log(9 / 4)
        assert values["EJS"][pair_position(small_candidates, 0, 3), 0] == pytest.approx(expected)

    def test_lcp_two_columns(self, values, small_candidates):
        position = pair_position(small_candidates, 0, 3)
        assert values["LCP"].shape[1] == 2
        assert values["LCP"][position, 0] == 2.0  # LCP(e_0)
        assert values["LCP"][position, 1] == 2.0  # LCP(e_3)
        position_1_4 = pair_position(small_candidates, 1, 4)
        assert values["LCP"][position_1_4, 0] == 3.0
        assert values["LCP"][position_1_4, 1] == 3.0


class TestSchemeProperties:
    def test_all_pair_schemes_non_negative(self, values):
        for name, matrix in values.items():
            assert np.all(matrix >= 0.0), name

    def test_normalised_schemes_at_most_one(self, values):
        for name in ("JS", "WJS", "NRS"):
            assert np.all(values[name] <= 1.0 + 1e-12), name

    def test_pairs_sharing_more_blocks_score_higher(self, values, small_candidates):
        strong = pair_position(small_candidates, 0, 3)  # 2 shared blocks
        weak = pair_position(small_candidates, 1, 4)  # 1 shared (large) block
        for name in ("CBS", "CF-IBF", "RACCB", "JS", "RS", "WJS", "NRS"):
            assert values[name][strong, 0] > values[name][weak, 0], name

    def test_shapes_match_candidates(self, values, small_candidates):
        for name, matrix in values.items():
            assert matrix.shape[0] == len(small_candidates), name
