"""Tests for the weighting-scheme registry and feature-set helpers."""

import pytest

from repro.weights import (
    BLAST_FEATURE_SET,
    ORIGINAL_FEATURE_SET,
    PAPER_FEATURES,
    RCNP_FEATURE_SET,
    SCHEME_CLASSES,
    all_feature_subsets,
    feature_width,
    get_scheme,
    get_schemes,
)


class TestRegistry:
    def test_every_registered_scheme_instantiates(self):
        for name in SCHEME_CLASSES:
            scheme = get_scheme(name)
            assert scheme.name == name

    def test_unknown_scheme_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known schemes"):
            get_scheme("BOGUS")

    def test_get_schemes_preserves_order(self):
        schemes = get_schemes(["JS", "CF-IBF"])
        assert [scheme.name for scheme in schemes] == ["JS", "CF-IBF"]

    def test_get_schemes_rejects_duplicates(self):
        with pytest.raises(ValueError):
            get_schemes(["JS", "JS"])

    def test_feature_width_counts_lcp_twice(self):
        assert feature_width(["JS"]) == 1
        assert feature_width(["JS", "LCP"]) == 3
        assert feature_width(ORIGINAL_FEATURE_SET) == 5

    def test_paper_feature_sets_are_registered(self):
        for feature_set in (ORIGINAL_FEATURE_SET, BLAST_FEATURE_SET, RCNP_FEATURE_SET):
            for name in feature_set:
                assert name in SCHEME_CLASSES

    def test_paper_formulas(self):
        assert set(BLAST_FEATURE_SET) == {"CF-IBF", "RACCB", "RS", "NRS"}
        assert set(RCNP_FEATURE_SET) == {"CF-IBF", "RACCB", "JS", "LCP", "WJS"}
        assert set(ORIGINAL_FEATURE_SET) == {"CF-IBF", "RACCB", "JS", "LCP"}
        assert "LCP" not in BLAST_FEATURE_SET  # the expensive feature BLAST avoids


class TestFeatureSubsets:
    def test_enumerates_255_subsets_of_eight_features(self):
        subsets = all_feature_subsets(PAPER_FEATURES)
        assert len(subsets) == 2 ** len(PAPER_FEATURES) - 1 == 255

    def test_no_duplicates_and_all_non_empty(self):
        subsets = all_feature_subsets(PAPER_FEATURES)
        assert len(set(subsets)) == len(subsets)
        assert all(len(subset) >= 1 for subset in subsets)

    def test_min_size_filter(self):
        subsets = all_feature_subsets(("A", "B", "C"), min_size=2)
        assert all(len(subset) >= 2 for subset in subsets)
        assert len(subsets) == 4

    def test_ordered_by_size(self):
        subsets = all_feature_subsets(("A", "B", "C"))
        sizes = [len(subset) for subset in subsets]
        assert sizes == sorted(sizes)

    def test_invalid_min_size(self):
        with pytest.raises(ValueError):
            all_feature_subsets(("A",), min_size=0)
