"""Golden regression tests for feature generation.

A small deterministic block collection (seeded construction below) has its
exact feature matrix frozen into ``tests/data/golden_features.json``.  Both
backends are checked against the frozen values, so any change to a scheme,
to :class:`BlockStatistics`, or to either backend that silently shifts a
score fails here — equivalence tests alone would miss a bug that changes
both backends the same way.

To regenerate the fixture after an *intentional* semantic change::

    PYTHONPATH=src python tests/weights/test_golden_features.py --regenerate
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import FeatureVectorGenerator
from repro.datamodel import Block, BlockCollection, CandidateSet, EntityIndexSpace
from repro.weights import BACKENDS, PAPER_FEATURES, BlockStatistics

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_features.json"

#: every scheme, CBS included (LCP expands to two columns -> 10 columns)
GOLDEN_FEATURE_SET = ("CBS",) + PAPER_FEATURES


def _seeded_members(rng, low, high, size):
    """A sorted unique draw of node ids in ``[low, high)``."""
    pool = np.arange(low, high)
    take = min(size, pool.size)
    return sorted(int(node) for node in rng.choice(pool, size=take, replace=False))


def build_golden_cases():
    """The two deterministic collections frozen in the golden fixture."""
    rng = np.random.default_rng(7)

    bilateral_space = EntityIndexSpace(9, 8)
    bilateral_blocks = BlockCollection(
        [
            Block(
                f"b{index}",
                _seeded_members(rng, 0, 9, int(rng.integers(1, 5))),
                _seeded_members(rng, 9, 17, int(rng.integers(1, 5))),
            )
            for index in range(7)
        ]
        + [Block("empty", []), Block("lonely", [8])],
        bilateral_space,
    )

    unilateral_space = EntityIndexSpace(12, 0)
    unilateral_blocks = BlockCollection(
        [
            Block(f"u{index}", _seeded_members(rng, 0, 11, int(rng.integers(2, 6))))
            for index in range(6)
        ]
        + [Block("singleton", [11])],
        unilateral_space,
    )

    return {
        "bilateral": (bilateral_blocks, CandidateSet.from_blocks(bilateral_blocks)),
        "unilateral": (unilateral_blocks, CandidateSet.from_blocks(unilateral_blocks)),
    }


def _compute_matrix(blocks, candidates, backend="loop"):
    stats = BlockStatistics(blocks)
    return FeatureVectorGenerator(GOLDEN_FEATURE_SET, backend=backend).generate(
        candidates, stats
    )


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("case", ("bilateral", "unilateral"))
@pytest.mark.parametrize("backend", BACKENDS)
def test_feature_matrix_matches_golden(golden, case, backend):
    blocks, candidates = build_golden_cases()[case]
    frozen = golden[case]
    assert candidates.as_tuples() == [tuple(pair) for pair in frozen["pairs"]], (
        "the deterministic golden construction changed; regenerate the fixture "
        "only if the change is intentional"
    )
    matrix = _compute_matrix(blocks, candidates, backend=backend)
    assert list(matrix.columns) == frozen["columns"]
    np.testing.assert_allclose(
        matrix.values, np.array(frozen["values"]), rtol=1e-10, atol=1e-13
    )


def test_golden_fixture_is_nontrivial(golden):
    """Guard against an accidentally empty or degenerate frozen matrix."""
    for case in ("bilateral", "unilateral"):
        values = np.array(golden[case]["values"])
        assert values.shape[0] >= 10
        assert values.shape[1] == len(golden[case]["columns"])
        assert np.count_nonzero(values) > values.size / 4


def _regenerate() -> None:
    payload = {
        "description": (
            "Frozen loop-backend feature matrices of the deterministic "
            "collections in test_golden_features.build_golden_cases "
            f"(feature set {list(GOLDEN_FEATURE_SET)})"
        ),
    }
    for case, (blocks, candidates) in build_golden_cases().items():
        matrix = _compute_matrix(blocks, candidates, backend="loop")
        payload[case] = {
            "columns": list(matrix.columns),
            "pairs": [list(pair) for pair in candidates.as_tuples()],
            "values": matrix.values.tolist(),
        }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
