"""Tests for the CSV loaders (real-data path of the dataset substrate)."""

import pytest

from repro.datasets import (
    load_clean_clean_directory,
    load_dirty_directory,
    read_entity_csv,
    read_ground_truth_csv,
)


@pytest.fixture
def csv_dataset_dir(tmp_path):
    """Write a tiny Clean-Clean ER dataset in the expected CSV layout."""
    (tmp_path / "first.csv").write_text(
        "id,name,maker\n"
        "a1,apple iphone x,apple\n"
        "a2,samsung s20,samsung\n",
        encoding="utf-8",
    )
    (tmp_path / "second.csv").write_text(
        "id,name,brand\n"
        "b1,iphone x 64gb,apple\n"
        "b2,huawei mate 20,huawei\n",
        encoding="utf-8",
    )
    (tmp_path / "ground_truth.csv").write_text(
        "first_id,second_id\na1,b1\n", encoding="utf-8"
    )
    return tmp_path


class TestEntityCsv:
    def test_read_entities(self, csv_dataset_dir):
        collection = read_entity_csv(csv_dataset_dir / "first.csv")
        assert len(collection) == 2
        assert collection.by_id("a1").attribute("name") == "apple iphone x"
        assert "id" not in collection.by_id("a1").attributes

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_entity_csv(tmp_path / "nope.csv")

    def test_missing_id_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name\nfoo\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_entity_csv(path)


class TestGroundTruthCsv:
    def test_read_pairs(self, csv_dataset_dir):
        first = read_entity_csv(csv_dataset_dir / "first.csv")
        second = read_entity_csv(csv_dataset_dir / "second.csv")
        truth = read_ground_truth_csv(csv_dataset_dir / "ground_truth.csv", first, second)
        assert len(truth) == 1
        assert truth.is_match(0, 2)  # a1 <-> b1

    def test_missing_columns(self, tmp_path, csv_dataset_dir):
        first = read_entity_csv(csv_dataset_dir / "first.csv")
        second = read_entity_csv(csv_dataset_dir / "second.csv")
        bad = tmp_path / "gt.csv"
        bad.write_text("x,y\na1,b1\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_ground_truth_csv(bad, first, second)


class TestDirectoryLoaders:
    def test_load_clean_clean_directory(self, csv_dataset_dir):
        dataset = load_clean_clean_directory(csv_dataset_dir, name="tiny")
        assert dataset.name == "tiny"
        assert len(dataset.first) == 2
        assert len(dataset.second) == 2
        assert len(dataset.ground_truth) == 1

    def test_attach_registry_profile(self, csv_dataset_dir):
        dataset = load_clean_clean_directory(
            csv_dataset_dir, name="tiny", profile_name="AbtBuy"
        )
        assert dataset.profile.name == "AbtBuy"

    def test_load_dirty_directory(self, tmp_path):
        (tmp_path / "first.csv").write_text(
            "id,name\nx1,apple iphone\nx2,apple iphone 64gb\nx3,samsung tv\n",
            encoding="utf-8",
        )
        (tmp_path / "ground_truth.csv").write_text(
            "first_id,second_id\nx1,x2\n", encoding="utf-8"
        )
        dataset = load_dirty_directory(tmp_path, name="tiny-dirty")
        assert len(dataset.collection) == 3
        assert len(dataset.ground_truth) == 1
        assert not dataset.collection.is_clean

    def test_end_to_end_on_csv_data(self, csv_dataset_dir):
        """The whole pipeline must run on loaded CSV data, not just generated data."""
        from repro.blocking import prepare_blocks
        from repro.datamodel import CandidateSet

        dataset = load_clean_clean_directory(csv_dataset_dir, name="tiny")
        prepared = prepare_blocks(dataset.first, dataset.second, apply_filtering=False)
        assert dataset.ground_truth.covered_by(prepared.candidates) == 1
