"""Tests for the synthetic dataset generators (vocabulary, corruption, benchmarks, dirty)."""

import numpy as np
import pytest

from repro.datasets import (
    CLEAN_CLEAN_ORDER,
    CLEAN_CLEAN_PROFILES,
    CorruptionConfig,
    DIRTY_ORDER,
    corrupt_attributes,
    corrupt_tokens,
    generate_clean_clean,
    generate_dirty,
    get_dirty_profile,
    get_profile,
    get_vocabulary,
    introduce_typo,
    load_benchmark,
    load_dirty_dataset,
)
from repro.utils.rng import make_rng


class TestVocabulary:
    def test_all_domains_available(self):
        for domain in ("products", "movies", "bibliographic", "people"):
            vocabulary = get_vocabulary(domain, size=500)
            assert len(vocabulary.tokens) == 500
            assert vocabulary.domain == domain

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            get_vocabulary("astrology")

    def test_zipf_sampling_prefers_frequent_tokens(self, rng):
        vocabulary = get_vocabulary("products", size=1000)
        sampled = vocabulary.sample_tokens(rng, 5000, with_common=False)
        head = sum(1 for token in sampled if token in vocabulary.tokens[:50])
        tail = sum(1 for token in sampled if token in vocabulary.tokens[-50:])
        assert head > 5 * max(tail, 1)

    def test_sample_zero_tokens(self, rng):
        vocabulary = get_vocabulary("movies", size=100)
        assert vocabulary.sample_tokens(rng, 0) == []


class TestCorruption:
    def test_typo_changes_token(self, rng):
        token = "television"
        changed = sum(introduce_typo(token, rng) != token for _ in range(20))
        assert changed >= 15  # typos almost always alter the token

    def test_corrupt_tokens_never_empty(self, rng):
        config = CorruptionConfig(token_drop_probability=1.0)
        result = corrupt_tokens(["only"], config, rng)
        assert result  # at least one token survives

    def test_corrupt_attributes_keeps_one_value(self, rng):
        config = CorruptionConfig(attribute_missing_probability=1.0)
        attributes = {"a": "foo bar", "b": "baz"}
        corrupted = corrupt_attributes(attributes, config, rng)
        assert any(value for value in corrupted.values())

    def test_zero_noise_is_identity(self, rng):
        config = CorruptionConfig(0.0, 0.0, 0.0, 0.0)
        attributes = {"a": "foo bar", "b": "baz"}
        assert corrupt_attributes(attributes, config, rng) == attributes

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            CorruptionConfig(token_typo_probability=1.5)

    def test_preset_levels_ordered(self):
        clean, noisy = CorruptionConfig.clean(), CorruptionConfig.noisy()
        assert clean.token_drop_probability < noisy.token_drop_probability
        assert clean.attribute_missing_probability < noisy.attribute_missing_probability


class TestRegistry:
    def test_all_nine_benchmarks_registered(self):
        assert len(CLEAN_CLEAN_ORDER) == 9
        for name in CLEAN_CLEAN_ORDER:
            profile = get_profile(name)
            assert profile.name == name

    def test_all_five_dirty_datasets_registered(self):
        assert DIRTY_ORDER == ["D10K", "D50K", "D100K", "D200K", "D300K"]
        for name in DIRTY_ORDER:
            assert get_dirty_profile(name).name == name

    def test_unknown_names(self):
        with pytest.raises(KeyError):
            get_profile("Nope")
        with pytest.raises(KeyError):
            get_dirty_profile("D1M")

    def test_generated_sizes_respect_scale(self):
        profile = get_profile("DblpAcm")
        small = profile.generated_sizes(0.05)
        large = profile.generated_sizes(0.2)
        assert small[0] < large[0]
        assert small[2] <= min(small[0], small[1])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_profile("AbtBuy").generated_sizes(0.0)

    def test_paper_characteristics_recorded(self):
        profile = get_profile("WalmartAmazon")
        assert profile.paper_entities_second == 22_100
        assert profile.paper_candidates == 27_400_000


class TestCleanCleanGeneration:
    def test_deterministic_generation(self):
        first = load_benchmark("AbtBuy", seed=3)
        second = load_benchmark("AbtBuy", seed=3)
        assert first.first.ids() == second.first.ids()
        assert first.first[0].attributes == second.first[0].attributes
        assert first.ground_truth.pairs() == second.ground_truth.pairs()

    def test_different_seeds_differ(self):
        first = load_benchmark("AbtBuy", seed=3)
        second = load_benchmark("AbtBuy", seed=4)
        assert first.first[0].attributes != second.first[0].attributes

    def test_sizes_match_profile(self):
        profile = get_profile("ImdbTmdb")
        dataset = generate_clean_clean(profile, seed=0)
        expected_first, expected_second, expected_duplicates = profile.generated_sizes()
        assert len(dataset.first) == expected_first
        assert len(dataset.second) == expected_second
        assert len(dataset.ground_truth) == expected_duplicates

    def test_ground_truth_pairs_cross_collections(self):
        dataset = load_benchmark("DblpAcm", seed=0)
        space = dataset.ground_truth.index_space
        for left, right in dataset.ground_truth:
            assert left < space.size_first
            assert right >= space.size_first

    def test_collections_are_clean(self):
        dataset = load_benchmark("DblpAcm", seed=0)
        assert dataset.first.is_clean and dataset.second.is_clean

    def test_noisy_profile_shares_fewer_tokens_than_clean(self):
        from repro.utils.text import distinct_tokens

        def average_overlap(dataset):
            overlaps = []
            for left, right in list(dataset.ground_truth)[:50]:
                first_profile = dataset.first[left]
                second_profile = dataset.second[right - len(dataset.first)]
                first_tokens = distinct_tokens(first_profile.text())
                second_tokens = distinct_tokens(second_profile.text())
                union = first_tokens | second_tokens
                if union:
                    overlaps.append(len(first_tokens & second_tokens) / len(union))
            return np.mean(overlaps)

        noisy = load_benchmark("AbtBuy", seed=1)
        clean = load_benchmark("DblpAcm", seed=1)
        assert average_overlap(noisy) < average_overlap(clean)

    def test_summary(self):
        dataset = load_benchmark("AbtBuy", seed=0)
        summary = dataset.summary()
        assert summary["entities_first"] == len(dataset.first)
        assert summary["duplicates"] == len(dataset.ground_truth)


class TestDirtyGeneration:
    def test_deterministic(self):
        first = load_dirty_dataset("D10K", seed=2, scale=0.03)
        second = load_dirty_dataset("D10K", seed=2, scale=0.03)
        assert first.collection.ids() == second.collection.ids()
        assert first.ground_truth.pairs() == second.ground_truth.pairs()

    def test_single_dirty_collection(self):
        dataset = load_dirty_dataset("D10K", seed=0, scale=0.03)
        assert not dataset.collection.is_clean
        assert len(dataset.ground_truth) > 0
        # all ground-truth nodes live in the single collection's index space
        for left, right in dataset.ground_truth:
            assert 0 <= left < len(dataset.collection)
            assert 0 <= right < len(dataset.collection)

    def test_sizes_increase_along_series(self):
        small = get_dirty_profile("D10K").generated_size()
        large = get_dirty_profile("D300K").generated_size()
        assert small < get_dirty_profile("D100K").generated_size() < large

    def test_summary(self):
        dataset = load_dirty_dataset("D50K", seed=0, scale=0.01)
        summary = dataset.summary()
        assert summary["entities"] == len(dataset.collection)
