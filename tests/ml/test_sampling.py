"""Tests for training-set sampling (undersampling policies)."""

import numpy as np
import pytest

from repro.ml import balanced_sample, proportional_positive_sample, train_test_split_indices


@pytest.fixture
def imbalanced_labels():
    """1000 candidate pairs, 50 of them positive — ER-style imbalance."""
    labels = np.zeros(1000, dtype=bool)
    labels[:50] = True
    return labels


class TestBalancedSample:
    def test_exact_balance(self, imbalanced_labels):
        sample = balanced_sample(imbalanced_labels, size=50, seed=0)
        assert len(sample) == 50
        assert sample.positives == 25
        assert sample.negatives == 25

    def test_indices_are_distinct_and_label_aligned(self, imbalanced_labels):
        sample = balanced_sample(imbalanced_labels, size=40, seed=1)
        assert len(set(sample.indices.tolist())) == len(sample)
        assert np.array_equal(sample.labels, imbalanced_labels[sample.indices])

    def test_reproducible_with_seed(self, imbalanced_labels):
        first = balanced_sample(imbalanced_labels, size=50, seed=42)
        second = balanced_sample(imbalanced_labels, size=50, seed=42)
        assert np.array_equal(first.indices, second.indices)

    def test_different_seeds_differ(self, imbalanced_labels):
        first = balanced_sample(imbalanced_labels, size=50, seed=1)
        second = balanced_sample(imbalanced_labels, size=50, seed=2)
        assert not np.array_equal(first.indices, second.indices)

    def test_small_positive_class_degrades_gracefully(self):
        labels = np.zeros(100, dtype=bool)
        labels[:3] = True
        sample = balanced_sample(labels, size=50, seed=0)
        assert sample.positives == 3  # all available positives
        assert sample.negatives == 25

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            balanced_sample(np.zeros(10, dtype=bool), size=4, seed=0)

    def test_minimum_size(self, imbalanced_labels):
        with pytest.raises(ValueError):
            balanced_sample(imbalanced_labels, size=1, seed=0)


class TestProportionalSample:
    def test_five_percent_rule(self, imbalanced_labels):
        sample = proportional_positive_sample(imbalanced_labels, positive_fraction=0.2, seed=0)
        # 20 % of 50 positives = 10 per class
        assert sample.positives == 10
        assert sample.negatives == 10

    def test_minimum_per_class(self, imbalanced_labels):
        sample = proportional_positive_sample(
            imbalanced_labels, positive_fraction=0.01, seed=0, min_per_class=5
        )
        assert sample.positives == 5

    def test_invalid_fraction(self, imbalanced_labels):
        with pytest.raises(ValueError):
            proportional_positive_sample(imbalanced_labels, positive_fraction=0.0)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            proportional_positive_sample(np.ones(10, dtype=bool))


class TestTrainTestSplit:
    def test_partition(self):
        train, test = train_test_split_indices(100, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == 100
        assert set(train.tolist()).isdisjoint(test.tolist())
        assert len(test) == 25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            train_test_split_indices(1, test_fraction=0.5)
        with pytest.raises(ValueError):
            train_test_split_indices(10, test_fraction=1.5)
