"""Tests for the from-scratch probabilistic classifiers."""

import numpy as np
import pytest

from repro.ml import GaussianNB, LinearSVC, LogisticRegression, roc_auc_score


def make_separable(rng, n=200, gap=3.0):
    """Two Gaussian blobs separated along both feature axes."""
    negatives = rng.normal(loc=0.0, scale=1.0, size=(n // 2, 2))
    positives = rng.normal(loc=gap, scale=1.0, size=(n // 2, 2))
    features = np.vstack([negatives, positives])
    labels = np.concatenate([np.zeros(n // 2), np.ones(n // 2)])
    order = rng.permutation(n)
    return features[order], labels[order]


def make_overlapping(rng, n=300):
    """Two overlapping blobs — probabilities should not saturate."""
    return make_separable(rng, n=n, gap=1.0)


CLASSIFIERS = [
    ("logistic", lambda: LogisticRegression()),
    ("svm", lambda: LinearSVC(random_state=0)),
    ("nb", lambda: GaussianNB()),
]


@pytest.mark.parametrize("name,factory", CLASSIFIERS)
class TestClassifierContract:
    def test_probabilities_in_unit_interval(self, name, factory, rng):
        features, labels = make_separable(rng)
        model = factory().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert probabilities.shape == (len(labels),)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    def test_separable_data_high_accuracy(self, name, factory, rng):
        features, labels = make_separable(rng)
        model = factory().fit(features, labels)
        predictions = model.predict(features)
        accuracy = np.mean(predictions == labels)
        assert accuracy > 0.95

    def test_ranking_quality_on_overlapping_data(self, name, factory, rng):
        features, labels = make_overlapping(rng)
        model = factory().fit(features, labels)
        auc = roc_auc_score(labels.astype(bool), model.predict_proba(features))
        assert auc > 0.75

    def test_fit_returns_self(self, name, factory, rng):
        features, labels = make_separable(rng, n=40)
        model = factory()
        assert model.fit(features, labels) is model

    def test_predict_before_fit_raises(self, name, factory):
        with pytest.raises(RuntimeError):
            factory().predict_proba(np.zeros((2, 2)))

    def test_single_class_training_rejected(self, name, factory):
        features = np.random.default_rng(0).normal(size=(10, 2))
        with pytest.raises(ValueError):
            factory().fit(features, np.zeros(10))

    def test_empty_training_rejected(self, name, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((0, 2)), np.zeros(0))

    def test_feature_dimension_mismatch_rejected(self, name, factory, rng):
        features, labels = make_separable(rng, n=40)
        model = factory().fit(features, labels)
        with pytest.raises(ValueError):
            model.predict_proba(np.zeros((3, 5)))

    def test_works_on_tiny_balanced_sample(self, name, factory, rng):
        """The paper's headline setting: 25 + 25 labelled instances."""
        features, labels = make_separable(rng, n=50)
        model = factory().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert roc_auc_score(labels.astype(bool), probabilities) > 0.9


class TestLogisticRegressionSpecifics:
    def test_deterministic_fit(self, rng):
        features, labels = make_separable(rng)
        first = LogisticRegression().fit(features, labels)
        second = LogisticRegression().fit(features, labels)
        assert np.allclose(first.coef_, second.coef_)
        assert first.intercept_ == pytest.approx(second.intercept_)

    def test_regularisation_shrinks_weights(self, rng):
        features, labels = make_separable(rng)
        weak = LogisticRegression(regularization=1e-6).fit(features, labels)
        strong = LogisticRegression(regularization=10.0).fit(features, labels)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogisticRegression(regularization=-1.0)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)

    def test_decision_function_monotone_with_probability(self, rng):
        features, labels = make_overlapping(rng)
        model = LogisticRegression().fit(features, labels)
        scores = model.decision_function(features)
        probabilities = model.predict_proba(features)
        order = np.argsort(scores)
        assert np.all(np.diff(probabilities[order]) >= -1e-12)


class TestLinearSVCSpecifics:
    def test_fixed_seed_reproducible(self, rng):
        features, labels = make_separable(rng)
        first = LinearSVC(random_state=3).fit(features, labels)
        second = LinearSVC(random_state=3).fit(features, labels)
        assert np.allclose(first.coef_, second.coef_)

    def test_uncalibrated_mode(self, rng):
        features, labels = make_separable(rng)
        model = LinearSVC(random_state=0, calibrate=False).fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LinearSVC(regularization=0.0)
        with pytest.raises(ValueError):
            LinearSVC(epochs=0)


class TestGaussianNBSpecifics:
    def test_class_priors_learned(self, rng):
        features, labels = make_separable(rng, n=100)
        model = GaussianNB().fit(features, labels)
        assert model.class_prior_.sum() == pytest.approx(1.0)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=-1.0)
