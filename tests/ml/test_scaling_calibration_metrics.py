"""Tests for feature scaling, Platt calibration and classification metrics."""

import numpy as np
import pytest

from repro.ml import (
    ConfusionCounts,
    MinMaxScaler,
    PlattScaler,
    StandardScaler,
    accuracy_score,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        transformed = StandardScaler().fit_transform(data)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_untouched(self):
        data = np.array([[1.0, 2.0], [1.0, 4.0], [1.0, 6.0]])
        transformed = StandardScaler().fit_transform(data)
        assert np.allclose(transformed[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_dimension_mismatch(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            scaler.transform(rng.normal(size=(5, 4)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 2)))


class TestMinMaxScaler:
    def test_unit_range(self, rng):
        data = rng.normal(size=(100, 3)) * 7 + 2
        transformed = MinMaxScaler().fit_transform(data)
        assert transformed.min() == pytest.approx(0.0)
        assert transformed.max() == pytest.approx(1.0)

    def test_constant_column(self):
        data = np.array([[2.0], [2.0]])
        transformed = MinMaxScaler().fit_transform(data)
        assert np.allclose(transformed, 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))


class TestPlattScaler:
    def test_monotone_mapping(self, rng):
        scores = rng.normal(size=300)
        labels = (scores + rng.normal(scale=0.5, size=300) > 0).astype(float)
        scaler = PlattScaler().fit(scores, labels)
        probabilities = scaler.transform(np.sort(scores))
        assert np.all(np.diff(probabilities) >= -1e-12) or np.all(np.diff(probabilities) <= 1e-12)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_higher_scores_get_higher_probability(self, rng):
        scores = np.concatenate([rng.normal(-2, 1, 100), rng.normal(2, 1, 100)])
        labels = np.concatenate([np.zeros(100), np.ones(100)])
        scaler = PlattScaler().fit(scores, labels)
        assert scaler.transform(np.array([3.0]))[0] > scaler.transform(np.array([-3.0]))[0]

    def test_mismatched_input_rejected(self):
        with pytest.raises(ValueError):
            PlattScaler().fit(np.zeros(3), np.zeros(4))

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            PlattScaler().fit(np.zeros(0), np.zeros(0))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PlattScaler().transform(np.zeros(3))


class TestMetrics:
    def test_confusion_counts(self):
        labels = np.array([1, 1, 0, 0, 1], dtype=bool)
        predictions = np.array([1, 0, 0, 1, 1], dtype=bool)
        counts = confusion_counts(labels, predictions)
        assert counts == ConfusionCounts(2, 1, 1, 1)
        assert counts.total == 5
        assert counts.as_dict() == {"TP": 2, "FP": 1, "TN": 1, "FN": 1}

    def test_precision_recall_f1(self):
        labels = np.array([1, 1, 0, 0, 1], dtype=bool)
        predictions = np.array([1, 0, 0, 1, 1], dtype=bool)
        assert precision_score(labels, predictions) == pytest.approx(2 / 3)
        assert recall_score(labels, predictions) == pytest.approx(2 / 3)
        assert f1_score(labels, predictions) == pytest.approx(2 / 3)
        assert accuracy_score(labels, predictions) == pytest.approx(3 / 5)

    def test_degenerate_cases(self):
        labels = np.array([0, 0], dtype=bool)
        predictions = np.array([0, 0], dtype=bool)
        assert precision_score(labels, predictions) == 0.0
        assert recall_score(labels, predictions) == 0.0
        assert f1_score(labels, predictions) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            precision_score(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))

    def test_roc_auc_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1], dtype=bool)
        assert roc_auc_score(labels, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_roc_auc_random_ranking(self):
        labels = np.array([0, 1, 0, 1], dtype=bool)
        assert roc_auc_score(labels, np.array([0.5, 0.5, 0.5, 0.5])) == pytest.approx(0.5)

    def test_roc_auc_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(3, dtype=bool), np.ones(3))
