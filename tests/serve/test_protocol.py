"""Unit tests for the serving wire protocol (framing, CRC, envelopes)."""

import io
import struct
import zlib

import pytest

from repro.datamodel import make_profile
from repro.serve.protocol import (
    FRAME_HEADER,
    MAX_MESSAGE_BYTES,
    OPERATIONS,
    ProtocolError,
    decode_payload,
    encode_message,
    error_response,
    ok_response,
    profile_from_wire,
    profile_to_wire,
    read_message_from,
    write_message_to,
)


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "insert", "id": 7, "args": {"side": 1, "k": [1, 2]}}
        stream = io.BytesIO()
        write_message_to(stream, message)
        stream.seek(0)
        assert read_message_from(stream) == message

    def test_multiple_messages_in_one_stream(self):
        stream = io.BytesIO()
        messages = [{"id": i, "op": "ping"} for i in range(5)]
        for message in messages:
            write_message_to(stream, message)
        stream.seek(0)
        assert [read_message_from(stream) for _ in range(5)] == messages
        assert read_message_from(stream) is None  # clean EOF

    def test_canonical_encoding_is_deterministic(self):
        a = encode_message({"b": 1, "a": 2})
        b = encode_message({"a": 2, "b": 1})
        assert a == b

    def test_crc_corruption_detected(self):
        blob = bytearray(encode_message({"op": "ping", "id": 1}))
        blob[-1] ^= 0xFF
        stream = io.BytesIO(bytes(blob))
        with pytest.raises(ProtocolError, match="CRC"):
            read_message_from(stream)

    def test_eof_mid_frame_raises(self):
        blob = encode_message({"op": "ping", "id": 1})
        stream = io.BytesIO(blob[: len(blob) - 3])
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_message_from(stream)

    def test_eof_mid_header_raises(self):
        stream = io.BytesIO(b"\x01\x02")
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_message_from(stream)

    def test_oversized_declared_length_rejected_without_reading(self):
        header = FRAME_HEADER.pack(MAX_MESSAGE_BYTES + 1, 0)
        stream = io.BytesIO(header)
        with pytest.raises(ProtocolError, match="cap"):
            read_message_from(stream)

    def test_non_object_payload_rejected(self):
        payload = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(payload, zlib.crc32(payload))

    def test_invalid_json_rejected(self):
        payload = b"{not json"
        with pytest.raises(ProtocolError, match="valid JSON"):
            decode_payload(payload, zlib.crc32(payload))

    def test_header_matches_wal_record_discipline(self):
        # two little-endian uint32s: length + CRC32 — the WAL's record header
        assert FRAME_HEADER.size == struct.calcsize("<II")


class TestProfiles:
    def test_roundtrip(self):
        profile = make_profile("p1", title="alpha beta", venue="x")
        wire = profile_to_wire(profile)
        back = profile_from_wire(wire)
        assert back.entity_id == profile.entity_id
        assert dict(back.attributes) == dict(profile.attributes)

    def test_missing_entity_id_rejected(self):
        with pytest.raises(ProtocolError, match="entity_id"):
            profile_from_wire({"attributes": {}})

    def test_non_object_attributes_rejected(self):
        with pytest.raises(ProtocolError, match="attributes"):
            profile_from_wire({"entity_id": "x", "attributes": [1]})

    def test_values_coerced_to_strings(self):
        profile = profile_from_wire(
            {"entity_id": 17, "attributes": {"year": 2004}}
        )
        assert profile.entity_id == "17"
        assert profile.attributes["year"] == "2004"


class TestEnvelopes:
    def test_ok(self):
        assert ok_response(3, {"x": 1}) == {"id": 3, "ok": True, "result": {"x": 1}}

    def test_error(self):
        response = error_response(4, "unknown_entity", "nope")
        assert response["ok"] is False
        assert response["error"] == {"type": "unknown_entity", "message": "nope"}

    def test_operation_names_are_unique(self):
        assert len(set(OPERATIONS)) == len(OPERATIONS)
