"""Property test: every pinned-offset read equals the canonical view.

Hypothesis generates random operation sequences (single inserts, bulk
loads, removals, in-place updates, both sides).  The sequence is journaled
through a WAL-backed :class:`MatchingSession`, and after *every* operation
the WAL offset is pinned together with the session's canonical retained set
at that moment.  Then shard replicas — created only after the full stream
is on disk, so later records are always present behind each pinned offset —
replay to each pin in turn, and the merged pinned view's ``match`` answer
must equal the recorded canonical answer exactly: same pairs, same
probabilities.  No torn reads, for every shard count.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_frozen_model, reference_retained
from repro.datamodel import make_profile
from repro.incremental import MatchingSession
from repro.persistence.recovery import recover_session
from repro.serve.router import (
    ShardStateStub,
    build_pinned_view,
    match_answer,
    merged_stub_view,
)
from repro.serve.workers import ShardReplica, WalFollowError

_TOKENS = ("alpha", "beta", "gamma", "delta", "eps", "zeta")
_text = st.lists(st.sampled_from(_TOKENS), min_size=0, max_size=4).map(" ".join)

MODEL = make_frozen_model()


def _operations():
    sides = st.sampled_from((0, 1))
    return st.lists(
        st.one_of(
            st.tuples(st.just("add"), sides, _text),
            st.tuples(
                st.just("bulk"), sides, st.lists(_text, min_size=1, max_size=3)
            ),
            st.tuples(st.just("remove"), sides, st.integers(0, 32)),
            st.tuples(st.just("update"), sides, st.integers(0, 32), _text),
        ),
        min_size=1,
        max_size=12,
    )


def _stream(session, operations):
    """Apply a generated op sequence; yield after every applied operation."""
    live = ([], [])
    serial = 0
    for operation in operations:
        kind, side = operation[0], operation[1]
        if kind == "add":
            serial += 1
            entity_id = f"{'ab'[side]}{serial}"
            session.insert(make_profile(entity_id, text=operation[2]), side=side)
            live[side].append(entity_id)
        elif kind == "bulk":
            profiles = []
            for text in operation[2]:
                serial += 1
                entity_id = f"{'ab'[side]}{serial}"
                profiles.append(make_profile(entity_id, text=text))
                live[side].append(entity_id)
            session.insert_bulk(profiles, side=side)
        elif kind == "remove":
            if not live[side]:
                continue
            entity_id = live[side][operation[2] % len(live[side])]
            session.remove(entity_id, side=side)
            live[side].remove(entity_id)
        else:  # update
            if not live[side]:
                continue
            entity_id = live[side][operation[2] % len(live[side])]
            session.update(make_profile(entity_id, text=operation[3]), side=side)
        yield


@settings(max_examples=20, deadline=None)
@given(operations=_operations(), num_shards=st.sampled_from((1, 2, 3)))
def test_every_pinned_offset_equals_canonical(operations, num_shards):
    tmp = Path(tempfile.mkdtemp())
    session = MatchingSession(MODEL, bilateral=True, wal_path=tmp)
    try:
        pinned = [(session.wal.log_offset, reference_retained(session))]
        for _ in _stream(session, operations):
            pinned.append((session.wal.log_offset, reference_retained(session)))
        replicas = [
            ShardReplica(tmp, shard, num_shards) for shard in range(num_shards)
        ]
        try:
            for offset, reference in pinned:
                for replica in replicas:
                    replica.catch_up(offset)
                view = build_pinned_view(
                    [replica.read_state() for replica in replicas],
                    session.index.entity_id,
                )
                answer = match_answer(view, MODEL, session.pruning)
                assert answer["retained"] == reference
        finally:
            for replica in replicas:
                replica.close()
    finally:
        session.close()
        shutil.rmtree(tmp, ignore_errors=True)


_STUB_ARRAYS = (
    "_sides",
    "_indptr",
    "_indices",
    "_block_cardinalities",
    "_inverse_block_cardinalities",
    "_inverse_block_sizes",
    "_blocks_per_entity",
    "_entity_cardinality",
    "_entity_inv_cardinality",
    "_entity_inv_size",
    "_pair_left",
    "_pair_right",
    "_pair_alive",
)


def _assert_stub_identical(actual: ShardStateStub, oracle: ShardStateStub):
    """The delta-maintained stub must hold the same arrays as a rebuilt one."""
    for attribute in _STUB_ARRAYS:
        np.testing.assert_array_equal(
            getattr(actual, attribute).view(),
            getattr(oracle, attribute).view(),
            err_msg=attribute,
        )
    assert actual._block_keys == oracle._block_keys
    assert actual._side_counts == oracle._side_counts
    assert actual.num_blocks == oracle.num_blocks
    assert actual.num_nonempty_blocks == oracle.num_nonempty_blocks
    assert actual.total_cardinality == oracle.total_cardinality
    assert actual._num_live == oracle._num_live
    # member lists only matter (and are only re-shipped) for blocks that
    # still spawn comparisons; the delta stub may retain stale entries for
    # blocks that stopped spawning, which every reader filters out
    spawning = np.flatnonzero(oracle._block_cardinalities.view() > 0).tolist()
    for block_id in spawning:
        for position in (0, 1):
            np.testing.assert_array_equal(
                actual._members[block_id][position],
                oracle._members[block_id][position],
                err_msg=f"members of block {block_id} side {position}",
            )


@settings(max_examples=15, deadline=None)
@given(
    operations=_operations(),
    num_shards=st.sampled_from((1, 2, 3)),
    respawn_at=st.integers(0, 64),
)
def test_resident_delta_view_equals_rebuild(operations, num_shards, respawn_at):
    """The delta-maintained resident view is *identical* — same arrays, same
    answers — to a from-scratch rebuild at every pinned offset, including
    across a forced replica respawn mid-stream (which must full-re-ship)."""
    tmp = Path(tempfile.mkdtemp())
    session = MatchingSession(MODEL, bilateral=True, wal_path=tmp)
    try:
        pinned = [(session.wal.log_offset, reference_retained(session))]
        for _ in _stream(session, operations):
            pinned.append((session.wal.log_offset, reference_retained(session)))
        resident = [
            ShardReplica(tmp, shard, num_shards) for shard in range(num_shards)
        ]
        oracles = [
            ShardReplica(tmp, shard, num_shards) for shard in range(num_shards)
        ]
        stubs = [None] * num_shards
        bases = [None] * num_shards
        respawn_pin = respawn_at % len(pinned)
        respawn_shard = respawn_at % num_shards
        try:
            for pin, (offset, reference) in enumerate(pinned):
                respawned = pin == respawn_pin and pin > 0
                if respawned:
                    # a fresh replica process: new lineage, no shipped base —
                    # the router-side stub and base survive the swap, and the
                    # lineage mismatch must force a full re-ship
                    resident[respawn_shard].close()
                    resident[respawn_shard] = ShardReplica(
                        tmp, respawn_shard, num_shards
                    )
                for shard in range(num_shards):
                    resident[shard].catch_up(offset)
                    state = resident[shard].read_state(base=bases[shard])
                    meta = state["meta"]
                    if pin == 0 or (respawned and shard == respawn_shard):
                        assert state["kind"] == "full"
                    else:
                        assert state["kind"] == "delta"
                    if state["kind"] == "full":
                        stub = ShardStateStub(session.index.entity_id)
                        stub.apply_full(state["arrays"], meta)
                        stubs[shard] = stub
                    else:
                        assert meta["lineage"] == bases[shard]["lineage"]
                        assert int(meta["base_epoch"]) == bases[shard]["epoch"]
                        stubs[shard].apply_delta(state["arrays"], meta)
                    bases[shard] = {
                        "lineage": meta["lineage"],
                        "epoch": int(meta["epoch"]),
                    }
                for oracle in oracles:
                    oracle.catch_up(offset)
                oracle_view = build_pinned_view(
                    [oracle.read_state() for oracle in oracles],
                    session.index.entity_id,
                )
                for shard in range(num_shards):
                    _assert_stub_identical(stubs[shard], oracle_view.shards[shard])
                answer = match_answer(merged_stub_view(stubs), MODEL, session.pruning)
                assert answer["retained"] == reference
        finally:
            for replica in resident + oracles:
                replica.close()
    finally:
        session.close()
        shutil.rmtree(tmp, ignore_errors=True)


class TestFollowerContract:
    def _session(self, tmp):
        session = MatchingSession(MODEL, bilateral=True, wal_path=tmp)
        for i, text in enumerate(("alpha beta", "beta gamma", "alpha gamma")):
            session.insert(make_profile(f"a{i}", text=text), side=0)
            session.insert(make_profile(f"b{i}", text=text), side=1)
        return session

    def test_replicas_never_rewind(self, tmp_path):
        session = self._session(tmp_path)
        try:
            late = session.wal.log_offset
            replica = ShardReplica(tmp_path, 0, 1)
            replica.catch_up(late)
            with pytest.raises(WalFollowError, match="never rewind"):
                replica.catch_up(late - 1)
            replica.close()
        finally:
            session.close()

    def test_non_boundary_offset_rejected(self, tmp_path):
        session = self._session(tmp_path)
        try:
            replica = ShardReplica(tmp_path, 0, 1)
            with pytest.raises(WalFollowError, match="boundary"):
                replica.catch_up(session.wal.log_offset - 1)
            replica.close()
        finally:
            session.close()

    def test_offset_past_log_end_rejected(self, tmp_path):
        session = self._session(tmp_path)
        try:
            replica = ShardReplica(tmp_path, 0, 1)
            with pytest.raises(WalFollowError):
                replica.catch_up(session.wal.log_offset + 8)
            replica.close()
        finally:
            session.close()

    def test_non_wal_file_rejected(self, tmp_path):
        (tmp_path / "wal.log").write_bytes(b"not a log at all")
        replica = ShardReplica(tmp_path, 0, 1)
        with pytest.raises(WalFollowError, match="not a repro write-ahead log"):
            replica.catch_up(16)
        replica.close()


class TestSnapshotBootstrap:
    def test_recovered_node_space_requires_snapshot_bootstrap(self, tmp_path):
        """After recovery (which compacts node ids), replicas bootstrapped
        from the recovery snapshot live in the authority's node space and
        reproduce its canonical answer exactly."""
        session = MatchingSession(MODEL, bilateral=True, wal_path=tmp_path)
        for i, text in enumerate(
            ("alpha beta", "beta gamma", "alpha gamma", "gamma delta")
        ):
            session.insert(make_profile(f"a{i}", text=text), side=0)
            session.insert(make_profile(f"b{i}", text=text), side=1)
        session.remove("a1", side=0)
        snapshot_path = session.checkpoint()
        session.insert(make_profile("a9", text="delta beta"), side=0)
        session.close()

        recovered = recover_session(tmp_path)
        try:
            recovered.insert(make_profile("b9", text="alpha delta"), side=1)
            offset = recovered.wal.log_offset
            replicas = [
                ShardReplica(tmp_path, shard, 2, bootstrap=snapshot_path)
                for shard in range(2)
            ]
            try:
                for replica in replicas:
                    replica.catch_up(offset)
                view = build_pinned_view(
                    [replica.read_state() for replica in replicas],
                    recovered.index.entity_id,
                )
                answer = match_answer(view, MODEL, recovered.pruning)
                assert answer["retained"] == reference_retained(recovered)
            finally:
                for replica in replicas:
                    replica.close()
        finally:
            recovered.close()

    def test_missing_bootstrap_snapshot_is_an_error(self, tmp_path):
        session = self._tiny(tmp_path)
        session.close()
        replica = ShardReplica(
            tmp_path, 0, 1, bootstrap=tmp_path / "snapshot-999999.snap"
        )
        with pytest.raises(WalFollowError, match="missing or corrupt"):
            replica.catch_up(16)
        replica.close()

    @staticmethod
    def _tiny(tmp_path):
        session = MatchingSession(MODEL, bilateral=True, wal_path=tmp_path)
        session.insert(make_profile("a0", text="alpha"), side=0)
        return session
