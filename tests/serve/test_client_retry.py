"""Client retry semantics against a scripted server.

A tiny in-process socket server plays back a per-request script
(``ok`` / ``overloaded`` / ``drop``-the-connection), recording every
request it reads — so each retry rule is asserted by *counting what the
server actually saw*:

* connect retry: a client constructed before the listener binds keeps
  retrying within ``connect_timeout`` instead of failing on the first
  refusal;
* an ``overloaded`` rejection is retried for any op (shed means not
  applied);
* a connection dropped after a non-idempotent write was sent is NEVER
  retried — the server must see exactly one request;
* a dropped idempotent read reconnects and retries.
"""

import socket
import threading

import pytest

from repro.datamodel import make_profile
from repro.serve import ProtocolError, ServeClient, ServeError
from repro.serve.protocol import (
    error_response,
    ok_response,
    read_message_from,
    write_message_to,
)

_OK_RESULT = {"entity_id": "x", "offset": 1}


class _ScriptedServer:
    """One-connection-at-a-time server that answers per a fixed script."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self.connections = 0
        self.ready = threading.Event()
        self._stopping = False
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def start(self, bind_delay=0.0):
        self._bind_delay = bind_delay
        self._thread.start()
        return self

    def stop(self):
        self._stopping = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(10)

    def _serve(self):
        import time

        if self._bind_delay:
            time.sleep(self._bind_delay)
        self._sock.listen()
        self._sock.settimeout(0.2)
        self.ready.set()
        while not self._stopping:
            try:
                connection, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections += 1
            self._handle(connection)

    def _handle(self, connection):
        stream = connection.makefile("rwb")
        try:
            while True:
                try:
                    message = read_message_from(stream)
                except (ProtocolError, OSError):
                    break
                if message is None:
                    break
                self.requests.append(message["op"])
                action = self.script.pop(0) if self.script else "ok"
                if action == "drop":
                    break  # hang up without replying
                if action == "overloaded":
                    response = error_response(
                        message["id"], "overloaded", "queue full"
                    )
                else:
                    response = ok_response(message["id"], _OK_RESULT)
                write_message_to(stream, response)
        finally:
            for closable in (stream, connection):
                try:
                    closable.close()
                except OSError:
                    pass


@pytest.fixture()
def scripted():
    servers = []

    def factory(script, bind_delay=0.0):
        server = _ScriptedServer(script).start(bind_delay=bind_delay)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()


class TestConnectRetry:
    def test_client_waits_for_a_late_listener(self, scripted):
        server = scripted(["ok"], bind_delay=0.5)
        # constructed before the listener is bound: the connect retries
        # with backoff inside connect_timeout instead of failing outright
        with ServeClient(port=server.port, connect_timeout=10.0) as client:
            assert client.ping() == _OK_RESULT
        assert server.connections == 1

    def test_connect_gives_up_past_the_timeout(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nobody will ever listen here
        with pytest.raises(OSError):
            ServeClient(
                port=dead_port, connect_timeout=0.3, backoff=0.05
            )


class TestRequestRetry:
    def test_overloaded_mutation_is_retried(self, scripted):
        server = scripted(["overloaded", "overloaded", "ok"])
        with ServeClient(port=server.port, retries=3, backoff=0.01) as client:
            result = client.insert(make_profile("x", text="alpha"), side=0)
        assert result == _OK_RESULT
        assert server.requests == ["insert", "insert", "insert"]

    def test_overloaded_exhausts_the_retry_budget(self, scripted):
        server = scripted(["overloaded"] * 3)
        with ServeClient(port=server.port, retries=2, backoff=0.01) as client:
            with pytest.raises(ServeError) as excinfo:
                client.insert(make_profile("x", text="alpha"), side=0)
        assert excinfo.value.error_type == "overloaded"
        assert server.requests == ["insert"] * 3  # 1 try + 2 retries

    def test_sent_write_is_never_retried_after_a_drop(self, scripted):
        server = scripted(["drop", "ok"])
        with ServeClient(port=server.port, retries=3, backoff=0.01) as client:
            with pytest.raises(ProtocolError):
                client.insert(make_profile("x", text="alpha"), side=0)
            # the ambiguous write surfaced after ONE send: the daemon may
            # have applied it, so the client must not resend it
            assert server.requests == ["insert"]
            # the connection re-establishes for the caller's next request
            assert client.ping() == _OK_RESULT
        assert server.connections == 2

    def test_dropped_idempotent_read_is_retried(self, scripted):
        server = scripted(["drop", "ok"])
        with ServeClient(port=server.port, retries=2, backoff=0.01) as client:
            assert client.match() == _OK_RESULT
        assert server.requests == ["match", "match"]
        assert server.connections == 2
