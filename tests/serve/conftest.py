"""Shared fixtures for the serving tests.

The serving layer's correctness contract is *exactness*: every response
must equal the canonical (offline) answer at its pinned WAL offset.  The
tests therefore use a deterministic frozen classifier — a fixed-weight
logistic with rounded probabilities, the same device the streaming
equivalence tests use — so daemon, replicas and offline reference score
every pair bit-identically without training anything.
"""

import numpy as np
import pytest

from repro.core import FeatureVectorGenerator
from repro.incremental import FrozenModel
from repro.weights import RCNP_FEATURE_SET


class FixedLogistic:
    """Deterministic 'classifier': logistic over fixed linspace weights."""

    def __init__(self, n_features: int) -> None:
        self._weights = np.linspace(-1.0, 1.0, n_features)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        z = np.clip(features @ self._weights, -30.0, 30.0)
        return np.round(1.0 / (1.0 + np.exp(-z)), 9)


def make_frozen_model() -> FrozenModel:
    """A deterministic frozen model over the RCNP feature set."""
    width = FeatureVectorGenerator(RCNP_FEATURE_SET).columns
    return FrozenModel(
        classifier=FixedLogistic(len(width)),
        scaler=None,
        feature_set=RCNP_FEATURE_SET,
    )


def reference_retained(session):
    """A session's retained set in the serve ``match`` response shape:
    ``[[id_a, id_b, probability], ...]`` sorted by id pair."""
    result = session.retained()
    probabilities = result.probabilities[result.retained_mask]
    return sorted(
        [id_a, id_b, float(probability)]
        for (id_a, id_b), probability in zip(result.retained_ids, probabilities)
    )


@pytest.fixture(scope="session")
def frozen_model():
    return make_frozen_model()


@pytest.fixture()
def ref_retained():
    return reference_retained
