"""Checkpoint adoption: O(tail) bootstrap, identical to from-zero.

A replica bootstrapped by *adopting* a checkpoint (rebuilding the node
space from the snapshot's slot layout, then replaying only the WAL tail
past its embedded offset) must match a replica that replayed the whole
log from byte zero, for any operation stream, any shard count, and any
interleaving of checkpoints with the stream.  "Match" means the *live
projection* is identical: node numbering and sides, each live node's
block memberships, every spawning block's state (keyed by block key —
a compacting checkpoint drops the empty blocks and stale CSR rows that
a from-zero replay keeps around for tombstoned entities, so raw block
ids can differ), the live pair set, and per-node float aggregates to
within one ULP (the two paths can order summations differently).
Answer-level results are still exact:
``test_adoption_answers_match_canonical`` compares retained pairs with
no tolerance.  The follower's accounting (``records_delivered`` /
``bytes_skipped``) proves the bootstrap really was O(tail): an adopted
replica parses only the post-snapshot records.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_frozen_model, reference_retained
from repro.datamodel import make_profile
from repro.incremental import MatchingSession
from repro.persistence.log import LOG_MAGIC, WriteAheadLog
from repro.serve.router import build_pinned_view, match_answer
from repro.serve.workers import ShardReplica, WalFollowError

MODEL = make_frozen_model()

_TOKENS = ("alpha", "beta", "gamma", "delta", "eps", "zeta")
_text = st.lists(st.sampled_from(_TOKENS), min_size=0, max_size=4).map(" ".join)

#: an adopt_floor above any real sequence: adoption finds nothing eligible
#: and the replica replays from byte zero — the oracle bootstrap path
NEVER_ADOPT = 10**6


def _canonical_state(replica):
    """The replica's live projection, normalized by block key.

    Block ids are an artifact of replay history (a compacting checkpoint
    never recreates emptied blocks), so per-block state is keyed by block
    key and tombstoned nodes' stale CSR rows are masked out.
    """
    index = replica.index
    sides = index._sides.view()
    indptr = index._indptr.view()
    indices = index._indices.view()
    keys = index._block_keys
    rows = []
    for node in range(len(sides)):
        if sides[node] < 0:
            rows.append(None)
        else:
            rows.append(
                frozenset(
                    keys[int(b)]
                    for b in indices[indptr[node] : indptr[node + 1]]
                )
            )
    cardinalities = index._block_cardinalities.view()
    blocks = {}
    for block_id in np.flatnonzero(cardinalities > 0).tolist():
        blocks[keys[block_id]] = {
            "cardinality": int(cardinalities[block_id]),
            "size": int(index._block_sizes[block_id]),
            "inv_cardinality": float(index._inverse_block_cardinalities[block_id]),
            "inv_size": float(index._inverse_block_sizes[block_id]),
            "members_first": sorted(index._members_first[block_id]),
            "members_second": sorted(index._members_second[block_id]),
        }
    alive = index._pair_alive.view()
    pairs = set(
        zip(
            index._pair_left.view()[alive].tolist(),
            index._pair_right.view()[alive].tolist(),
        )
    )
    per_node = {
        name: getattr(index, f"_{name}").view()
        for name in (
            "blocks_per_entity",
            "entity_cardinality",
            "entity_inv_cardinality",
            "entity_inv_size",
        )
    }
    return {
        "sides": sides.tolist(),
        "rows": rows,
        "blocks": blocks,
        "pairs": pairs,
        "per_node": per_node,
    }


def _assert_replicas_identical(adopted, from_zero):
    """The two replicas' live projections are identical.

    Topology, ids, and counts are compared exactly; float aggregates with
    ``atol=1e-12`` because the adopted rebuild can reorder summations by
    one ULP.
    """
    left, right = _canonical_state(adopted), _canonical_state(from_zero)
    assert left["sides"] == right["sides"], "node numbering and liveness"
    for node, (ours, theirs) in enumerate(zip(left["rows"], right["rows"])):
        if ours is not None:
            assert ours == theirs, f"node {node} block memberships"
    assert left["pairs"] == right["pairs"]
    assert set(left["blocks"]) == set(right["blocks"]), "spawning block keys"
    for key, ours in left["blocks"].items():
        theirs = right["blocks"][key]
        for field in ("cardinality", "size", "members_first", "members_second"):
            assert ours[field] == theirs[field], f"block {key!r} {field}"
        for field in ("inv_cardinality", "inv_size"):
            assert ours[field] == pytest.approx(
                theirs[field], rel=0, abs=1e-12
            ), f"block {key!r} {field}"
    for name, ours in left["per_node"].items():
        np.testing.assert_allclose(
            ours, right["per_node"][name], rtol=0, atol=1e-12,
            err_msg=f"array {name!r}",
        )
    left_meta = adopted.read_state()["meta"]
    right_meta = from_zero.read_state()["meta"]
    for key in ("shard", "offset", "bilateral", "num_nonempty_blocks",
                "total_cardinality", "side_counts"):
        assert left_meta[key] == right_meta[key], f"meta {key!r}"


class TestAdoptionUnit:
    def _session(self, tmp, count=6):
        session = MatchingSession(MODEL, bilateral=True, wal_path=tmp)
        for i in range(count):
            text = " ".join(_TOKENS[(i + j) % len(_TOKENS)] for j in range(3))
            session.insert(make_profile(f"a{i}", text=text), side=0)
            session.insert(make_profile(f"b{i}", text=text), side=1)
        return session

    def test_adopted_replica_replays_only_the_tail(self, tmp_path):
        session = self._session(tmp_path)
        snapshot_path = session.checkpoint()
        snapshot_offset = int(
            session.wal.load_snapshot(snapshot_path)["log_offset"]
        )
        session.insert(make_profile("a9", text="delta beta"), side=0)
        session.insert(make_profile("b9", text="alpha delta"), side=1)
        offset = session.wal.log_offset
        tail_records = [
            r for r in session.wal.scan().records if r.start >= snapshot_offset
        ]
        try:
            adopted = ShardReplica(tmp_path, 0, 1)
            adopted.catch_up(offset)
            assert adopted.adopted_sequence == WriteAheadLog._snapshot_sequence(
                snapshot_path
            )
            # O(tail): only the post-snapshot records were ever parsed
            assert adopted.follower.records_delivered == len(tail_records)
            assert adopted.follower.bytes_skipped == snapshot_offset - len(
                LOG_MAGIC
            )

            from_zero = ShardReplica(tmp_path, 0, 1, adopt_floor=NEVER_ADOPT)
            from_zero.catch_up(offset)
            assert from_zero.adopted_sequence is None
            assert from_zero.follower.bytes_skipped == 0
            assert from_zero.follower.records_delivered > len(tail_records)
            _assert_replicas_identical(adopted, from_zero)
            adopted.close()
            from_zero.close()
        finally:
            session.close()

    def test_adoption_answers_match_canonical(self, tmp_path):
        session = self._session(tmp_path)
        session.checkpoint()
        session.remove("a2", side=0)
        session.update(make_profile("b1", text="zeta eps"), side=1)
        offset = session.wal.log_offset
        try:
            replicas = [ShardReplica(tmp_path, k, 2) for k in range(2)]
            for replica in replicas:
                replica.catch_up(offset)
            assert all(r.adopted_sequence is not None for r in replicas)
            view = build_pinned_view(
                [r.read_state() for r in replicas], session.index.entity_id
            )
            answer = match_answer(view, MODEL, session.pruning)
            assert answer["retained"] == reference_retained(session)
            for replica in replicas:
                replica.close()
        finally:
            session.close()

    def test_warm_replica_readopts_past_a_large_gap(self, tmp_path):
        session = self._session(tmp_path, count=2)
        early = session.wal.log_offset
        try:
            replica = ShardReplica(tmp_path, 0, 1, adopt_min_gap=64)
            replica.catch_up(early)
            replayed_cold = replica.follower.records_delivered
            for i in range(6):
                session.insert(make_profile(f"c{i}", text="alpha beta"), side=0)
            snapshot_path = session.checkpoint()
            session.insert(make_profile("c9", text="beta gamma"), side=0)
            offset = session.wal.log_offset
            replica.catch_up(offset)
            # the catch-up jumped to the mid-run checkpoint instead of
            # replaying the whole intervening history
            assert replica.adopted_sequence == WriteAheadLog._snapshot_sequence(
                snapshot_path
            )
            assert replica.follower.records_delivered - replayed_cold < 6
            from_zero = ShardReplica(tmp_path, 0, 1, adopt_floor=NEVER_ADOPT)
            from_zero.catch_up(offset)
            _assert_replicas_identical(replica, from_zero)
            replica.close()
            from_zero.close()
        finally:
            session.close()

    def test_floor_without_snapshot_refuses_from_zero(self, tmp_path):
        session = self._session(tmp_path, count=1)
        offset = session.wal.log_offset
        try:
            replica = ShardReplica(
                tmp_path, 0, 1, adopt_floor=NEVER_ADOPT, allow_from_zero=False
            )
            with pytest.raises(WalFollowError, match="no adoptable snapshot"):
                replica.catch_up(offset)
            replica.close()
        finally:
            session.close()


def _operations():
    sides = st.sampled_from((0, 1))
    return st.lists(
        st.one_of(
            st.tuples(st.just("add"), sides, _text),
            st.tuples(st.just("remove"), sides, st.integers(0, 32)),
            st.tuples(st.just("update"), sides, st.integers(0, 32), _text),
            st.tuples(st.just("checkpoint"), sides),
        ),
        min_size=2,
        max_size=14,
    )


@settings(max_examples=20, deadline=None)
@given(operations=_operations(), num_shards=st.sampled_from((1, 2, 3)))
def test_adopted_equals_from_zero_for_any_stream(operations, num_shards):
    """For any op stream with checkpoints interleaved, an adopting replica
    at the final offset matches a from-zero replica — across every shard
    of every sampled shard count."""
    tmp = Path(tempfile.mkdtemp())
    session = MatchingSession(MODEL, bilateral=True, wal_path=tmp)
    try:
        live = ([], [])
        serial = 0
        checkpoints = 1  # session init writes snapshot 1
        for operation in operations:
            kind, side = operation[0], operation[1]
            if kind == "add":
                serial += 1
                entity_id = f"{'ab'[side]}{serial}"
                session.insert(make_profile(entity_id, text=operation[2]), side=side)
                live[side].append(entity_id)
            elif kind == "remove":
                if not live[side]:
                    continue
                entity_id = live[side][operation[2] % len(live[side])]
                session.remove(entity_id, side=side)
                live[side].remove(entity_id)
            elif kind == "update":
                if not live[side]:
                    continue
                entity_id = live[side][operation[2] % len(live[side])]
                session.update(make_profile(entity_id, text=operation[3]), side=side)
            else:
                session.checkpoint()
                checkpoints += 1
        offset = session.wal.log_offset
        scan = session.wal.scan()
        total_records = len(scan.records)
        wal = WriteAheadLog(tmp)
        for shard in range(num_shards):
            adopted = ShardReplica(tmp, shard, num_shards)
            adopted.catch_up(offset)
            from_zero = ShardReplica(
                tmp, shard, num_shards, adopt_floor=NEVER_ADOPT
            )
            from_zero.catch_up(offset)
            assert adopted.adopted_sequence is not None
            assert from_zero.follower.records_delivered == total_records
            # O(tail) accounting: the snapshot's bytes were skipped, and
            # exactly the records past its embedded offset were parsed
            snap_state = wal.load_snapshot(
                tmp / f"snapshot-{adopted.adopted_sequence:06d}.snap"
            )
            snap_offset = int(snap_state["log_offset"])
            assert adopted.follower.bytes_skipped == snap_offset - len(LOG_MAGIC)
            assert adopted.follower.records_delivered == sum(
                1 for record in scan.records if record.start >= snap_offset
            )
            _assert_replicas_identical(adopted, from_zero)
            adopted.close()
            from_zero.close()
    finally:
        session.close()
        shutil.rmtree(tmp, ignore_errors=True)
