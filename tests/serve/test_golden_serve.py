"""Golden request/response replay for the serving protocol.

A fixed scripted client session — inserts, a bulk load, a removal, an
in-place update, matches, a top-k lookup, a checkpoint, a metrics
scrape, an error case — runs against an in-process daemon with the
deterministic fixed-weight model, and every raw request/response
envelope (after stripping the few fields that are
environment-dependent: latencies, absolute paths, the package version,
the Prometheus sample values) is frozen into
``tests/data/golden_serve.json``.

The script supplies a deterministic ``trace`` id with every request, so
the golden also freezes the trace-echo contract of the v2 envelope: the
response must carry back exactly the id the client sent.

The WAL journals canonical JSON, so even the *offsets* in the responses
are content-deterministic: a change to record encoding, response shape,
retention semantics or error taxonomy fails here.

To regenerate after an *intentional* protocol or semantics change::

    PYTHONPATH=src python tests/serve/test_golden_serve.py --regenerate
"""

import copy
import json
import socket
import sys
import tempfile
import threading
from pathlib import Path

import pytest

from conftest import make_frozen_model
from repro.serve import MatchingDaemon
from repro.serve.protocol import read_message_from, write_message_to

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_serve.json"

SCRIPT = (
    ("ping", {}),
    ("insert", {"profile": {"entity_id": "a0", "attributes": {"text": "alpha beta gamma"}}, "side": 0}),
    ("insert_bulk", {"profiles": [
        {"entity_id": "a1", "attributes": {"text": "beta gamma delta"}},
        {"entity_id": "a2", "attributes": {"text": "alpha delta eps"}},
    ], "side": 0}),
    ("insert", {"profile": {"entity_id": "b0", "attributes": {"text": "gamma eps zeta"}}, "side": 1}),
    ("insert", {"profile": {"entity_id": "b1", "attributes": {"text": "alpha beta zeta"}}, "side": 1}),
    ("insert", {"profile": {"entity_id": "b2", "attributes": {"text": "beta gamma eps"}}, "side": 1}),
    ("match", {}),
    ("top_k", {"entity_id": "a0", "side": 0, "k": 2}),
    ("remove", {"entity_id": "a1", "side": 0}),
    ("update", {"profile": {"entity_id": "b0", "attributes": {"text": "alpha gamma"}}, "side": 1}),
    ("match", {}),
    ("remove", {"entity_id": "ghost", "side": 0}),
    ("checkpoint", {}),
    ("metrics", {}),
    ("stats", {}),
)


def _normalize(op, envelope):
    """Strip environment-dependent fields from a response envelope."""
    envelope = copy.deepcopy(envelope)
    result = envelope.get("result")
    if not isinstance(result, dict):
        return envelope
    if op == "ping":
        result.pop("version", None)
    if op == "checkpoint" and "snapshot" in result:
        result["snapshot"] = Path(result["snapshot"]).name
    if op == "metrics":
        # sample values are timing/process-dependent; the *family set*
        # of the exposition is part of the protocol surface
        result["text"] = sorted(
            line.split()[2]
            for line in result["text"].splitlines()
            if line.startswith("# TYPE ")
        )
    if op == "stats":
        result.pop("metrics", None)  # latencies are timing-dependent
        daemon = result.get("daemon", {})
        daemon.pop("version", None)
        # the event-log path (when inherited from the environment) is a
        # host-dependent absolute path
        daemon.get("observability", {}).pop("event_log", None)
    return envelope


def _transcript():
    with tempfile.TemporaryDirectory() as tmp:
        daemon = MatchingDaemon(
            Path(tmp) / "wal", make_frozen_model(), num_shards=2, bilateral=True
        )
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        assert daemon.ready.wait(60)
        transcript = []
        try:
            with socket.create_connection(daemon.address, timeout=60) as sock:
                stream = sock.makefile("rwb")
                for index, (op, args) in enumerate(SCRIPT, start=1):
                    request = {
                        "id": index,
                        "op": op,
                        "args": args,
                        # deterministic client-supplied trace ids: the
                        # response must echo them back verbatim
                        "trace": f"{index:016x}",
                    }
                    write_message_to(stream, request)
                    envelope = read_message_from(stream)
                    transcript.append(
                        {"request": request, "response": _normalize(op, envelope)}
                    )
        finally:
            daemon.request_shutdown()
            thread.join(60)
        return transcript


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.skip("golden fixture missing; regenerate with --regenerate")
    return json.loads(GOLDEN_PATH.read_text())


def test_scripted_session_matches_golden(golden):
    assert _transcript() == golden["transcript"]


def _regenerate():
    GOLDEN_PATH.write_text(
        json.dumps({"transcript": _transcript()}, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
