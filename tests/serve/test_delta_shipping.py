"""Delta-shipped reads: protocol units, the leak regression and the router.

Covers the three layers of the delta read path separately from the
consistency property suite:

* :class:`ExportSlots` frees superseded shared-memory segments eagerly and
  reports their names, and the parent's attach cache never accumulates
  mappings across repeated reads (the ExportSlots leak regression);
* :meth:`MutableBlockIndex.export_delta` is all-or-nothing: stale or
  consumed epochs, compaction and untracked indexes all refuse to ship a
  delta (forcing a full ship) instead of shipping a wrong one;
* :class:`ShardRouter` keeps resident per-shard views, ships deltas on warm
  reads, full states on first contact and after a respawn, and records the
  byte/read counters the stats panel renders.
"""

from multiprocessing import shared_memory

import numpy as np
import pytest

from conftest import make_frozen_model, reference_retained
from repro.datamodel import make_profile
from repro.incremental import MatchingSession
from repro.incremental.index import MutableBlockIndex
from repro.incremental.sharded import ShardedMutableBlockIndex
from repro.parallel import shm
from repro.serve.metrics import ServerMetrics, render_stats
from repro.serve.router import ShardRouter, match_answer
from repro.serve.workers import ExportSlots, ShardWorkerHandle

MODEL = make_frozen_model()


class TestExportSlots:
    def test_grown_slot_retires_and_unlinks_the_old_segment(self):
        slots = ExportSlots()
        try:
            first = slots.export("x", np.arange(4, dtype=np.int64))
            # fits in the slack capacity: same segment, nothing retired
            same = slots.export("x", np.arange(8, dtype=np.int64))
            assert same.name == first.name
            assert slots.drain_retired() == []
            grown = slots.export("x", np.arange(64, dtype=np.int64))
            assert grown.name != first.name
            assert slots.drain_retired() == [first.name]
            assert slots.drain_retired() == []
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=first.name)
        finally:
            slots.close()

    def test_dtype_change_also_retires(self):
        slots = ExportSlots()
        try:
            first = slots.export("x", np.arange(4, dtype=np.int64))
            slots.export("x", np.arange(4, dtype=np.float64))
            assert slots.drain_retired() == [first.name]
        finally:
            slots.close()


class TestAttachCacheLeak:
    def test_parent_attach_cache_is_empty_after_reads(self, tmp_path):
        """Repeated reads — including ones that grow the export slots — must
        leave no cached attachments behind in the parent process."""
        session = MatchingSession(MODEL, bilateral=True, wal_path=tmp_path)
        handle = None
        before = set(shm._ATTACHED)
        try:
            session.insert(make_profile("a0", text="alpha beta"), side=0)
            session.insert(make_profile("b0", text="alpha beta"), side=1)
            handle = ShardWorkerHandle(tmp_path, 0, 1)
            handle.read_state(session.wal.log_offset)
            # grow every array far past the first export's capacity so the
            # worker retires segments mid-stream
            for serial in range(1, 40):
                session.insert(
                    make_profile(f"a{serial}", text=f"alpha tok{serial}"), side=0
                )
            handle.read_state(session.wal.log_offset)
            handle.read_state(session.wal.log_offset)
            assert set(shm._ATTACHED) == before
        finally:
            if handle is not None:
                handle.stop()
            session.close()


class TestExportDeltaContract:
    def _index(self):
        index = MutableBlockIndex(bilateral=True, name="unit")
        index._apply_insert("a0", 0, ["alpha", "beta"])
        index._apply_insert("b0", 1, ["alpha"])
        return index

    def test_untracked_index_refuses_to_ship(self):
        index = self._index()
        assert index.export_delta(index.epoch) is None

    def test_stale_epoch_refuses_to_ship(self):
        index = self._index()
        epoch = index.enable_delta_tracking()
        assert index.export_delta(epoch - 1) is None
        assert index.export_delta(epoch + 1) is None

    def test_consumed_epoch_refuses_to_ship(self):
        index = self._index()
        epoch = index.enable_delta_tracking()
        index._apply_insert("a1", 0, ["beta"])
        delta = index.export_delta(epoch)
        assert delta is not None and delta["meta"]["kind"] == "delta"
        # the export rebased the tracker: the old epoch is consumed, only
        # the new one ships
        assert index.export_delta(epoch) is None
        assert index.export_delta(delta["meta"]["epoch"]) is not None

    def test_compaction_clears_the_tracker(self):
        index = self._index()
        index.enable_delta_tracking()
        index._apply_insert("a1", 0, ["beta"])
        index.remove_entity("a0", side=0)
        index.compact()
        # compaction renumbered nodes: any delta against the old base would
        # be wrong, so the tracker is gone and a full ship is forced
        assert index.export_delta(index.epoch) is None

    def test_sharded_export_is_all_or_nothing(self):
        index = ShardedMutableBlockIndex(bilateral=True, num_shards=2, name="unit")
        index.add_entity(make_profile("a0", text="alpha beta"), side=0)
        index.add_entity(make_profile("b0", text="alpha"), side=1)
        with pytest.raises(ValueError, match="epoch"):
            index.export_deltas([0])
        assert index.export_deltas(index.epochs()) is None  # not tracking yet
        epochs = index.enable_delta_tracking()
        index.add_entity(make_profile("a1", text="beta"), side=0)
        stale = [epochs[0] - 1] + epochs[1:]
        # one stale shard poisons the whole export — and must not rebase
        # the healthy shards' trackers as a side effect
        assert index.export_deltas(stale) is None
        deltas = index.export_deltas(epochs)
        assert deltas is not None and len(deltas) == 2


class TestRouterResidentViews:
    def _counters(self, metrics):
        return metrics.snapshot()["counters"]

    def test_warm_reads_ship_deltas_and_respawn_reships_full(self, tmp_path):
        session = MatchingSession(MODEL, bilateral=True, wal_path=tmp_path)
        metrics = ServerMetrics()
        router = ShardRouter(
            tmp_path, 2, session.index.entity_id, metrics=metrics
        )
        try:
            for serial, text in enumerate(
                ("alpha beta", "beta gamma", "alpha gamma")
            ):
                session.insert(make_profile(f"a{serial}", text=text), side=0)
                session.insert(make_profile(f"b{serial}", text=text), side=1)
            router.start()

            view, _ = router.pinned_view(session.wal.log_offset)
            counters = self._counters(metrics)
            assert counters["full_reads"] == 2
            assert counters.get("delta_reads", 0) == 0
            reference = reference_retained(session)
            assert match_answer(view, MODEL, session.pruning)["retained"] == reference

            session.insert(make_profile("a9", text="beta gamma"), side=0)
            view, _ = router.pinned_view(session.wal.log_offset)
            counters = self._counters(metrics)
            assert counters["full_reads"] == 2
            assert counters["delta_reads"] == 2
            assert counters["read_bytes_delta"] < counters["read_bytes_full"]
            assert counters["read_bytes_shipped"] == (
                counters["read_bytes_full"] + counters["read_bytes_delta"]
            )
            reference = reference_retained(session)
            assert match_answer(view, MODEL, session.pruning)["retained"] == reference

            # a respawned worker holds no shipped base: its shard must ship
            # full again while the untouched shard keeps shipping deltas
            assert router.respawn(0) is not None
            view, _ = router.pinned_view(session.wal.log_offset)
            counters = self._counters(metrics)
            assert counters["full_reads"] == 3
            assert counters["delta_reads"] == 3
            assert match_answer(view, MODEL, session.pruning)["retained"] == reference
        finally:
            router.stop()
            session.close()

    def test_delta_shipping_off_ships_full_every_read(self, tmp_path):
        session = MatchingSession(MODEL, bilateral=True, wal_path=tmp_path)
        metrics = ServerMetrics()
        router = ShardRouter(
            tmp_path,
            2,
            session.index.entity_id,
            metrics=metrics,
            delta_shipping=False,
        )
        try:
            session.insert(make_profile("a0", text="alpha beta"), side=0)
            session.insert(make_profile("b0", text="alpha beta"), side=1)
            router.start()
            router.pinned_view(session.wal.log_offset)
            router.pinned_view(session.wal.log_offset)
            counters = self._counters(metrics)
            assert counters["full_reads"] == 4
            assert counters.get("delta_reads", 0) == 0
        finally:
            router.stop()
            session.close()

    def test_render_stats_shows_the_shipping_panel(self):
        metrics = ServerMetrics()
        metrics.increment("full_reads", 2)
        metrics.increment("delta_reads", 6)
        metrics.increment("read_bytes_shipped", 1000)
        metrics.increment("read_bytes_full", 900)
        metrics.increment("read_bytes_delta", 100)
        rendered = render_stats({"metrics": metrics.snapshot()})
        assert "read shipping: 6 delta / 2 full (75.0% delta hit rate)" in rendered
        assert "1000 bytes shipped (100 delta, 900 full)" in rendered
