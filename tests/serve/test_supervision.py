"""Worker supervision, degraded reads, deadlines and backpressure.

The daemon runs in-process with fast supervision timings; workers are
real processes killed with SIGKILL (or wedged via injected heartbeat
drops), and every availability claim is checked end-to-end through a
real client:

* while a shard worker is down, ``match`` degrades to the authority
  (``degraded: true``) and still answers the canonical retained set —
  or fails fast with ``unavailable`` when ``degraded_reads`` is off;
* the supervisor respawns the worker, and the replacement adopts the
  newest checkpoint: its ``records_replayed`` accounting proves it
  parsed only the post-snapshot WAL tail;
* a full mutation queue sheds with a typed ``overloaded`` error the
  client may retry; an expired deadline surfaces as ``deadline`` and the
  mutation was unambiguously NOT applied.
"""

import os
import signal
import threading
import time

import pytest

from conftest import reference_retained
from repro import faults
from repro.datamodel import make_profile
from repro.faults import FAULTS_ENV, FaultPlan
from repro.serve import MatchingDaemon, ServeClient, ServeError

TEXTS = (
    "alpha beta gamma",
    "beta gamma delta",
    "alpha delta eps",
    "gamma eps zeta",
    "beta eps zeta",
    "alpha beta zeta",
)


def _start(daemon):
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(60), "daemon did not come up"
    return thread


def _stop(daemon, thread):
    daemon.request_shutdown()
    thread.join(60)
    assert not thread.is_alive(), "daemon did not shut down"


def _daemon(tmp_path, model, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("bilateral", True)
    kwargs.setdefault("heartbeat_interval", 0.2)
    kwargs.setdefault("hang_timeout", 1.0)
    daemon = MatchingDaemon(tmp_path / "wal", model, **kwargs)
    return daemon, _start(daemon)


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _seed(client, count=len(TEXTS)):
    for i in range(count):
        side = i % 2
        client.insert(
            make_profile(f"{'ab'[side]}{i}", text=TEXTS[i % len(TEXTS)]),
            side=side,
        )


def _kill_worker(daemon, shard):
    os.kill(daemon.router.handle(shard).pid, signal.SIGKILL)


class TestDegradedReads:
    def test_degraded_read_serves_canonical_answer(self, tmp_path, frozen_model):
        daemon, thread = _daemon(tmp_path, frozen_model)
        try:
            # park the supervisor so the worker stays down deterministically
            daemon._supervisor.stop()
            with ServeClient(*daemon.address) as client:
                _seed(client)
                _kill_worker(daemon, 0)
                answer = client.match()
                assert answer["degraded"] is True
                assert answer["retained"] == reference_retained(daemon.session)

                # supervision resumes -> the shard heals -> reads un-degrade
                daemon._supervisor.start()
                assert _wait_until(
                    lambda: client.match().get("degraded") is None
                ), "reads never recovered after the supervisor resumed"
                assert daemon._supervisor.restarts >= 1
                assert client.match()["retained"] == reference_retained(
                    daemon.session
                )
        finally:
            _stop(daemon, thread)

    def test_unavailable_when_degraded_reads_are_off(self, tmp_path, frozen_model):
        daemon, thread = _daemon(tmp_path, frozen_model, degraded_reads=False)
        try:
            daemon._supervisor.stop()
            with ServeClient(*daemon.address, retries=0) as client:
                _seed(client, count=2)
                _kill_worker(daemon, 1)
                with pytest.raises(ServeError) as excinfo:
                    client.match()
                assert excinfo.value.error_type == "unavailable"
                # stats stays answerable (per-shard tolerance): the dead
                # shard reports an error entry instead of failing the call
                shards = client.stats()["shards"]
                assert "error" in shards[1]
                assert "error" not in shards[0]
                # mutations are unaffected by a dead reader fleet
                client.insert(make_profile("c0", text=TEXTS[0]), side=0)
            daemon._supervisor.start()
        finally:
            _stop(daemon, thread)


class TestSupervisorRespawns:
    def test_sigkilled_worker_is_respawned(self, tmp_path, frozen_model):
        daemon, thread = _daemon(tmp_path, frozen_model)
        try:
            with ServeClient(*daemon.address) as client:
                _seed(client)
                before = client.match()
                _kill_worker(daemon, 0)
                assert _wait_until(lambda: daemon._supervisor.restarts >= 1)
                assert _wait_until(
                    lambda: client.match().get("degraded") is None
                ), "the respawned worker never served a clean read"
                after = client.match()
                assert after["retained"] == before["retained"]
                stats = client.stats()
                assert stats["daemon"]["supervision"]["worker_restarts"] >= 1
        finally:
            _stop(daemon, thread)

    def test_dropped_heartbeats_trigger_respawn(
        self, tmp_path, frozen_model, monkeypatch
    ):
        # shard 0's worker swallows its first 3 pings; one missed heartbeat
        # is fatal, so the supervisor replaces it (spawn_grace 0 puts the
        # fresh worker under heartbeat checks immediately)
        plan = FaultPlan(drop_heartbeats={0: 3})
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        faults.clear()  # re-arm the parent's cached plan from the env
        daemon, thread = _daemon(tmp_path, frozen_model, spawn_grace=0.0)
        try:
            assert _wait_until(lambda: daemon._supervisor.restarts >= 1), (
                "a worker swallowing pings was never replaced"
            )
            monkeypatch.delenv(FAULTS_ENV)
            faults.clear()
            with ServeClient(*daemon.address) as client:
                _seed(client, count=2)
                assert _wait_until(
                    lambda: client.match().get("degraded") is None
                )
        finally:
            faults.clear()
            _stop(daemon, thread)

    def test_respawned_worker_adopts_checkpoint_and_replays_only_tail(
        self, tmp_path, frozen_model
    ):
        # generous hang_timeout: detection here is dead-pid (immediate),
        # and a loaded machine must not false-positive the healthy shard
        daemon, thread = _daemon(tmp_path, frozen_model, hang_timeout=5.0)
        try:
            with ServeClient(*daemon.address) as client:
                _seed(client)
                client.checkpoint()  # snapshot 2 (init wrote snapshot 1)
                tail_mutations = 3
                for i in range(tail_mutations):
                    client.insert(
                        make_profile(f"t{i}", text=TEXTS[i]), side=i % 2
                    )
                client.match()  # both workers are caught up past the tail
                _kill_worker(daemon, 0)
                assert _wait_until(lambda: daemon._supervisor.restarts >= 1)
                assert _wait_until(
                    lambda: client.match().get("degraded") is None
                )
                fresh = client.stats()["shards"][0]
                assert fresh["adopted_snapshot"] >= 2
                assert fresh["bytes_skipped"] > 0
                # O(tail) bootstrap: the replacement parsed only the few
                # records past the adopted checkpoint, never the seeded
                # history before it
                assert fresh["records_replayed"] <= tail_mutations + 2
        finally:
            _stop(daemon, thread)


class TestDeadlinesAndBackpressure:
    def _occupy_mutator(self, daemon, monkeypatch, hold=1.2):
        """First insert holds the mutation thread for ``hold`` seconds."""
        original = daemon.session.insert
        held = []

        def slow_insert(profile, side=0):
            if not held:
                held.append(True)
                time.sleep(hold)
            return original(profile, side=side)

        monkeypatch.setattr(daemon.session, "insert", slow_insert)

        def occupier():
            with ServeClient(*daemon.address) as client:
                client.insert(make_profile("slow", text=TEXTS[0]), side=0)

        thread = threading.Thread(target=occupier)
        thread.start()
        time.sleep(0.2)  # the slow insert is now holding the mutation thread
        return thread

    def test_full_mutation_queue_sheds_with_typed_error(
        self, tmp_path, frozen_model, monkeypatch
    ):
        daemon, thread = _daemon(
            tmp_path, frozen_model, max_pending_mutations=1
        )
        try:
            occupier = self._occupy_mutator(daemon, monkeypatch)
            with ServeClient(*daemon.address, retries=0) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.insert(make_profile("shed", text=TEXTS[1]), side=0)
                assert excinfo.value.error_type == "overloaded"
            # a retrying client rides out the overload with backoff
            with ServeClient(
                *daemon.address, retries=6, backoff=0.3
            ) as client:
                result = client.insert(
                    make_profile("retried", text=TEXTS[2]), side=0
                )
                assert result["entity_id"] == "retried"
            occupier.join(30)
            assert not occupier.is_alive()
            with ServeClient(*daemon.address) as client:
                assert client.stats()["metrics"]["counters"].get(
                    "shed_mutations", 0
                ) >= 1
        finally:
            _stop(daemon, thread)

    def test_expired_deadline_means_not_applied(
        self, tmp_path, frozen_model, monkeypatch
    ):
        daemon, thread = _daemon(tmp_path, frozen_model)
        try:
            occupier = self._occupy_mutator(daemon, monkeypatch)
            with ServeClient(
                *daemon.address, retries=0, deadline_ms=200
            ) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.insert(make_profile("d0", text=TEXTS[1]), side=0)
                assert excinfo.value.error_type == "deadline"
            occupier.join(30)
            # the deadline fired before the apply: the same id now inserts
            # cleanly, proving the timed-out mutation left no trace
            with ServeClient(*daemon.address) as client:
                result = client.insert(make_profile("d0", text=TEXTS[1]), side=0)
                assert result["entity_id"] == "d0"
                assert client.stats()["metrics"]["counters"].get(
                    "deadline_exceeded", 0
                ) >= 1
        finally:
            _stop(daemon, thread)

    def test_non_positive_deadline_is_rejected(self, tmp_path, frozen_model):
        daemon, thread = _daemon(tmp_path, frozen_model)
        try:
            with ServeClient(
                *daemon.address, retries=0, deadline_ms=-5
            ) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.ping()
                assert excinfo.value.error_type == "bad_request"
        finally:
            _stop(daemon, thread)
