"""Integration tests for the matching daemon.

The daemon runs in-process (one asyncio loop on a background thread, real
shard worker processes, real sockets), and every consistency claim is
checked against the strongest available reference: the canonical offline
session recovered from a *truncated copy* of the daemon's own WAL — the
state at exactly the pinned offset a response reported.

The SIGTERM test runs the real ``python -m repro serve`` subprocess and
kills it mid-ingest: the daemon must drain, checkpoint and exit 0, and
recovery must retain every acknowledged write.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from conftest import reference_retained
from repro.datamodel import make_profile
from repro.incremental import MatchingSession
from repro.persistence.recovery import recover_session
from repro.serve import MatchingDaemon, ProtocolError, ServeClient, ServeError

TEXTS = (
    "alpha beta gamma",
    "beta gamma delta",
    "alpha delta eps",
    "gamma eps zeta",
    "beta eps zeta",
    "alpha beta zeta",
    "delta eps",
    "alpha gamma zeta",
)


def _start(daemon):
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(60), "daemon did not come up"
    return thread


def _stop(daemon, thread):
    daemon.request_shutdown()
    thread.join(60)
    assert not thread.is_alive(), "daemon did not shut down"


@pytest.fixture()
def daemon(tmp_path, frozen_model):
    daemon = MatchingDaemon(
        tmp_path / "wal", frozen_model, num_shards=2, bilateral=True
    )
    thread = _start(daemon)
    yield daemon
    if thread.is_alive():
        _stop(daemon, thread)


def _canonical_at(wal_dir: Path, offset: int, scratch: Path):
    """The canonical session state at exactly ``offset``: recover from a
    truncated copy of the log plus the bootstrap snapshot (written before
    any ingest, so its embedded offset is behind every pin)."""
    ref_dir = scratch / f"ref-{offset}"
    ref_dir.mkdir()
    (ref_dir / "wal.log").write_bytes(
        (wal_dir / "wal.log").read_bytes()[:offset]
    )
    shutil.copy(wal_dir / "snapshot-000001.snap", ref_dir)
    session = recover_session(ref_dir)
    try:
        return reference_retained(session)
    finally:
        session.close()


class TestBasicOperations:
    def test_ping_reports_protocol(self, daemon):
        with ServeClient(*daemon.address) as client:
            info = client.ping()
        assert info["protocol"] == 2
        assert info["shards"] == 2

    def test_mutations_and_reads(self, daemon):
        with ServeClient(*daemon.address) as client:
            first = client.insert(make_profile("a0", text=TEXTS[0]), side=0)
            assert first["num_new_pairs"] == 0
            bulk = client.insert_bulk(
                [make_profile(f"a{i}", text=TEXTS[i]) for i in (1, 2)], side=0
            )
            assert bulk["entity_ids"] == ["a1", "a2"]
            for i in (0, 1, 2):
                client.insert(make_profile(f"b{i}", text=TEXTS[i + 3]), side=1)
            removed = client.remove("a1", side=0)
            assert removed["num_retracted_pairs"] >= 0
            updated = client.update(make_profile("b0", text=TEXTS[6]), side=1)
            assert updated["entity_id"] == "b0"

            answer = client.match()
            assert answer["offset"] == updated["offset"]
            top = client.top_k("a0", side=0, k=3)
            assert all(m["side"] == 1 for m in top["matches"])
            assert [m["probability"] for m in top["matches"]] == sorted(
                (m["probability"] for m in top["matches"]), reverse=True
            )

    def test_read_your_writes_offsets_are_monotone(self, daemon):
        with ServeClient(*daemon.address) as client:
            offsets = []
            for i, text in enumerate(TEXTS[:4]):
                offsets.append(
                    client.insert(make_profile(f"a{i}", text=text), side=0)["offset"]
                )
                offsets.append(client.match()["offset"])
            assert offsets == sorted(offsets)
            # a match directly after an insert sees that insert
            assert offsets[-1] == offsets[-2]

    def test_stats_endpoint(self, daemon):
        with ServeClient(*daemon.address) as client:
            client.insert(make_profile("a0", text=TEXTS[0]), side=0)
            client.insert(make_profile("b0", text=TEXTS[0]), side=1)
            client.match()
            stats = client.stats()
        assert stats["daemon"]["entities"] == 2
        assert stats["daemon"]["num_shards"] == 2
        assert len(stats["shards"]) == 2
        assert all(s["offset"] == stats["daemon"]["wal_offset"] for s in stats["shards"])
        operations = stats["metrics"]["operations"]
        assert operations["insert"]["count"] == 2
        assert operations["match"]["count"] == 1
        assert stats["metrics"]["connections"]["open"] == 1

    def test_checkpoint_writes_snapshot(self, daemon):
        with ServeClient(*daemon.address) as client:
            client.insert(make_profile("a0", text=TEXTS[0]), side=0)
            result = client.checkpoint()
        assert Path(result["snapshot"]).exists()


class TestErrorPaths:
    def test_unknown_entity(self, daemon):
        with ServeClient(*daemon.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.remove("ghost")
            assert excinfo.value.error_type == "unknown_entity"

    def test_duplicate_entity(self, daemon):
        with ServeClient(*daemon.address) as client:
            client.insert(make_profile("a0", text=TEXTS[0]), side=0)
            with pytest.raises(ServeError) as excinfo:
                client.insert(make_profile("a0", text=TEXTS[1]), side=0)
            assert excinfo.value.error_type == "duplicate_entity"

    def test_unknown_operation(self, daemon):
        with ServeClient(*daemon.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.call("frobnicate")
            assert excinfo.value.error_type == "protocol"

    def test_malformed_args(self, daemon):
        with ServeClient(*daemon.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.call("insert")  # no profile
            assert excinfo.value.error_type == "bad_request"
            # the connection survives a failed request
            assert client.ping()["protocol"] == 2

    def test_top_k_unknown_entity(self, daemon):
        with ServeClient(*daemon.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.top_k("ghost", side=0)
            assert excinfo.value.error_type == "unknown_entity"


class TestSnapshotConsistency:
    def test_concurrent_reads_pin_exact_offsets(self, daemon, tmp_path):
        """Queries racing a writer must each equal the canonical state at
        their own pinned offset — verified post-hoc against sessions
        recovered from truncated copies of the daemon's WAL."""
        responses = []
        errors = []

        def reader():
            try:
                with ServeClient(*daemon.address) as client:
                    for _ in range(12):
                        answer = client.match()
                        responses.append((answer["offset"], answer["retained"]))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        with ServeClient(*daemon.address) as writer:
            # an early snapshot lets the check below recover the canonical
            # state at any later offset from a truncated copy of the log
            writer.checkpoint()
            thread = threading.Thread(target=reader)
            thread.start()
            for round_index in range(3):
                for i, text in enumerate(TEXTS):
                    serial = round_index * len(TEXTS) + i
                    writer.insert(
                        make_profile(f"a{serial}", text=text), side=0
                    )
                    writer.insert(
                        make_profile(f"b{serial}", text=TEXTS[::-1][i]), side=1
                    )
                if round_index == 1:
                    writer.remove("a3", side=0)
                    writer.update(make_profile("b2", text=TEXTS[5]), side=1)
            thread.join(120)
        assert not errors
        assert not thread.is_alive()
        offsets = [offset for offset, _ in responses]
        assert offsets == sorted(offsets), "pinned offsets must be monotone"

        # stop the daemon so the WAL is final, then check every response
        daemon.request_shutdown()
        while daemon._loop is not None and daemon._loop.is_running():
            time.sleep(0.05)
        wal_dir = Path(daemon.wal_path)
        for offset, retained in {o: r for o, r in responses}.items():
            assert retained == _canonical_at(wal_dir, offset, tmp_path), (
                f"response pinned at offset {offset} is not the canonical "
                "state at that offset"
            )

    def test_restart_serves_identical_state(self, tmp_path, frozen_model):
        wal = tmp_path / "wal"
        daemon = MatchingDaemon(wal, frozen_model, num_shards=2, bilateral=True)
        thread = _start(daemon)
        with ServeClient(*daemon.address) as client:
            for i, text in enumerate(TEXTS):
                client.insert(make_profile(f"a{i}", text=text), side=0)
                client.insert(make_profile(f"b{i}", text=TEXTS[::-1][i]), side=1)
            client.remove("a2", side=0)
            client.checkpoint()
            client.insert(make_profile("a9", text=TEXTS[1]), side=0)
            before = client.match()
        _stop(daemon, thread)

        # a different shard count must make no observable difference
        recovered = MatchingDaemon(wal, recover=True, num_shards=3)
        thread = _start(recovered)
        try:
            with ServeClient(*recovered.address) as client:
                after = client.match()
                assert after["retained"] == before["retained"]
                # and the daemon keeps accepting writes after recovery
                client.insert(make_profile("b9", text=TEXTS[2]), side=1)
                final = client.match()
            offline = recover_session(wal)
            try:
                assert final["retained"] == reference_retained(offline)
            finally:
                offline.close()
        finally:
            _stop(recovered, thread)


class TestGracefulShutdown:
    def test_shutdown_op_drains_and_exits(self, tmp_path, frozen_model):
        daemon = MatchingDaemon(
            tmp_path / "wal", frozen_model, num_shards=2, bilateral=True
        )
        thread = _start(daemon)
        with ServeClient(*daemon.address) as client:
            client.insert(make_profile("a0", text=TEXTS[0]), side=0)
            assert client.shutdown() == {"stopping": True}
        thread.join(60)
        assert not thread.is_alive()
        # the final checkpoint landed: state recovers without the tail replay
        snapshots = sorted((tmp_path / "wal").glob("snapshot-*.snap"))
        assert len(snapshots) >= 1  # shutdown checkpoint
        session = recover_session(tmp_path / "wal")
        try:
            assert session.index.has_entity("a0", side=0)
        finally:
            session.close()

    @pytest.mark.slow
    def test_sigterm_mid_ingest_recovers_every_acknowledged_write(self, tmp_path):
        """Kill the real daemon subprocess mid-ingest: it must exit 0, and
        ``--recover`` must resume every write the client saw acknowledged."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--wal", str(tmp_path / "wal"), "--shards", "2",
                "--dataset", "DblpAcm", "--scale", "0.03",
                "--training-size", "20",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = json.loads(process.stdout.readline())
            acked = []
            with ServeClient(banner["host"], banner["port"]) as client:
                for i in range(40):
                    side = i % 2
                    text = TEXTS[i % len(TEXTS)]
                    client.insert(
                        make_profile(f"e{i}", text=text), side=side
                    )
                    acked.append((f"e{i}", side))
                    if i == 25:
                        process.send_signal(signal.SIGTERM)
            # the client loop above may have died mid-flight once the daemon
            # drained — everything acknowledged *before* that is the contract
        except (ProtocolError, ServeError, OSError, BrokenPipeError):
            pass
        returncode = process.wait(120)
        stderr = process.stderr.read()
        assert returncode == 0, f"daemon exited {returncode}: {stderr[-2000:]}"

        session = recover_session(tmp_path / "wal")
        try:
            for entity_id, side in acked:
                assert session.index.has_entity(entity_id, side=side), (
                    f"acknowledged insert {entity_id!r} lost across SIGTERM"
                )
        finally:
            session.close()


class TestExecutorLifecycleSharing:
    def test_daemon_uses_one_executor_lifecycle(self, tmp_path, frozen_model):
        """A daemon with tokenize workers owns one long-lived executor and
        closes it exactly once on shutdown (idempotent close path)."""
        daemon = MatchingDaemon(
            tmp_path / "wal",
            frozen_model,
            num_shards=2,
            bilateral=True,
            tokenize_workers=2,
        )
        assert daemon._executor is not None
        thread = _start(daemon)
        with ServeClient(*daemon.address) as client:
            bulk = client.insert_bulk(
                [make_profile(f"a{i}", text=text) for i, text in enumerate(TEXTS)],
                side=0,
            )
            assert bulk["entity_ids"] == [f"a{i}" for i in range(len(TEXTS))]
            for i, text in enumerate(TEXTS):
                client.insert(make_profile(f"b{i}", text=text), side=1)
            answer = client.match()
        _stop(daemon, thread)
        assert daemon._executor.closed
        daemon._executor.close()  # double close must not raise
        # the fanned-out tokenization produced the canonical state
        session = recover_session(tmp_path / "wal")
        try:
            assert answer["retained"] == reference_retained(session)
        finally:
            session.close()
