"""Integration tests for observability on the live serving path.

One in-process daemon per test class, with tracing on, an event-log
directory, and a zero slow-request threshold, exercising:

* trace ids — client-supplied ids echoed back, server-minted ids for
  old (v1-style) envelopes that carry none;
* the ``metrics`` protocol op (Prometheus text exposition) and the
  process gauges behind it;
* request events in the structured log, with span trees that cross the
  dispatch threads, the WAL and the shard-worker processes;
* ``render_stats`` of a live ``stats`` payload (including the new
  gauges line).
"""

import socket
import threading
import time

import pytest

from repro.datamodel import make_profile
from repro.obs import events as obs_events
from repro.obs import read_events
from repro.serve import MatchingDaemon, ServeClient, render_stats
from repro.serve.protocol import read_message_from, write_message_to


def _span_names(tree):
    if tree is None:
        return set()
    names = {tree.get("name")}
    for child in tree.get("children", ()):
        names |= _span_names(child)
    return names


@pytest.fixture()
def obs_daemon(tmp_path, frozen_model):
    daemon = MatchingDaemon(
        tmp_path / "wal",
        frozen_model,
        num_shards=2,
        bilateral=True,
        event_log=tmp_path / "events",
        slow_request_ms=0.0,
    )
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(60), "daemon did not come up"
    try:
        yield daemon
    finally:
        daemon.request_shutdown()
        thread.join(60)
        assert not thread.is_alive()
        obs_events.configure(None)


def _raw_request(address, message):
    with socket.create_connection(address, timeout=30) as sock:
        stream = sock.makefile("rwb")
        write_message_to(stream, message)
        return read_message_from(stream)


class TestTraceEnvelope:
    def test_client_supplied_trace_is_echoed(self, obs_daemon):
        response = _raw_request(
            obs_daemon.address,
            {"op": "ping", "id": 1, "args": {}, "trace": "cafe0123beef4567"},
        )
        assert response["ok"] is True
        assert response["trace"] == "cafe0123beef4567"

    def test_server_mints_a_trace_for_v1_envelopes(self, obs_daemon):
        # an old client sends no "trace" field; the response carries a
        # server-minted id, so old clients keep working and every request
        # is still traceable
        response = _raw_request(
            obs_daemon.address, {"op": "ping", "id": 1, "args": {}}
        )
        assert response["ok"] is True
        minted = response["trace"]
        assert len(minted) == 16
        int(minted, 16)

    def test_error_responses_carry_the_trace_too(self, obs_daemon):
        response = _raw_request(
            obs_daemon.address,
            {"op": "no_such_op", "id": 1, "args": {}, "trace": "feed0123dead4567"},
        )
        assert response["ok"] is False
        assert response["trace"] == "feed0123dead4567"

    def test_serve_client_tracks_its_last_trace_id(self, obs_daemon):
        with ServeClient(*obs_daemon.address) as client:
            client.ping()
            first = client.last_trace_id
            client.ping()
            second = client.last_trace_id
        assert first and second and first != second


class TestMetricsOp:
    def test_prometheus_exposition_over_the_wire(self, obs_daemon):
        with ServeClient(*obs_daemon.address) as client:
            client.insert(make_profile("a1", text="alpha beta"), side=0)
            client.match()
            answer = client.metrics()
        assert answer["content_type"].startswith("text/plain; version=0.0.4")
        text = answer["text"]
        for family in (
            'repro_request_duration_seconds_bucket{op="match"',
            'repro_request_duration_seconds_count{op="insert"} 1',
            "repro_connections_open 1",
            "# TYPE repro_process_rss_bytes gauge",
            "# TYPE repro_wal_size_bytes gauge",
            "# TYPE repro_resident_shm_bytes gauge",
            "# TYPE repro_shard0_replica_lag_records gauge",
            "# TYPE repro_shard1_replica_lag_records gauge",
            "# TYPE repro_snapshot_age_seconds gauge",
        ):
            assert family in text, f"missing family: {family}"

    def test_replica_lag_gauge_counts_unshipped_mutations(self, obs_daemon):
        with ServeClient(*obs_daemon.address) as client:
            client.insert(make_profile("a1", text="alpha beta"), side=0)
            client.insert(make_profile("b1", text="alpha beta"), side=1)
            # no read yet: nothing shipped, lag equals the mutation count
            gauges = client.stats()["metrics"]["gauges"]
            assert gauges["shard0_replica_lag_records"] == 2.0
            client.match()  # ships both shards at the pinned serial
            gauges = client.stats()["metrics"]["gauges"]
            assert gauges["shard0_replica_lag_records"] == 0.0
            assert gauges["shard1_replica_lag_records"] == 0.0
            assert gauges["resident_shm_bytes"] > 0


class TestRequestEvents:
    def test_request_events_reconstruct_span_trees_across_processes(
        self, obs_daemon, tmp_path
    ):
        with ServeClient(*obs_daemon.address) as client:
            client.insert(make_profile("a1", text="alpha beta"), side=0)
            insert_trace = client.last_trace_id
            client.insert(make_profile("b1", text="alpha beta"), side=1)
            client.match()
            match_trace = client.last_trace_id
        log = read_events(tmp_path / "events")
        requests = {
            event["trace"]: event
            for event in log
            if event["type"] == "request"
        }
        assert requests[insert_trace]["op"] == "insert"
        assert requests[insert_trace]["ok"] is True
        # the mutation's span tree reaches down into the WAL
        insert_spans = _span_names(requests[insert_trace]["spans"])
        assert {"insert", "queue-wait", "mutate", "wal-append"} <= insert_spans
        # the read's span tree crosses into both worker processes
        match_spans = _span_names(requests[match_trace]["spans"])
        assert {
            "match", "fan-out", "shard0", "shard1",
            "catch-up", "export", "view-apply", "score-and-prune",
        } <= match_spans
        assert requests[match_trace]["duration_ms"] > 0

    def test_request_start_and_slow_request_events(self, obs_daemon, tmp_path):
        with ServeClient(*obs_daemon.address) as client:
            client.ping()
            trace = client.last_trace_id
        log = read_events(tmp_path / "events")
        types_for_trace = [
            event["type"] for event in log if event.get("trace") == trace
        ]
        assert "request_start" in types_for_trace
        assert "request" in types_for_trace
        # threshold 0.0 marks everything slow
        assert "slow_request" in types_for_trace

    def test_worker_lifecycle_events_are_journaled(self, obs_daemon, tmp_path):
        with ServeClient(*obs_daemon.address) as client:
            client.ping()
        # workers journal their spawn/adoption asynchronously while they
        # bootstrap; wait for both shards to have reported
        deadline = time.monotonic() + 30
        while True:
            log = read_events(tmp_path / "events")
            spawns = [
                event for event in log if event["type"] == "worker_spawn"
            ]
            adoptions = [
                event for event in log if event["type"] == "checkpoint_adoption"
            ]
            if (
                {event["shard"] for event in spawns}
                == {event["shard"] for event in adoptions}
                == {0, 1}
            ):
                break
            assert time.monotonic() < deadline, "worker lifecycle not journaled"
            time.sleep(0.05)
        assert {event["shard"] for event in spawns} == {0, 1}
        assert {event["shard"] for event in adoptions} == {0, 1}
        # adoption joins back to its worker through the lineage token
        lineages = {event["lineage"] for event in spawns}
        assert all(event["lineage"] in lineages for event in adoptions)
        assert all(event["role"].startswith("shard") for event in spawns)

    def test_tracing_off_keeps_the_envelope_but_drops_spans(
        self, tmp_path, frozen_model
    ):
        daemon = MatchingDaemon(
            tmp_path / "wal",
            frozen_model,
            num_shards=1,
            event_log=tmp_path / "events",
            tracing=False,
        )
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        assert daemon.ready.wait(60)
        try:
            with ServeClient(*daemon.address) as client:
                client.insert(make_profile("a1", text="alpha beta"), side=0)
                client.match()
                trace = client.last_trace_id
        finally:
            daemon.request_shutdown()
            thread.join(60)
            obs_events.configure(None)
        log = read_events(tmp_path / "events")
        (request,) = [
            event
            for event in log
            if event["type"] == "request" and event["trace"] == trace
        ]
        assert request["ok"] is True
        assert "spans" not in request


class TestStatsRendering:
    def test_render_stats_includes_observability_sections(self, obs_daemon):
        with ServeClient(*obs_daemon.address) as client:
            client.insert(make_profile("a1", text="alpha beta"), side=0)
            client.match()
            stats = client.stats()
        observability = stats["daemon"]["observability"]
        assert observability["tracing"] == "on"
        assert observability["event_log"].endswith("events")
        assert observability["slow_request_ms"] == 0.0
        assert "gauges" in stats["metrics"]
        text = render_stats(stats)
        assert "gauges:" in text
        assert "process_rss_bytes=" in text
        assert "match" in text and "p99=" in text
