"""Tests for the unsupervised meta-blocking baselines."""

import numpy as np
import pytest

from repro.evaluation import evaluate_candidates, evaluate_retained_mask
from repro.metablocking import (
    UnsupervisedBLAST,
    UnsupervisedCEP,
    UnsupervisedCNP,
    UnsupervisedRCNP,
    UnsupervisedRWNP,
    UnsupervisedWEP,
    UnsupervisedWNP,
    build_blocking_graph,
)


class TestBlockingGraph:
    def test_graph_edges_are_candidate_pairs(self, small_blocks, small_candidates):
        graph = build_blocking_graph(small_blocks, scheme="CBS")
        assert graph.edge_count == len(small_candidates)
        assert graph.scheme_name == "CBS"
        assert graph.weights.shape == (len(small_candidates),)

    def test_cbs_weights_match_common_blocks(self, small_blocks, small_stats):
        graph = build_blocking_graph(small_blocks, scheme="CBS")
        for position, pair in enumerate(graph.candidates):
            assert graph.weights[position] == small_stats.common_block_count(
                pair.left, pair.right
            )

    def test_entity_level_scheme_rejected(self, small_blocks):
        with pytest.raises(ValueError):
            build_blocking_graph(small_blocks, scheme="LCP")

    def test_adjacency_and_degrees(self, small_blocks):
        graph = build_blocking_graph(small_blocks, scheme="JS")
        adjacency = graph.adjacency()
        degrees = graph.node_degrees()
        for node, edges in adjacency.items():
            assert degrees[node] == len(edges)

    @pytest.mark.parametrize("scheme", ["CBS", "JS", "WJS", "CF-IBF", "EJS"])
    def test_sparse_builder_matches_loop_builder(
        self, small_blocks, prepared_dblpacm, scheme
    ):
        """The CSR-backed default builder reproduces the per-pair builder."""
        for blocks in (small_blocks, prepared_dblpacm.blocks):
            sparse_graph = build_blocking_graph(blocks, scheme=scheme)
            loop_graph = build_blocking_graph(blocks, scheme=scheme, backend="loop")
            assert sparse_graph.scheme_name == loop_graph.scheme_name
            np.testing.assert_allclose(
                sparse_graph.weights, loop_graph.weights, rtol=1e-9, atol=1e-12
            )


class TestUnsupervisedPruning:
    @pytest.mark.parametrize(
        "algorithm",
        [
            UnsupervisedWEP(),
            UnsupervisedWNP(),
            UnsupervisedRWNP(),
            UnsupervisedBLAST(),
            UnsupervisedCEP(budget=5),
            UnsupervisedCNP(budget=2),
            UnsupervisedRCNP(budget=2),
        ],
    )
    def test_masks_align_with_edges(self, small_blocks, algorithm):
        graph = build_blocking_graph(small_blocks, scheme="JS")
        mask = algorithm.prune(graph, small_blocks)
        assert mask.shape == (graph.edge_count,)
        assert mask.dtype == bool

    def test_wep_average_threshold(self, small_blocks):
        graph = build_blocking_graph(small_blocks, scheme="CBS")
        mask = UnsupervisedWEP().prune(graph)
        average = graph.weights.mean()
        assert np.array_equal(mask, graph.weights >= average)

    def test_rwnp_subset_of_wnp(self, small_blocks):
        graph = build_blocking_graph(small_blocks, scheme="JS")
        wnp = UnsupervisedWNP().prune(graph)
        rwnp = UnsupervisedRWNP().prune(graph)
        assert np.all(~rwnp | wnp)

    def test_rcnp_subset_of_cnp(self, small_blocks):
        graph = build_blocking_graph(small_blocks, scheme="JS")
        cnp = UnsupervisedCNP(budget=1).prune(graph)
        rcnp = UnsupervisedRCNP(budget=1).prune(graph)
        assert np.all(~rcnp | cnp)

    def test_cep_budget_respected(self, small_blocks):
        graph = build_blocking_graph(small_blocks, scheme="CBS")
        mask = UnsupervisedCEP(budget=3).prune(graph)
        assert mask.sum() == 3

    def test_cep_requires_blocks_without_budget(self, small_blocks):
        graph = build_blocking_graph(small_blocks, scheme="CBS")
        with pytest.raises(ValueError):
            UnsupervisedCEP().prune(graph)
        mask = UnsupervisedCEP().prune(graph, small_blocks)
        assert mask.any()

    def test_unsupervised_metablocking_improves_precision(self, prepared_abtbuy):
        """Sanity: even unsupervised pruning should raise precision over raw blocks."""
        graph = build_blocking_graph(
            prepared_abtbuy.blocks, scheme="RACCB", candidates=prepared_abtbuy.candidates
        )
        labels = prepared_abtbuy.ground_truth.labels_for(prepared_abtbuy.candidates)
        input_report = evaluate_candidates(
            prepared_abtbuy.candidates, prepared_abtbuy.ground_truth
        )
        mask = UnsupervisedWNP().prune(graph, prepared_abtbuy.blocks)
        output_report = evaluate_retained_mask(
            mask, labels, len(prepared_abtbuy.ground_truth)
        )
        assert output_report.precision > input_report.precision
        assert output_report.recall > 0.5
