"""Unit tests for the WAL record framing and snapshot files.

The torn-tail sweep is the core durability property at the byte level: a
log truncated at *every* possible offset must scan to exactly the records
whose frames fully survived, never raising and never resurrecting a partial
record.
"""

import os

import pytest

from repro.persistence import LOG_MAGIC, WriteAheadLog, encode_record


def _records(n):
    return [{"op": "add", "id": f"e{i}", "side": 0, "sig": [f"t{i}", "c"]} for i in range(n)]


def _write_log(path, records, sync="always"):
    wal = WriteAheadLog(path, sync=sync)
    with wal:
        for record in records:
            wal.append_record(record)
    return wal


class TestFraming:
    def test_round_trip(self, tmp_path):
        records = _records(5)
        _write_log(tmp_path / "w", records)
        scan = WriteAheadLog(tmp_path / "w").scan()
        assert [entry.record for entry in scan.records] == records
        assert not scan.truncated
        assert scan.valid_length == scan.file_length

    def test_record_extents_are_contiguous(self, tmp_path):
        records = _records(3)
        _write_log(tmp_path / "w", records)
        scan = WriteAheadLog(tmp_path / "w").scan()
        position = len(LOG_MAGIC)
        for entry in scan.records:
            assert entry.start == position
            position = entry.end
        assert scan.valid_length == position

    def test_missing_file_scans_empty(self, tmp_path):
        scan = WriteAheadLog(tmp_path / "w").scan()
        assert scan.records == [] and scan.valid_length == 0

    def test_wrong_magic_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w")
        wal.log_path.write_bytes(b"NOTAWALFILE" + encode_record({"op": "meta"}))
        with pytest.raises(ValueError, match="not a repro write-ahead log"):
            wal.scan()

    def test_torn_tail_sweep_every_byte(self, tmp_path):
        """Truncating at every byte offset yields exactly the full frames."""
        records = _records(4)
        _write_log(tmp_path / "w", records)
        full = (tmp_path / "w" / "wal.log").read_bytes()
        boundaries = [entry.end for entry in WriteAheadLog(tmp_path / "w").scan().records]
        for cut in range(len(LOG_MAGIC), len(full) + 1):
            target = tmp_path / "cut"
            target.mkdir(exist_ok=True)
            (target / "wal.log").write_bytes(full[:cut])
            scan = WriteAheadLog(target).scan()
            expected = sum(1 for boundary in boundaries if boundary <= cut)
            assert len(scan.records) == expected, cut
            assert scan.valid_length == (
                boundaries[expected - 1] if expected else len(LOG_MAGIC)
            )
            assert scan.truncated == (scan.valid_length < cut)

    def test_corrupt_payload_byte_stops_the_scan(self, tmp_path):
        records = _records(4)
        _write_log(tmp_path / "w", records)
        log = tmp_path / "w" / "wal.log"
        data = bytearray(log.read_bytes())
        second_start = WriteAheadLog(tmp_path / "w").scan().records[1].start
        data[second_start + 10] ^= 0xFF  # flip a bit inside record 2
        log.write_bytes(bytes(data))
        scan = WriteAheadLog(tmp_path / "w").scan()
        assert [entry.record for entry in scan.records] == records[:1]
        assert scan.truncated

    def test_insane_length_field_stops_the_scan(self, tmp_path):
        _write_log(tmp_path / "w", _records(1))
        log = tmp_path / "w" / "wal.log"
        with open(log, "ab") as handle:  # header claiming a multi-GiB payload
            handle.write(b"\xff\xff\xff\xff\xff\xff\xff\xff")
        scan = WriteAheadLog(tmp_path / "w").scan()
        assert len(scan.records) == 1 and scan.truncated

    def test_open_truncates_torn_tail_and_appends_behind_it(self, tmp_path):
        records = _records(3)
        _write_log(tmp_path / "w", records)
        log = tmp_path / "w" / "wal.log"
        data = log.read_bytes()
        log.write_bytes(data[:-5])  # tear the last record
        wal = WriteAheadLog(tmp_path / "w")
        scan = wal.scan()
        assert len(scan.records) == 2
        with wal.open(truncate_at=scan.valid_length):
            wal.append_record({"op": "remove", "id": "e0", "side": 0})
        replayed = [entry.record for entry in WriteAheadLog(tmp_path / "w").scan().records]
        assert replayed == records[:2] + [{"op": "remove", "id": "e0", "side": 0}]

    def test_batch_mode_survives_scan_after_close(self, tmp_path):
        records = _records(6)
        _write_log(tmp_path / "w", records, sync="batch")
        scan = WriteAheadLog(tmp_path / "w").scan()
        assert [entry.record for entry in scan.records] == records


class TestSnapshots:
    def test_snapshot_round_trip_and_sequencing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w")
        first = wal.write_snapshot({"state": 1})
        second = wal.write_snapshot({"state": 2})
        assert [path.name for path in wal.snapshot_paths()] == [
            first.name,
            second.name,
        ]
        assert wal.latest_snapshot() == {"state": 2}
        assert not list((tmp_path / "w").glob("*.tmp"))

    def test_corrupt_newest_snapshot_falls_back_to_older(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w")
        wal.write_snapshot({"state": 1})
        newest = wal.write_snapshot({"state": 2})
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])  # simulate a partial write
        assert wal.load_snapshot(newest) is None
        assert wal.latest_snapshot() == {"state": 1}

    def test_is_empty_tracks_records_and_snapshots(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w")
        assert wal.is_empty()
        with wal:
            assert wal.is_empty()  # magic only
            wal.append_record({"op": "meta"})
            assert not wal.is_empty()
        other = WriteAheadLog(tmp_path / "x")
        other.write_snapshot({"state": 1})
        assert not other.is_empty()

    def test_fresh_flag(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w")
        with wal:
            assert wal.is_fresh
            wal.append_record({"op": "meta"})
            assert not wal.is_fresh
        assert not WriteAheadLog(tmp_path / "w").is_fresh
