"""Deterministic tests for WAL-backed :class:`MatchingSession` recovery.

A session opened with ``wal_path=`` journals every mutation and snapshots
its full state (frozen model, online-policy aggregates, insert-time
probabilities).  Recovery must resume with the identical exact answer and
identical online admission thresholds, then keep streaming in lock-step
with the uninterrupted session.
"""

import numpy as np
import pytest

from repro.core import FeatureVectorGenerator
from repro.datamodel import make_profile
from repro.incremental import FrozenModel, MatchingSession
from repro.persistence import canonical_pair_keys

FEATURE_SET = ("CBS", "JS", "RS")


class _FixedLogistic:
    """Deterministic frozen 'classifier' (rounded so replayed scores are
    bit-identical to the original run's)."""

    def __init__(self, n_features: int) -> None:
        self._weights = np.linspace(-1.0, 1.0, n_features)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        z = np.clip(features @ self._weights, -30.0, 30.0)
        return np.round(1.0 / (1.0 + np.exp(-z)), 9)


def _frozen_model() -> FrozenModel:
    width = FeatureVectorGenerator(FEATURE_SET).columns
    return FrozenModel(
        classifier=_FixedLogistic(len(width)), scaler=None, feature_set=FEATURE_SET
    )


def _profiles(n, prefix):
    return [
        make_profile(f"{prefix}{i}", t=f"tok{i % 5} tok{i % 3} common w{i % 7}")
        for i in range(n)
    ]


def _live_probabilities(session):
    """Insert-time probabilities of the live pairs, sorted by canonical key."""
    positions, keys = canonical_pair_keys(session.index)
    order = np.argsort(keys)
    return keys[order], session._insert_probabilities.view()[positions][order]


def _stream(session):
    profiles = _profiles(14, "a")
    session.insert_bulk(profiles[:6])
    for profile in profiles[6:12]:
        session.insert(profile)
    session.remove("a3")
    session.update(make_profile("a4", t="tok9 common"))
    session.insert(profiles[12])
    session.insert(profiles[13])


@pytest.mark.parametrize("policy", ["wep", "topk"])
def test_recovered_session_resumes_identically(tmp_path, policy):
    session = MatchingSession(
        _frozen_model(),
        online=policy,
        top_k=10,
        wal_path=tmp_path / "wal",
        snapshot_every=6,
    )
    _stream(session)
    expected = session.retained().retained_id_set()
    threshold = session.online.threshold
    session.close()

    recovered = MatchingSession.recover(tmp_path / "wal")
    assert recovered.retained().retained_id_set() == expected
    assert recovered.online.threshold == pytest.approx(threshold, abs=1e-12)
    keys_live, probs_live = _live_probabilities(session)
    keys_rec, probs_rec = _live_probabilities(recovered)
    assert np.array_equal(keys_live, keys_rec)
    assert np.allclose(probs_live, probs_rec)

    # both sessions keep streaming in lock-step
    for profile in _profiles(4, "b"):
        session.insert(profile)
        recovered.insert(profile)
    session.remove("b1")
    recovered.remove("b1")
    assert recovered.retained().retained_id_set() == session.retained().retained_id_set()
    assert recovered.online.threshold == pytest.approx(
        session.online.threshold, abs=1e-12
    )
    recovered.close()

    # the resumed appends are durable: recover a second time
    again = MatchingSession.recover(tmp_path / "wal")
    assert again.retained().retained_id_set() == session.retained().retained_id_set()


def test_recovery_survives_a_torn_tail(tmp_path):
    session = MatchingSession(
        _frozen_model(), online="wep", wal_path=tmp_path / "wal"
    )
    for profile in _profiles(8, "a"):
        session.insert(profile)
    before_last = session.retained().retained_id_set()
    session.insert(make_profile("late", t="tok1 common"))
    session.close()

    log = tmp_path / "wal" / "wal.log"
    log.write_bytes(log.read_bytes()[:-9])  # tear the final insert's record

    recovered = MatchingSession.recover(tmp_path / "wal")
    assert not recovered.index.has_entity("late")
    assert recovered.retained().retained_id_set() == before_last


def test_explicit_and_automatic_checkpoints(tmp_path):
    session = MatchingSession(
        _frozen_model(), wal_path=tmp_path / "wal", snapshot_every=3
    )
    # construction writes the bootstrap snapshot immediately
    assert len(session.wal.snapshot_paths()) == 1
    for profile in _profiles(7, "a"):
        session.insert(profile)
    assert len(session.wal.snapshot_paths()) == 3  # bootstrap + 2 automatic
    session.checkpoint()
    assert len(session.wal.snapshot_paths()) == 4
    session.close()
    recovered = MatchingSession.recover(tmp_path / "wal")
    assert recovered.retained().retained_id_set() == session.retained().retained_id_set()


def test_fresh_session_refuses_a_used_wal_directory(tmp_path):
    session = MatchingSession(_frozen_model(), wal_path=tmp_path / "wal")
    session.insert(make_profile("a0", t="tok common"))
    session.close()
    with pytest.raises(ValueError, match="MatchingSession.recover"):
        MatchingSession(_frozen_model(), wal_path=tmp_path / "wal")


def test_checkpoint_requires_a_wal():
    session = MatchingSession(_frozen_model())
    with pytest.raises(RuntimeError, match="wal_path"):
        session.checkpoint()


def test_bare_index_wal_rejects_session_recovery(tmp_path):
    from repro.incremental import MutableBlockIndex
    from repro.persistence import WriteAheadLog

    index = MutableBlockIndex()
    wal = WriteAheadLog(tmp_path / "wal")
    index.attach_wal(wal)
    index.add_entity(make_profile("e0", t="apple phone"))
    wal.close()
    with pytest.raises(ValueError, match="recover_index"):
        MatchingSession.recover(tmp_path / "wal")
