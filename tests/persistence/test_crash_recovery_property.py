"""Property test: crash recovery is exact at every possible crash point.

Hypothesis generates random churn scripts (inserts, bulk loads, removals,
in-place updates), runs them against a WAL-attached index — plain and
sharded — and then simulates a crash at **every** log record boundary and
at offsets tearing a record in half.  Recovery from each truncated copy
must yield an index whose canonical view (canonical candidate pairs,
snapshot blocks, per-entity aggregates) equals a fresh index that applied
exactly the operations whose records fully survived — the
replay-to-last-complete-record guarantee, with and without a mid-sequence
snapshot.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datamodel import make_profile
from repro.incremental import MutableBlockIndex, ShardedMutableBlockIndex
from repro.persistence import (
    LOG_MAGIC,
    WriteAheadLog,
    apply_logged_record,
    construct_index,
    recover_index,
    write_index_snapshot,
)

WORDS = (
    "apple", "samsung", "phone", "smartphone", "mate", "fold", "x",
    "s20", "20", "the", "and", "a", "pro", "mini",
)

SLOW_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def churn_scripts(draw, bilateral):
    """A random interleaving of inserts, bulk loads, removals and updates."""
    steps = []
    live = []
    counter = 0
    for _ in range(draw(st.integers(3, 10))):
        kind = draw(st.sampled_from(("add", "bulk", "remove", "update")))
        side = draw(st.integers(0, 1)) if bilateral else 0
        if kind in ("remove", "update") and not live:
            kind = "add"
        if kind == "add":
            tokens = draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=5))
            steps.append(("add", f"e{counter}", side, tokens))
            live.append((f"e{counter}", side))
            counter += 1
        elif kind == "bulk":
            size = draw(st.integers(1, 4))
            batch = []
            for _ in range(size):
                tokens = draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=5))
                batch.append((f"e{counter}", tokens))
                live.append((f"e{counter}", side))
                counter += 1
            steps.append(("bulk", batch, side))
        elif kind == "remove":
            target = draw(st.sampled_from(live))
            live.remove(target)
            steps.append(("remove", target[0], target[1]))
        else:
            target = draw(st.sampled_from(live))
            tokens = draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=5))
            steps.append(("update", target[0], target[1], tokens))
    return steps


def apply_script(index, steps, snapshot_after=None, wal=None):
    for position, step in enumerate(steps):
        if step[0] == "add":
            _, entity_id, side, tokens = step
            index.add_entity(make_profile(entity_id, t=" ".join(tokens)), side=side)
        elif step[0] == "bulk":
            _, batch, side = step
            index.add_entities_bulk(
                [make_profile(eid, t=" ".join(tokens)) for eid, tokens in batch],
                side=side,
            )
        elif step[0] == "remove":
            _, entity_id, side = step
            index.remove_entity(entity_id, side=side)
        else:
            _, entity_id, side, tokens = step
            index.update_entity(make_profile(entity_id, t=" ".join(tokens)), side=side)
        if snapshot_after is not None and position == snapshot_after:
            write_index_snapshot(index, wal)


def pairs_of(candidates):
    return set(zip(candidates.left.tolist(), candidates.right.tolist()))


def canonical_view(index):
    """Everything recovery promises to restore, in canonical coordinates."""
    pairs = pairs_of(index.canonical_candidates(index.candidate_set()))
    blocks = {
        (b.key, tuple(b.entities_first), tuple(b.entities_second))
        for b in index.snapshot_blocks()
    }
    canonical = index.canonical_node_ids()
    live = canonical >= 0
    order = np.argsort(canonical[live])
    stats = index.statistics()
    aggregates = np.stack(
        [
            stats.blocks_per_entity[live][order],
            stats.entity_cardinality[live][order],
            stats.entity_inv_cardinality[live][order],
            stats.entity_inv_size[live][order],
        ]
    )
    return index.num_entities, pairs, blocks, aggregates


def assert_same_view(recovered, reference):
    n1, pairs1, blocks1, agg1 = canonical_view(recovered)
    n2, pairs2, blocks2, agg2 = canonical_view(reference)
    assert n1 == n2
    assert pairs1 == pairs2
    assert blocks1 == blocks2
    assert np.allclose(agg1, agg2)


def reference_for_prefix(records):
    """A fresh index holding exactly the logged prefix — no snapshots, no
    recovery machinery, just the logical record semantics."""
    meta = records[0]
    assert meta["op"] == "meta"
    index = construct_index(meta)
    for record in records[1:]:
        apply_logged_record(index, record)
    return index


def crash_points(scan, tail_bytes):
    """Every record boundary plus offsets tearing the next record."""
    points = set()
    for entry in scan.records:
        points.add(entry.end)
        # mid-header and mid-payload tears of this record
        points.add(entry.start + 3)
        points.add(min(entry.end - 1, entry.start + 12))
    points.add(len(LOG_MAGIC))
    points.add(tail_bytes)
    return sorted(point for point in points if len(LOG_MAGIC) <= point <= tail_bytes)


def run_crash_sweep(make_index, steps, snapshot_after):
    with tempfile.TemporaryDirectory() as root:
        live_dir = Path(root) / "live"
        index = make_index()
        wal = WriteAheadLog(live_dir, sync="batch")
        index.attach_wal(wal)
        apply_script(index, steps, snapshot_after=snapshot_after, wal=wal)
        wal.close()

        scan = WriteAheadLog(live_dir).scan()
        full = (live_dir / "wal.log").read_bytes()
        snapshot = WriteAheadLog(live_dir).latest_snapshot()
        snapshot_offset = None if snapshot is None else int(snapshot["log_offset"])

        for cut in crash_points(scan, len(full)):
            crash_dir = Path(root) / "crash"
            shutil.rmtree(crash_dir, ignore_errors=True)
            crash_dir.mkdir()
            (crash_dir / "wal.log").write_bytes(full[:cut])
            # a snapshot fsynced at offset o can only exist in a crash image
            # whose durable log already reached o (sync="always" semantics)
            if snapshot_offset is not None and snapshot_offset <= cut:
                for path in WriteAheadLog(live_dir).snapshot_paths():
                    shutil.copy(path, crash_dir / path.name)

            surviving = [
                entry.record for entry in scan.records if entry.end <= cut
            ]
            if not surviving and (snapshot_offset is None or snapshot_offset > cut):
                # the crash predates even the meta record: the log is torn
                # down to nothing recoverable, and recovery must say so
                # rather than hand back a guessed-topology index
                with pytest.raises(ValueError):
                    recover_index(crash_dir)
                continue
            recovered = recover_index(crash_dir)
            assert_same_view(recovered, reference_for_prefix(surviving))

        # the complete log recovers the full run
        assert_same_view(recover_index(live_dir), index)


@SLOW_SETTINGS
@given(data=st.data(), bilateral=st.booleans(), with_snapshot=st.booleans())
def test_plain_index_recovers_at_every_crash_point(data, bilateral, with_snapshot):
    steps = data.draw(churn_scripts(bilateral))
    snapshot_after = (
        data.draw(st.integers(0, len(steps) - 1)) if with_snapshot else None
    )
    run_crash_sweep(
        lambda: MutableBlockIndex(bilateral=bilateral), steps, snapshot_after
    )


@SLOW_SETTINGS
@given(data=st.data(), bilateral=st.booleans(), with_snapshot=st.booleans())
def test_sharded_index_recovers_at_every_crash_point(data, bilateral, with_snapshot):
    steps = data.draw(churn_scripts(bilateral))
    snapshot_after = (
        data.draw(st.integers(0, len(steps) - 1)) if with_snapshot else None
    )
    run_crash_sweep(
        lambda: ShardedMutableBlockIndex(bilateral=bilateral, num_shards=3),
        steps,
        snapshot_after,
    )


def test_resume_appends_behind_a_torn_tail(tmp_path):
    """recover(resume=True) truncates the tear and keeps journaling."""
    live_dir = tmp_path / "w"
    index = MutableBlockIndex()
    wal = WriteAheadLog(live_dir)
    index.attach_wal(wal)
    for i in range(6):
        index.add_entity(make_profile(f"e{i}", t=f"apple phone tok{i % 2}"))
    index.remove_entity("e1")
    wal.close()

    log = live_dir / "wal.log"
    log.write_bytes(log.read_bytes()[:-7])  # tear the final record

    recovered = recover_index(live_dir, resume=True)
    assert recovered.has_entity("e1")  # the torn removal never happened
    recovered.add_entity(make_profile("late", t="apple mini"))
    recovered._wal.close()

    again = recover_index(live_dir)
    assert again.has_entity("late")
    assert_same_view(again, recovered)


def test_recovery_without_meta_or_snapshot_raises(tmp_path):
    wal = WriteAheadLog(tmp_path / "w")
    with wal:
        wal.append_record({"op": "add", "id": "e0", "side": 0, "sig": ["a"]})
    with pytest.raises(ValueError, match="neither a snapshot nor a meta record"):
        recover_index(tmp_path / "w")
