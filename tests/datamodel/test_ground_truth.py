"""Tests for the ground truth of duplicate pairs."""

import numpy as np
import pytest

from repro.datamodel import (
    CandidateSet,
    EntityCollection,
    EntityIndexSpace,
    GroundTruth,
    make_profile,
)


@pytest.fixture
def two_collections():
    first = EntityCollection([make_profile("a1"), make_profile("a2")], name="first")
    second = EntityCollection([make_profile("b1"), make_profile("b2")], name="second")
    return first, second


class TestGroundTruth:
    def test_from_id_pairs_clean_clean(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a1", "b2")], first, second)
        assert len(truth) == 1
        # a1 is node 0, b2 is node 3
        assert truth.is_match(0, 3)
        assert truth.is_match(3, 0)
        assert not truth.is_match(0, 2)

    def test_from_id_pairs_dirty(self):
        collection = EntityCollection(
            [make_profile("x"), make_profile("y"), make_profile("z")], name="dirty"
        )
        truth = GroundTruth.from_id_pairs([("x", "z")], collection)
        assert truth.is_match(0, 2)
        assert not truth.is_match(0, 1)

    def test_self_pair_rejected(self):
        space = EntityIndexSpace(3)
        with pytest.raises(ValueError):
            GroundTruth([(1, 1)], space)

    def test_labels_for_candidates(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a1", "b1")], first, second)
        space = truth.index_space
        candidates = CandidateSet.from_pairs([(0, 2), (1, 3)], space)
        labels = truth.labels_for(candidates)
        assert labels.tolist() == [True, False]

    def test_covered_and_missed(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a1", "b1"), ("a2", "b2")], first, second)
        candidates = CandidateSet.from_pairs([(0, 2)], truth.index_space)
        assert truth.covered_by(candidates) == 1
        assert truth.missed_by(candidates) == {(1, 3)}

    def test_iteration_and_pairs_copy(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a2", "b1"), ("a1", "b1")], first, second)
        assert list(truth) == [(0, 2), (1, 2)]
        pairs = truth.pairs()
        pairs.add((9, 10))
        assert len(truth) == 2  # mutation of the copy does not leak
