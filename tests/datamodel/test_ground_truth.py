"""Tests for the ground truth of duplicate pairs."""

import numpy as np
import pytest

from repro.datamodel import (
    CandidateSet,
    EntityCollection,
    EntityIndexSpace,
    GroundTruth,
    make_profile,
)


@pytest.fixture
def two_collections():
    first = EntityCollection([make_profile("a1"), make_profile("a2")], name="first")
    second = EntityCollection([make_profile("b1"), make_profile("b2")], name="second")
    return first, second


class TestGroundTruth:
    def test_from_id_pairs_clean_clean(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a1", "b2")], first, second)
        assert len(truth) == 1
        # a1 is node 0, b2 is node 3
        assert truth.is_match(0, 3)
        assert truth.is_match(3, 0)
        assert not truth.is_match(0, 2)

    def test_from_id_pairs_dirty(self):
        collection = EntityCollection(
            [make_profile("x"), make_profile("y"), make_profile("z")], name="dirty"
        )
        truth = GroundTruth.from_id_pairs([("x", "z")], collection)
        assert truth.is_match(0, 2)
        assert not truth.is_match(0, 1)

    def test_self_pair_rejected(self):
        space = EntityIndexSpace(3)
        with pytest.raises(ValueError):
            GroundTruth([(1, 1)], space)

    def test_labels_for_candidates(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a1", "b1")], first, second)
        space = truth.index_space
        candidates = CandidateSet.from_pairs([(0, 2), (1, 3)], space)
        labels = truth.labels_for(candidates)
        assert labels.tolist() == [True, False]

    def test_covered_and_missed(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a1", "b1"), ("a2", "b2")], first, second)
        candidates = CandidateSet.from_pairs([(0, 2)], truth.index_space)
        assert truth.covered_by(candidates) == 1
        assert truth.missed_by(candidates) == {(1, 3)}

    def test_iteration_and_pairs_copy(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a2", "b1"), ("a1", "b1")], first, second)
        assert list(truth) == [(0, 2), (1, 2)]
        pairs = truth.pairs()
        pairs.add((9, 10))
        assert len(truth) == 2  # mutation of the copy does not leak


class TestVectorizedLabels:
    """The packed-key ``labels_for`` must match the tuple-set reference."""

    def test_matches_reference_on_random_candidates(self):
        rng = np.random.default_rng(42)
        space = EntityIndexSpace(30, 25)
        duplicates = set()
        while len(duplicates) < 40:
            i = int(rng.integers(0, 30))
            j = int(rng.integers(30, 55))
            duplicates.add((i, j))
        truth = GroundTruth(duplicates, space)
        pairs = set()
        while len(pairs) < 200:
            i = int(rng.integers(0, 54))
            j = int(rng.integers(i + 1, 55))
            pairs.add((i, j))
        candidates = CandidateSet.from_pairs(pairs, space)
        vectorized = truth.labels_for(candidates)
        reference = truth.labels_for_pairs(candidates)
        assert vectorized.dtype == bool
        assert np.array_equal(vectorized, reference)
        assert vectorized.sum() > 0  # the draw covers some duplicates

    def test_empty_candidates_and_empty_truth(self):
        space = EntityIndexSpace(4, 4)
        truth = GroundTruth([], space)
        empty = CandidateSet.from_pairs([], space)
        assert truth.labels_for(empty).shape == (0,)
        candidates = CandidateSet.from_pairs([(0, 5), (1, 6)], space)
        assert truth.labels_for(candidates).tolist() == [False, False]

    def test_falls_back_when_candidate_ids_exceed_the_space(self):
        truth = GroundTruth([(0, 2)], EntityIndexSpace(3))
        larger = CandidateSet.from_pairs([(0, 2), (0, 7)], EntityIndexSpace(8))
        labels = truth.labels_for(larger)
        assert np.array_equal(labels, truth.labels_for_pairs(larger))
        assert labels.tolist() == [True, False]

    def test_out_of_space_truth_pairs_do_not_alias(self):
        # (0, 12) packed with the space's stride 10 would alias (1, 2)
        truth = GroundTruth([(0, 12)], EntityIndexSpace(5, 5))
        candidates = CandidateSet.from_pairs([(1, 2)], EntityIndexSpace(5, 5))
        labels = truth.labels_for(candidates)
        assert np.array_equal(labels, truth.labels_for_pairs(candidates))
        assert labels.tolist() == [False]

    def test_packed_pairs_sorted_and_cached(self, two_collections):
        first, second = two_collections
        truth = GroundTruth.from_id_pairs([("a2", "b2"), ("a1", "b1")], first, second)
        packed = truth.packed_pairs()
        assert np.all(np.diff(packed) > 0)
        assert truth.packed_pairs() is packed
