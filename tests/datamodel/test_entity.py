"""Tests for the entity data model."""

import pytest

from repro.datamodel import (
    EntityCollection,
    EntityIndexSpace,
    EntityProfile,
    collection_from_dicts,
    make_profile,
)


class TestEntityProfile:
    def test_text_concatenates_non_empty_values(self):
        profile = make_profile("p1", name="Apple iPhone", descr="", category="phone")
        assert profile.text() == "Apple iPhone phone"

    def test_values_skips_empty(self):
        profile = make_profile("p1", a="x", b="", c="y")
        assert profile.values() == ["x", "y"]

    def test_attribute_lookup_with_default(self):
        profile = make_profile("p1", name="foo")
        assert profile.attribute("name") == "foo"
        assert profile.attribute("missing", "fallback") == "fallback"
        assert profile.attribute("missing") == ""

    def test_is_empty(self):
        assert make_profile("p1").is_empty()
        assert make_profile("p2", a="").is_empty()
        assert not make_profile("p3", a="x").is_empty()

    def test_len_counts_attributes(self):
        assert len(make_profile("p1", a="x", b="y")) == 2


class TestEntityCollection:
    def test_indexing_and_lookup(self):
        collection = EntityCollection(
            [make_profile("a", x="1"), make_profile("b", x="2")], name="test"
        )
        assert len(collection) == 2
        assert collection.index_of("b") == 1
        assert collection.by_id("a").attribute("x") == "1"
        assert collection[0].entity_id == "a"
        assert "a" in collection and "zzz" not in collection

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate entity_id"):
            EntityCollection([make_profile("a"), make_profile("a")])

    def test_attribute_names_union(self):
        collection = EntityCollection(
            [make_profile("a", x="1"), make_profile("b", y="2")]
        )
        assert collection.attribute_names() == ["x", "y"]

    def test_ids_in_order(self):
        collection = EntityCollection([make_profile("b"), make_profile("a")])
        assert collection.ids() == ["b", "a"]

    def test_collection_from_dicts_with_id_field(self):
        collection = collection_from_dicts(
            [{"id": "r1", "name": "x"}, {"id": "r2", "name": "y"}], id_field="id"
        )
        assert collection.ids() == ["r1", "r2"]
        assert "id" not in collection.by_id("r1").attributes

    def test_collection_from_dicts_sequential_ids(self):
        collection = collection_from_dicts([{"name": "x"}, {"name": "y"}])
        assert collection.ids() == ["0", "1"]

    def test_collection_from_dicts_missing_id_raises(self):
        with pytest.raises(KeyError):
            collection_from_dicts([{"name": "x"}], id_field="id")


class TestEntityIndexSpace:
    def test_clean_clean_node_mapping(self):
        space = EntityIndexSpace(3, 2)
        assert space.total == 5
        assert space.is_clean_clean
        assert space.node_of_first(2) == 2
        assert space.node_of_second(0) == 3
        assert space.side_of(4) == (1, 1)
        assert space.side_of(1) == (0, 1)

    def test_dirty_space(self):
        space = EntityIndexSpace(4)
        assert not space.is_clean_clean
        assert space.total == 4
        with pytest.raises(ValueError):
            space.node_of_second(0)

    def test_out_of_range(self):
        space = EntityIndexSpace(2, 2)
        with pytest.raises(IndexError):
            space.node_of_first(2)
        with pytest.raises(IndexError):
            space.node_of_second(5)
        with pytest.raises(IndexError):
            space.side_of(10)
