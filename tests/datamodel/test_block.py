"""Tests for blocks and block collections."""

import pytest

from repro.datamodel import (
    Block,
    BlockCollection,
    EntityIndexSpace,
    build_bilateral_blocks,
    build_unilateral_blocks,
)


class TestBlock:
    def test_bilateral_cardinality_and_pairs(self):
        block = Block("key", [0, 1], [5, 6, 7])
        assert block.is_bilateral
        assert block.size() == 5
        assert block.cardinality() == 6
        assert set(block.pairs()) == {
            (0, 5), (0, 6), (0, 7), (1, 5), (1, 6), (1, 7),
        }

    def test_unilateral_cardinality_and_pairs(self):
        block = Block("key", [2, 0, 1])
        assert not block.is_bilateral
        assert block.cardinality() == 3
        assert set(block.pairs()) == {(0, 2), (0, 1), (1, 2)}

    def test_singleton_block_spawns_no_pair(self):
        block = Block("key", [3])
        assert block.cardinality() == 0
        assert list(block.pairs()) == []

    def test_all_entities(self):
        block = Block("key", [0, 1], [4])
        assert block.all_entities() == [0, 1, 4]


class TestBlockCollection:
    def test_aggregates(self, small_blocks):
        assert len(small_blocks) == 4
        assert small_blocks.total_comparisons() == sum(
            b.cardinality() for b in small_blocks
        )
        assert small_blocks.total_block_assignments() == sum(
            b.size() for b in small_blocks
        )

    def test_entity_block_index(self, small_blocks):
        index = small_blocks.entity_block_index()
        assert index[0] == [0, 1]  # entity 0 is in blocks alpha and beta
        assert index[5] == [2, 3]

    def test_average_blocks_per_entity(self, small_blocks):
        average = small_blocks.average_blocks_per_entity()
        assert average == pytest.approx(
            small_blocks.total_block_assignments() / 6
        )

    def test_without_empty_blocks(self):
        space = EntityIndexSpace(3)
        blocks = BlockCollection(
            [Block("a", [0, 1]), Block("b", [2])], space
        )
        cleaned = blocks.without_empty_blocks()
        assert len(cleaned) == 1
        assert cleaned[0].key == "a"

    def test_block_sizes_and_cardinalities(self, small_blocks):
        assert small_blocks.block_sizes() == [3, 3, 4, 2]
        assert small_blocks.block_cardinalities() == [2, 2, 4, 1]


class TestBuilders:
    def test_build_bilateral_skips_single_source_keys(self):
        space = EntityIndexSpace(2, 2)
        blocks = build_bilateral_blocks(
            {"shared": [0], "only_first": [1]},
            {"shared": [2], "only_second": [3]},
            space,
        )
        assert len(blocks) == 1
        assert blocks[0].key == "shared"

    def test_build_unilateral_drops_singletons(self):
        space = EntityIndexSpace(4)
        blocks = build_unilateral_blocks(
            {"a": [0, 1, 1], "b": [2]}, space
        )
        assert len(blocks) == 1
        assert blocks[0].entities_first == [0, 1]  # deduplicated and sorted

    def test_builders_sorted_by_key(self):
        space = EntityIndexSpace(3, 3)
        blocks = build_bilateral_blocks(
            {"z": [0], "a": [1]}, {"z": [3], "a": [4]}, space
        )
        assert [b.key for b in blocks] == ["a", "z"]
