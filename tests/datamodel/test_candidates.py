"""Tests for candidate pairs and candidate sets."""

import numpy as np
import pytest

from repro.datamodel import CandidatePair, CandidateSet, EntityIndexSpace


class TestCandidatePair:
    def test_canonical_orders_nodes(self):
        assert CandidatePair(5, 2).canonical() == CandidatePair(2, 5)
        assert CandidatePair(2, 5).canonical() == CandidatePair(2, 5)

    def test_as_tuple(self):
        assert CandidatePair(1, 2).as_tuple() == (1, 2)


class TestCandidateSet:
    def test_from_pairs_deduplicates_and_canonicalises(self):
        space = EntityIndexSpace(3, 3)
        candidates = CandidateSet.from_pairs([(3, 0), (0, 3), (1, 4)], space)
        assert len(candidates) == 2
        assert candidates.as_tuples() == [(0, 3), (1, 4)]

    def test_from_pairs_rejects_self_pair(self):
        space = EntityIndexSpace(3)
        with pytest.raises(ValueError):
            CandidateSet.from_pairs([(1, 1)], space)

    def test_from_blocks_removes_redundant_comparisons(self, small_blocks):
        candidates = CandidateSet.from_blocks(small_blocks)
        tuples = candidates.as_tuples()
        assert len(tuples) == len(set(tuples))
        # pair (0, 3) appears in blocks alpha and beta but must be counted once
        assert tuples.count((0, 3)) == 1

    def test_contains_and_position_index(self, small_candidates):
        first_pair = small_candidates.pair_at(0)
        assert small_candidates.contains(first_pair.left, first_pair.right)
        assert small_candidates.contains(first_pair.right, first_pair.left)
        assert not small_candidates.contains(0, 2)  # same-side pair never generated

    def test_subset_by_mask(self, small_candidates):
        mask = np.zeros(len(small_candidates), dtype=bool)
        mask[0] = True
        subset = small_candidates.subset(mask)
        assert len(subset) == 1
        assert subset.pair_at(0) == small_candidates.pair_at(0)

    def test_node_degrees_sum_to_twice_pairs(self, small_candidates):
        degrees = small_candidates.node_degrees()
        assert degrees.sum() == 2 * len(small_candidates)

    def test_non_canonical_arrays_rejected(self):
        space = EntityIndexSpace(4)
        with pytest.raises(ValueError):
            CandidateSet(np.array([2]), np.array([1]), space)

    def test_mismatched_arrays_rejected(self):
        space = EntityIndexSpace(4)
        with pytest.raises(ValueError):
            CandidateSet(np.array([0, 1]), np.array([2]), space)

    def test_empty_set(self):
        space = EntityIndexSpace(4)
        candidates = CandidateSet.from_pairs([], space)
        assert len(candidates) == 0
        assert list(candidates) == []
        assert candidates.node_degrees().sum() == 0

    def test_iteration_yields_pairs(self, small_candidates):
        pairs = list(small_candidates)
        assert all(isinstance(pair, CandidatePair) for pair in pairs)
        assert len(pairs) == len(small_candidates)
