"""Shared fixtures for the test suite.

The fixtures build small, deterministic datasets and prepared block
collections that many test modules reuse; they are module-scoped (or
session-scoped) so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocking import prepare_blocks
from repro.core.feature_selection import PreparedDataset
from repro.datamodel import (
    Block,
    BlockCollection,
    CandidateSet,
    EntityCollection,
    EntityIndexSpace,
    GroundTruth,
    make_profile,
)
from repro.datasets import load_benchmark, load_dirty_dataset
from repro.weights import BlockStatistics


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "perf: wall-clock perf smoke test (skippable via REPRO_SKIP_PERF=1)"
    )
    config.addinivalue_line(
        "markers", "slow: slower integration test (spawns daemon subprocesses)"
    )
    config.addinivalue_line(
        "markers",
        "chaos: seeded fault-injection test (kill-loops, torn WAL tails); "
        "seed overridable via REPRO_CHAOS_SEED",
    )


# -- tiny hand-built fixture (the paper's running example, Figure 1) -----------------

@pytest.fixture(scope="session")
def paper_example_profiles():
    """The 7 smartphone profiles of the paper's Figure 1 (e1..e7)."""
    first = EntityCollection(
        [
            make_profile("e1", model="Apple iPhone X", category="Smartphone"),
            make_profile("e2", model="Samsung S20", group="smartphone"),
            make_profile("e5", name="Huawei Mate 20", type="smartphone"),
            make_profile("e6", name="Samsung Fold", descr="foldable phone"),
        ],
        name="shop-1",
    )
    second = EntityCollection(
        [
            make_profile("e3", name="iPhone 10", type="smartphone", producer="Apple"),
            make_profile("e4", type="Samsung 20", descr="smartphone"),
            make_profile(
                "e7",
                offer="Samsung foldable Your perfect mate phone, today 20 discount",
            ),
        ],
        name="shop-2",
    )
    truth = GroundTruth.from_id_pairs(
        [("e1", "e3"), ("e2", "e4"), ("e6", "e7")], first, second
    )
    return first, second, truth


@pytest.fixture(scope="session")
def small_blocks():
    """A small hand-built bilateral block collection with known statistics."""
    space = EntityIndexSpace(3, 3)  # nodes 0,1,2 (first) and 3,4,5 (second)
    blocks = BlockCollection(
        [
            Block("alpha", [0, 1], [3]),
            Block("beta", [0], [3, 4]),
            Block("gamma", [1, 2], [4, 5]),
            Block("delta", [2], [5]),
        ],
        space,
    )
    return blocks


@pytest.fixture(scope="session")
def small_candidates(small_blocks):
    """Distinct candidate pairs of the small block collection."""
    return CandidateSet.from_blocks(small_blocks)


@pytest.fixture(scope="session")
def small_stats(small_blocks):
    """Block statistics of the small block collection."""
    return BlockStatistics(small_blocks)


# -- generated benchmark fixtures -----------------------------------------------------

@pytest.fixture(scope="session")
def abtbuy_dataset():
    """The generated AbtBuy benchmark (noisy, low-recall profile)."""
    return load_benchmark("AbtBuy", seed=11)


@pytest.fixture(scope="session")
def dblpacm_dataset():
    """The generated DblpAcm benchmark (clean, high-recall profile)."""
    return load_benchmark("DblpAcm", seed=11)


@pytest.fixture(scope="session")
def prepared_dblpacm(dblpacm_dataset):
    """DblpAcm pushed through Token Blocking + Purging + Filtering."""
    prepared = prepare_blocks(dblpacm_dataset.first, dblpacm_dataset.second)
    return PreparedDataset(
        name="DblpAcm",
        blocks=prepared.blocks,
        candidates=prepared.candidates,
        ground_truth=dblpacm_dataset.ground_truth,
    )


@pytest.fixture(scope="session")
def prepared_abtbuy(abtbuy_dataset):
    """AbtBuy pushed through Token Blocking + Purging + Filtering."""
    prepared = prepare_blocks(abtbuy_dataset.first, abtbuy_dataset.second)
    return PreparedDataset(
        name="AbtBuy",
        blocks=prepared.blocks,
        candidates=prepared.candidates,
        ground_truth=abtbuy_dataset.ground_truth,
    )


@pytest.fixture(scope="session")
def prepared_dirty():
    """A small Dirty ER dataset pushed through the blocking pipeline."""
    dataset = load_dirty_dataset("D10K", seed=5, scale=0.03)
    prepared = prepare_blocks(dataset.collection, None)
    return PreparedDataset(
        name="D10K",
        blocks=prepared.blocks,
        candidates=prepared.candidates,
        ground_truth=dataset.ground_truth,
    )


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(123)
