"""Tests for feature-vector generation and training-set construction."""

import numpy as np
import pytest

from repro.core import FeatureVectorGenerator, build_training_set, generate_features
from repro.utils.timing import StageTimer
from repro.weights import BLAST_FEATURE_SET, ORIGINAL_FEATURE_SET, RCNP_FEATURE_SET


class TestFeatureVectorGenerator:
    def test_column_labels_expand_lcp(self):
        generator = FeatureVectorGenerator(ORIGINAL_FEATURE_SET)
        assert generator.columns == ("CF-IBF", "RACCB", "JS", "LCP(e_i)", "LCP(e_j)")

    def test_matrix_shape(self, small_candidates, small_stats):
        generator = FeatureVectorGenerator(BLAST_FEATURE_SET)
        matrix = generator.generate(small_candidates, small_stats)
        assert matrix.values.shape == (len(small_candidates), 4)
        assert matrix.n_pairs == len(small_candidates)
        assert matrix.n_features == 4
        assert matrix.feature_set == BLAST_FEATURE_SET

    def test_rcnp_feature_set_width(self, small_candidates, small_stats):
        matrix = FeatureVectorGenerator(RCNP_FEATURE_SET).generate(small_candidates, small_stats)
        assert matrix.n_features == 6  # LCP contributes two columns

    def test_scheme_timing_recorded(self, small_candidates, small_stats):
        timer = StageTimer()
        matrix = FeatureVectorGenerator(("JS", "LCP")).generate(
            small_candidates, small_stats, timer=timer
        )
        assert set(matrix.scheme_seconds) == {"JS", "LCP"}
        assert timer.get("features") > 0.0

    def test_column_index_and_select(self, small_candidates, small_stats):
        matrix = FeatureVectorGenerator(("JS", "RS")).generate(small_candidates, small_stats)
        assert matrix.column_index("RS") == 1
        selected = matrix.select(np.array([0, 1]))
        assert selected.shape == (2, 2)

    def test_column_index_unknown_label_raises_key_error(self, small_candidates, small_stats):
        matrix = FeatureVectorGenerator(("JS", "LCP")).generate(small_candidates, small_stats)
        with pytest.raises(KeyError) as excinfo:
            matrix.column_index("CF-IBF")
        message = str(excinfo.value)
        assert "CF-IBF" in message
        for column in ("'JS'", "'LCP(e_i)'", "'LCP(e_j)'"):
            assert column in message

    def test_backend_recorded_on_matrix(self, small_candidates, small_stats):
        loop = FeatureVectorGenerator(("JS",)).generate(small_candidates, small_stats)
        sparse = FeatureVectorGenerator(("JS",), backend="sparse").generate(
            small_candidates, small_stats
        )
        assert loop.backend == "loop"
        assert sparse.backend == "sparse"
        np.testing.assert_allclose(sparse.values, loop.values)

    def test_empty_feature_set_rejected(self):
        with pytest.raises(ValueError):
            FeatureVectorGenerator(())

    def test_generate_features_convenience(self, small_blocks, small_candidates):
        matrix = generate_features(small_candidates, small_blocks, feature_set=("JS",))
        assert matrix.values.shape == (len(small_candidates), 1)

    def test_values_are_finite(self, prepared_dblpacm):
        matrix = FeatureVectorGenerator(
            ("CF-IBF", "RACCB", "JS", "LCP", "EJS", "WJS", "RS", "NRS")
        ).generate(prepared_dblpacm.candidates, prepared_dblpacm.statistics())
        assert np.all(np.isfinite(matrix.values))


class TestTrainingSet:
    def test_balanced_policy(self, prepared_dblpacm):
        matrix = FeatureVectorGenerator(BLAST_FEATURE_SET).generate(
            prepared_dblpacm.candidates, prepared_dblpacm.statistics()
        )
        training = build_training_set(
            matrix,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
            size=50,
            seed=0,
        )
        assert len(training) == 50
        assert training.positives == 25
        assert training.negatives == 25
        assert training.features.shape == (50, 4)
        assert training.policy == "balanced"

    def test_proportional_policy(self, prepared_dblpacm):
        matrix = FeatureVectorGenerator(BLAST_FEATURE_SET).generate(
            prepared_dblpacm.candidates, prepared_dblpacm.statistics()
        )
        training = build_training_set(
            matrix,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
            policy="proportional",
            positive_fraction=0.05,
            seed=0,
        )
        assert training.positives == training.negatives
        assert training.positives >= 5

    def test_labels_match_ground_truth(self, prepared_dblpacm):
        matrix = FeatureVectorGenerator(("JS",)).generate(
            prepared_dblpacm.candidates, prepared_dblpacm.statistics()
        )
        training = build_training_set(
            matrix, prepared_dblpacm.candidates, prepared_dblpacm.ground_truth, size=20, seed=3
        )
        all_labels = prepared_dblpacm.ground_truth.labels_for(prepared_dblpacm.candidates)
        assert np.array_equal(training.labels.astype(bool), all_labels[training.candidate_indices])

    def test_unknown_policy_rejected(self, prepared_dblpacm):
        matrix = FeatureVectorGenerator(("JS",)).generate(
            prepared_dblpacm.candidates, prepared_dblpacm.statistics()
        )
        with pytest.raises(ValueError):
            build_training_set(
                matrix,
                prepared_dblpacm.candidates,
                prepared_dblpacm.ground_truth,
                policy="bogus",
            )

    def test_mismatched_matrix_rejected(self, prepared_dblpacm, small_candidates, small_stats):
        matrix = FeatureVectorGenerator(("JS",)).generate(small_candidates, small_stats)
        with pytest.raises(ValueError):
            build_training_set(
                matrix, prepared_dblpacm.candidates, prepared_dblpacm.ground_truth
            )
