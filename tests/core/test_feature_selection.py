"""Tests for the exhaustive feature-set selection machinery."""

import pytest

from repro.core import (
    FeatureSelectionStudy,
    FeatureSetCandidate,
    PreparedDataset,
    enumerate_feature_sets,
    evaluate_feature_set,
)


class TestEnumeration:
    def test_enumerates_all_255_sets(self):
        sets = enumerate_feature_sets()
        assert len(sets) == 255
        assert sets[0].set_id == 1
        assert sets[-1].set_id == 255
        assert len(sets[-1].features) == 8

    def test_ids_are_stable_and_unique(self):
        first = enumerate_feature_sets()
        second = enumerate_feature_sets()
        assert [c.features for c in first] == [c.features for c in second]
        assert len({c.set_id for c in first}) == 255

    def test_label_format(self):
        candidate = FeatureSetCandidate(set_id=1, features=("CF-IBF", "JS"))
        assert candidate.label() == "{CF-IBF, JS}"

    def test_custom_pool(self):
        sets = enumerate_feature_sets(("JS", "RS"))
        assert len(sets) == 3


class TestEvaluation:
    def test_evaluate_feature_set_returns_report_and_runtime(self, prepared_dblpacm):
        report, runtime = evaluate_feature_set(
            ("CF-IBF", "JS"),
            prepared_dblpacm,
            pruning="BLAST",
            training_size=50,
            repetitions=1,
            seed=0,
        )
        assert 0.0 <= report.recall <= 1.0
        assert 0.0 <= report.precision <= 1.0
        assert runtime > 0.0

    def test_invalid_repetitions(self, prepared_dblpacm):
        with pytest.raises(ValueError):
            evaluate_feature_set(
                ("JS",), prepared_dblpacm, pruning="BLAST", repetitions=0
            )


class TestStudy:
    def test_study_ranks_by_f1_then_runtime(self, prepared_dblpacm, prepared_abtbuy):
        study = FeatureSelectionStudy(
            datasets=[prepared_dblpacm, prepared_abtbuy],
            pruning="BLAST",
            training_size=50,
            repetitions=1,
            seed=0,
        )
        candidates = [
            FeatureSetCandidate(1, ("CF-IBF", "RACCB", "RS", "NRS")),
            FeatureSetCandidate(2, ("JS",)),
            FeatureSetCandidate(3, ("CF-IBF", "RACCB", "JS", "LCP")),
        ]
        top = study.run(candidates, top_k=2)
        assert len(top) == 2
        assert top[0].f1 >= top[1].f1
        # every score carries its candidate metadata
        assert all(score.candidate.set_id in {1, 2, 3} for score in top)

    def test_study_requires_datasets(self):
        with pytest.raises(ValueError):
            FeatureSelectionStudy(datasets=[], pruning="BLAST")

    def test_prepared_dataset_caches_statistics(self, prepared_dblpacm):
        first = prepared_dblpacm.statistics()
        second = prepared_dblpacm.statistics()
        assert first is second

    def test_score_row_format(self, prepared_dblpacm):
        study = FeatureSelectionStudy(
            datasets=[prepared_dblpacm], pruning="RCNP", training_size=50, repetitions=1
        )
        score = study.score_feature_set(FeatureSetCandidate(9, ("CF-IBF", "JS", "LCP")))
        row = score.as_row()
        assert row["id"] == 9
        assert "CF-IBF" in row["feature_set"]
        assert set(row) == {"id", "feature_set", "recall", "precision", "f1", "runtime_seconds"}
