"""Tests for the BLOSS-style active sampler."""

import numpy as np
import pytest

from repro.core import FeatureVectorGenerator, GeneralizedSupervisedMetaBlocking
from repro.core.active_learning import ActiveSample, BlossSampler
from repro.evaluation import evaluate_result
from repro.ml import LogisticRegression, StandardScaler
from repro.weights import BLAST_FEATURE_SET


@pytest.fixture(scope="module")
def abtbuy_features(prepared_abtbuy):
    generator = FeatureVectorGenerator(BLAST_FEATURE_SET)
    return generator.generate(prepared_abtbuy.candidates, prepared_abtbuy.statistics())


class TestBlossSampler:
    def test_selects_requested_budget(self, prepared_abtbuy, abtbuy_features):
        sampler = BlossSampler(levels=10, per_level=5, seed=0)
        sample = sampler.select(
            prepared_abtbuy.candidates,
            prepared_abtbuy.statistics(),
            abtbuy_features,
            prepared_abtbuy.ground_truth,
        )
        assert isinstance(sample, ActiveSample)
        assert 10 <= len(sample) <= 10 * 5
        assert len(set(sample.indices.tolist())) == len(sample)
        assert sample.positives + sample.negatives == len(sample)

    def test_labels_match_ground_truth(self, prepared_abtbuy, abtbuy_features):
        sample = BlossSampler(levels=5, per_level=4, outlier_fraction=0.0, seed=1).select(
            prepared_abtbuy.candidates,
            prepared_abtbuy.statistics(),
            abtbuy_features,
            prepared_abtbuy.ground_truth,
        )
        truth_labels = prepared_abtbuy.ground_truth.labels_for(prepared_abtbuy.candidates)
        assert np.array_equal(sample.labels.astype(bool), truth_labels[sample.indices])

    def test_covers_multiple_similarity_levels(self, prepared_abtbuy, abtbuy_features):
        sample = BlossSampler(levels=10, per_level=3, seed=0).select(
            prepared_abtbuy.candidates,
            prepared_abtbuy.statistics(),
            abtbuy_features,
            prepared_abtbuy.ground_truth,
        )
        assert len(set(sample.levels.tolist())) >= 3

    def test_outlier_cleaning_reduces_negatives(self, prepared_abtbuy, abtbuy_features):
        kwargs = dict(levels=8, per_level=6, seed=3)
        raw = BlossSampler(outlier_fraction=0.0, **kwargs).select(
            prepared_abtbuy.candidates,
            prepared_abtbuy.statistics(),
            abtbuy_features,
            prepared_abtbuy.ground_truth,
        )
        cleaned = BlossSampler(outlier_fraction=0.3, **kwargs).select(
            prepared_abtbuy.candidates,
            prepared_abtbuy.statistics(),
            abtbuy_features,
            prepared_abtbuy.ground_truth,
        )
        assert cleaned.negatives <= raw.negatives
        assert cleaned.positives == raw.positives

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BlossSampler(levels=0)
        with pytest.raises(ValueError):
            BlossSampler(per_level=0)
        with pytest.raises(ValueError):
            BlossSampler(outlier_fraction=1.0)

    def test_mismatched_features_rejected(self, prepared_abtbuy, prepared_dblpacm, abtbuy_features):
        sampler = BlossSampler()
        with pytest.raises(ValueError):
            sampler.select(
                prepared_dblpacm.candidates,
                prepared_dblpacm.statistics(),
                abtbuy_features,
                prepared_dblpacm.ground_truth,
            )

    def test_actively_sampled_training_is_usable(self, prepared_abtbuy, abtbuy_features):
        """An end-to-end check: train on the BLOSS sample, prune with BLAST."""
        sample = BlossSampler(levels=10, per_level=5, seed=0).select(
            prepared_abtbuy.candidates,
            prepared_abtbuy.statistics(),
            abtbuy_features,
            prepared_abtbuy.ground_truth,
        )
        if sample.positives == 0 or sample.negatives == 0:
            pytest.skip("active sample degenerate on this seed")

        scaler = StandardScaler().fit(abtbuy_features.values[sample.indices])
        classifier = LogisticRegression().fit(
            scaler.transform(abtbuy_features.values[sample.indices]), sample.labels
        )
        probabilities = classifier.predict_proba(scaler.transform(abtbuy_features.values))

        from repro.core import SupervisedBLAST
        from repro.evaluation import evaluate_retained_mask

        mask = SupervisedBLAST().prune(probabilities, prepared_abtbuy.candidates)
        report = evaluate_retained_mask(
            mask,
            prepared_abtbuy.ground_truth.labels_for(prepared_abtbuy.candidates),
            len(prepared_abtbuy.ground_truth),
        )
        assert report.recall > 0.5
        assert report.precision > 0.05
