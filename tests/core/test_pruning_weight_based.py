"""Tests for the weight-based supervised pruning algorithms.

The expected behaviour is hand-checked on a tiny star-shaped candidate set
whose probabilities are chosen to discriminate the algorithms: the validity
threshold, the global average (WEP), the per-node averages (WNP/RWNP) and the
per-node maxima (BLAST).
"""

import numpy as np
import pytest

from repro.core import (
    BinaryClassifierPruning,
    SupervisedBLAST,
    SupervisedRWNP,
    SupervisedWEP,
    SupervisedWNP,
    VALIDITY_THRESHOLD,
    get_pruning_algorithm,
)
from repro.datamodel import CandidateSet, EntityIndexSpace


@pytest.fixture
def star_candidates():
    """Pairs (0,3), (0,4), (1,3), (2,4) over a 3+2 Clean-Clean space."""
    space = EntityIndexSpace(3, 2)
    return CandidateSet.from_pairs([(0, 3), (0, 4), (1, 3), (2, 4)], space)


@pytest.fixture
def star_probabilities():
    """Probabilities aligned with the sorted candidate order of the fixture.

    sorted pairs: (0,3)=0.9, (0,4)=0.6, (1,3)=0.7, (2,4)=0.3
    """
    return np.array([0.9, 0.6, 0.7, 0.3])


class TestBinaryClassifier:
    def test_keeps_only_valid_pairs(self, star_candidates, star_probabilities):
        mask = BinaryClassifierPruning().prune(star_probabilities, star_candidates)
        assert mask.tolist() == [True, True, True, False]

    def test_threshold_is_half(self):
        assert VALIDITY_THRESHOLD == 0.5


class TestWEP:
    def test_global_average_threshold(self, star_candidates, star_probabilities):
        # valid probabilities: 0.9, 0.6, 0.7 -> mean 0.7333; only 0.9 survives
        mask = SupervisedWEP().prune(star_probabilities, star_candidates)
        assert mask.tolist() == [True, False, False, False]

    def test_no_valid_pairs(self, star_candidates):
        mask = SupervisedWEP().prune(np.full(4, 0.1), star_candidates)
        assert not mask.any()

    def test_all_equal_probabilities_retained(self, star_candidates):
        mask = SupervisedWEP().prune(np.full(4, 0.8), star_candidates)
        assert mask.all()


class TestWNP:
    def test_per_node_average_or_semantics(self, star_candidates, star_probabilities):
        # node averages (valid only): n0=(0.9+0.6)/2=0.75, n1=0.7, n2=inf (no valid),
        # n3=(0.9+0.7)/2=0.8, n4=0.6
        # (0,3): 0.9 >= 0.75 or >= 0.8 -> kept
        # (0,4): 0.6 <  0.75 but >= 0.6 -> kept (via node 4)
        # (1,3): 0.7 >= 0.7 -> kept
        # (2,4): invalid -> dropped
        mask = SupervisedWNP().prune(star_probabilities, star_candidates)
        assert mask.tolist() == [True, True, True, False]

    def test_deeper_pruning_than_bcl_possible(self, star_candidates):
        probabilities = np.array([0.95, 0.55, 0.6, 0.52])
        bcl = BinaryClassifierPruning().prune(probabilities, star_candidates)
        wnp = SupervisedWNP().prune(probabilities, star_candidates)
        assert wnp.sum() <= bcl.sum()


class TestRWNP:
    def test_and_semantics(self, star_candidates, star_probabilities):
        # (0,4): 0.6 < 0.75 (node 0 average) -> dropped under AND semantics
        # (1,3): 0.7 < 0.8 (node 3 average = (0.9 + 0.7)/2) -> also dropped
        mask = SupervisedRWNP().prune(star_probabilities, star_candidates)
        assert mask.tolist() == [True, False, False, False]

    def test_subset_of_wnp(self, prepared_abtbuy):
        rng = np.random.default_rng(0)
        probabilities = rng.uniform(0, 1, len(prepared_abtbuy.candidates))
        wnp = SupervisedWNP().prune(probabilities, prepared_abtbuy.candidates)
        rwnp = SupervisedRWNP().prune(probabilities, prepared_abtbuy.candidates)
        assert np.all(~rwnp | wnp)  # rwnp implies wnp
        assert rwnp.sum() <= wnp.sum()


class TestBLAST:
    def test_ratio_threshold(self, star_candidates, star_probabilities):
        # maxima: n0=0.9, n1=0.7, n2=0 (no valid), n3=0.9, n4=0.6
        # r=0.35: (0,3): 0.35*1.8=0.63 <= 0.9 keep; (0,4): 0.35*1.5=0.525 <= 0.6 keep
        # (1,3): 0.35*1.6=0.56 <= 0.7 keep; (2,4) invalid
        mask = SupervisedBLAST(ratio=0.35).prune(star_probabilities, star_candidates)
        assert mask.tolist() == [True, True, True, False]

    def test_higher_ratio_prunes_more(self, star_candidates, star_probabilities):
        lenient = SupervisedBLAST(ratio=0.35).prune(star_probabilities, star_candidates)
        strict = SupervisedBLAST(ratio=0.6).prune(star_probabilities, star_candidates)
        assert strict.sum() <= lenient.sum()

    def test_ratio_half_requires_joint_maximum(self, star_candidates, star_probabilities):
        # r = 0.5: a pair must reach half the sum of both maxima
        mask = SupervisedBLAST(ratio=0.5).prune(star_probabilities, star_candidates)
        assert mask[0]  # (0,3) with 0.9 >= 0.5*1.8
        assert not mask[1]  # (0,4): 0.6 < 0.5*1.5

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            SupervisedBLAST(ratio=0.0)
        with pytest.raises(ValueError):
            SupervisedBLAST(ratio=1.5)


class TestValidation:
    def test_probability_bounds_checked(self, star_candidates):
        with pytest.raises(ValueError):
            SupervisedWEP().prune(np.array([0.5, 0.5, 0.5, 1.5]), star_candidates)

    def test_length_mismatch_checked(self, star_candidates):
        with pytest.raises(ValueError):
            SupervisedWEP().prune(np.array([0.5]), star_candidates)

    def test_registry_lookup(self):
        for name in ("BCl", "WEP", "WNP", "RWNP", "BLAST"):
            assert get_pruning_algorithm(name).name == name
        with pytest.raises(KeyError):
            get_pruning_algorithm("NOPE")
