"""Tests for the end-to-end Generalized Supervised Meta-blocking pipeline."""

import numpy as np
import pytest

from repro.core import GeneralizedSupervisedMetaBlocking
from repro.evaluation import evaluate_candidates, evaluate_result
from repro.ml import GaussianNB, LinearSVC, LogisticRegression
from repro.weights import BLAST_FEATURE_SET, ORIGINAL_FEATURE_SET


class TestPipelineBasics:
    def test_result_structure(self, prepared_dblpacm):
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        result = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
        )
        n = len(prepared_dblpacm.candidates)
        assert result.retained_mask.shape == (n,)
        assert result.probabilities.shape == (n,)
        assert result.labels.shape == (n,)
        assert np.all((result.probabilities >= 0) & (result.probabilities <= 1))
        assert result.retained_count == result.retained_mask.sum() == len(result.retained)
        assert result.runtime_seconds > 0
        assert result.feature_matrix is None  # not kept by default

    def test_keep_features_flag(self, prepared_dblpacm):
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        result = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
            keep_features=True,
        )
        assert result.feature_matrix is not None
        assert result.feature_matrix.n_pairs == len(prepared_dblpacm.candidates)

    def test_same_seed_reproducible(self, prepared_dblpacm):
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        first = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
            seed=7,
        )
        second = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
            seed=7,
        )
        assert np.array_equal(first.retained_mask, second.retained_mask)
        assert np.allclose(first.probabilities, second.probabilities)

    def test_different_seeds_change_training_sample(self, prepared_dblpacm):
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        first = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
            seed=1,
        )
        second = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
            seed=2,
        )
        assert not np.array_equal(
            first.training_set.candidate_indices, second.training_set.candidate_indices
        )

    def test_precomputed_feature_matrix_must_align(self, prepared_dblpacm, small_candidates, small_stats):
        from repro.core import FeatureVectorGenerator

        wrong_matrix = FeatureVectorGenerator(BLAST_FEATURE_SET).generate(
            small_candidates, small_stats
        )
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50)
        with pytest.raises(ValueError):
            pipeline.run(
                prepared_dblpacm.blocks,
                prepared_dblpacm.candidates,
                prepared_dblpacm.ground_truth,
                feature_matrix=wrong_matrix,
            )

    def test_string_and_instance_pruning_accepted(self):
        from repro.core import SupervisedBLAST

        by_name = GeneralizedSupervisedMetaBlocking(pruning="BLAST")
        by_instance = GeneralizedSupervisedMetaBlocking(pruning=SupervisedBLAST(ratio=0.4))
        assert by_name.pruning.name == "BLAST"
        assert by_instance.pruning.ratio == 0.4

    def test_run_on_collections_wrapper(self, dblpacm_dataset):
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        result = pipeline.run_on_collections(
            dblpacm_dataset.first, dblpacm_dataset.second, dblpacm_dataset.ground_truth
        )
        report = evaluate_result(result, dblpacm_dataset.ground_truth)
        assert report.recall > 0.9

    def test_timer_stages_present(self, prepared_dblpacm):
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        result = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
        )
        for stage in ("features", "training", "scoring", "pruning"):
            assert stage in result.timer.stages


class TestPipelineEffectiveness:
    def test_precision_improves_over_input_blocks(self, prepared_dblpacm):
        """The core promise of Meta-blocking: Pr(B') >> Pr(B) with Re(B') ~ Re(B)."""
        input_report = evaluate_candidates(
            prepared_dblpacm.candidates, prepared_dblpacm.ground_truth
        )
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        result = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
        )
        output_report = evaluate_result(result, prepared_dblpacm.ground_truth)
        assert output_report.precision > 10 * input_report.precision
        assert output_report.recall > 0.9 * input_report.recall

    @pytest.mark.parametrize("factory", [LogisticRegression, lambda: LinearSVC(random_state=0), GaussianNB])
    def test_classifier_robustness(self, prepared_dblpacm, factory):
        """The paper's claim: the approach is robust to the classifier choice."""
        pipeline = GeneralizedSupervisedMetaBlocking(
            training_size=50, seed=0, classifier_factory=factory
        )
        result = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
        )
        report = evaluate_result(result, prepared_dblpacm.ground_truth)
        assert report.recall > 0.8
        assert report.f1 > 0.3

    def test_original_feature_set_also_works(self, prepared_abtbuy):
        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=ORIGINAL_FEATURE_SET, pruning="WNP", training_size=50, seed=0
        )
        result = pipeline.run(
            prepared_abtbuy.blocks,
            prepared_abtbuy.candidates,
            prepared_abtbuy.ground_truth,
        )
        report = evaluate_result(result, prepared_abtbuy.ground_truth)
        assert report.recall > 0.6
        assert report.precision > 0.05

    def test_dirty_er_pipeline(self, prepared_dirty):
        pipeline = GeneralizedSupervisedMetaBlocking(training_size=50, seed=0)
        result = pipeline.run(
            prepared_dirty.blocks, prepared_dirty.candidates, prepared_dirty.ground_truth
        )
        report = evaluate_result(result, prepared_dirty.ground_truth)
        assert report.recall > 0.7
        assert report.precision > 0.1
