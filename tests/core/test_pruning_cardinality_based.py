"""Tests for the cardinality-based supervised pruning algorithms."""

import numpy as np
import pytest

from repro.core import (
    SupervisedCEP,
    SupervisedCNP,
    SupervisedRCNP,
    cep_budget,
    cnp_budget,
)
from repro.datamodel import Block, BlockCollection, CandidateSet, EntityIndexSpace


@pytest.fixture
def dense_candidates():
    """All 6 cross pairs of a 2x3 Clean-Clean space."""
    space = EntityIndexSpace(2, 3)
    pairs = [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]
    return CandidateSet.from_pairs(pairs, space)


@pytest.fixture
def dense_blocks():
    space = EntityIndexSpace(2, 3)
    return BlockCollection(
        [Block("a", [0, 1], [2, 3]), Block("b", [0], [4]), Block("c", [1], [2, 3, 4])],
        space,
    )


class TestBudgets:
    def test_cep_budget_half_block_assignments(self, dense_blocks):
        # block sizes 4 + 2 + 4 = 10 -> K = 5
        assert cep_budget(dense_blocks) == 5

    def test_cnp_budget_average_blocks_per_entity(self, dense_blocks):
        # 10 assignments over 5 entities -> k = 2
        assert cnp_budget(dense_blocks) == 2

    def test_budgets_at_least_one(self):
        space = EntityIndexSpace(2)
        empty = BlockCollection([], space)
        assert cep_budget(empty) == 1
        assert cnp_budget(empty) == 1


class TestCEP:
    def test_keeps_global_top_k(self, dense_candidates):
        probabilities = np.array([0.9, 0.8, 0.7, 0.6, 0.55, 0.3])
        mask = SupervisedCEP(budget=2).prune(probabilities, dense_candidates)
        assert mask.sum() == 2
        assert mask[np.argsort(probabilities)[-1]]
        assert mask[np.argsort(probabilities)[-2]]

    def test_discards_invalid_even_within_budget(self, dense_candidates):
        probabilities = np.array([0.9, 0.4, 0.3, 0.2, 0.1, 0.05])
        mask = SupervisedCEP(budget=4).prune(probabilities, dense_candidates)
        assert mask.sum() == 1  # only one valid pair exists

    def test_budget_derived_from_blocks(self, dense_candidates, dense_blocks):
        probabilities = np.full(6, 0.9)
        mask = SupervisedCEP().prune(probabilities, dense_candidates, dense_blocks)
        assert mask.sum() == cep_budget(dense_blocks)

    def test_missing_blocks_raises(self, dense_candidates):
        with pytest.raises(ValueError):
            SupervisedCEP().prune(np.full(6, 0.9), dense_candidates)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            SupervisedCEP(budget=0)


class TestCNP:
    def test_per_entity_top_k_or_semantics(self, dense_candidates):
        # probabilities ordered by pair (0,2),(0,3),(0,4),(1,2),(1,3),(1,4)
        probabilities = np.array([0.95, 0.9, 0.85, 0.6, 0.55, 0.8])
        mask = SupervisedCNP(budget=1).prune(probabilities, dense_candidates)
        # entity 0 keeps (0,2); entity 1 keeps (1,4); entities 2,3,4 keep their best:
        # node 2 best = (0,2); node 3 best = (0,3); node 4 best = (0,4)
        expected = {(0, 2), (0, 3), (0, 4), (1, 4)}
        retained = {dense_candidates.pair_at(k).as_tuple() for k in np.flatnonzero(mask)}
        assert retained == expected

    def test_rcnp_and_semantics_prunes_deeper(self, dense_candidates):
        probabilities = np.array([0.95, 0.9, 0.85, 0.6, 0.55, 0.8])
        cnp = SupervisedCNP(budget=1).prune(probabilities, dense_candidates)
        rcnp = SupervisedRCNP(budget=1).prune(probabilities, dense_candidates)
        assert np.all(~rcnp | cnp)  # RCNP retains a subset of CNP
        retained = {dense_candidates.pair_at(k).as_tuple() for k in np.flatnonzero(rcnp)}
        # only (0,2) is the top pair of both of its entities
        assert retained == {(0, 2)}

    def test_invalid_pairs_never_retained(self, dense_candidates):
        probabilities = np.array([0.95, 0.45, 0.85, 0.3, 0.55, 0.2])
        mask = SupervisedCNP(budget=3).prune(probabilities, dense_candidates)
        assert not mask[1] and not mask[3] and not mask[5]

    def test_budget_from_blocks(self, dense_candidates, dense_blocks):
        probabilities = np.full(6, 0.9)
        mask = SupervisedCNP().prune(probabilities, dense_candidates, dense_blocks)
        assert mask.sum() >= 1

    def test_missing_blocks_raises(self, dense_candidates):
        with pytest.raises(ValueError):
            SupervisedCNP().prune(np.full(6, 0.9), dense_candidates)

    def test_large_budget_keeps_all_valid(self, dense_candidates):
        probabilities = np.array([0.9, 0.8, 0.7, 0.6, 0.55, 0.3])
        mask = SupervisedCNP(budget=10).prune(probabilities, dense_candidates)
        assert mask.sum() == 5  # every valid pair retained


class TestRelativeBehaviourOnRealisticData:
    def test_rcnp_precision_at_least_cnp(self, prepared_abtbuy):
        """RCNP's deeper pruning must not lower precision vs CNP on real-ish data."""
        from repro.core import GeneralizedSupervisedMetaBlocking
        from repro.evaluation import evaluate_result
        from repro.weights import RCNP_FEATURE_SET

        reports = {}
        for pruning in ("CNP", "RCNP"):
            pipeline = GeneralizedSupervisedMetaBlocking(
                feature_set=RCNP_FEATURE_SET, pruning=pruning, training_size=50, seed=3
            )
            result = pipeline.run(
                prepared_abtbuy.blocks,
                prepared_abtbuy.candidates,
                prepared_abtbuy.ground_truth,
                stats=prepared_abtbuy.statistics(),
            )
            reports[pruning] = evaluate_result(result, prepared_abtbuy.ground_truth)
        assert reports["RCNP"].precision >= reports["CNP"].precision


class TestDeterministicTieBreaking:
    """Ties at the retention boundary resolve by packed candidate key, so
    the retained *pair set* is invariant to candidate storage order."""

    def _tied(self):
        space = EntityIndexSpace(2, 3)
        pairs = [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]
        probabilities = np.array([0.7, 0.7, 0.7, 0.7, 0.7, 0.9])
        return space, pairs, probabilities

    @pytest.mark.parametrize(
        "algorithm", [SupervisedCEP(budget=3), SupervisedCNP(budget=1), SupervisedRCNP(budget=1)]
    )
    def test_retained_pairs_invariant_to_storage_order(self, algorithm):
        space, pairs, probabilities = self._tied()
        baseline = None
        for order in ([0, 1, 2, 3, 4, 5], [5, 3, 1, 4, 2, 0], [2, 0, 5, 1, 4, 3]):
            shuffled_pairs = [pairs[k] for k in order]
            candidates = CandidateSet(
                np.array([p[0] for p in shuffled_pairs]),
                np.array([p[1] for p in shuffled_pairs]),
                space,
            )
            mask = algorithm.prune(probabilities[order], candidates)
            retained = {
                (int(i), int(j))
                for i, j in zip(candidates.left[mask], candidates.right[mask])
            }
            if baseline is None:
                baseline = retained
            else:
                assert retained == baseline

    def test_cep_ties_prefer_smaller_packed_keys(self):
        space, pairs, probabilities = self._tied()
        candidates = CandidateSet.from_pairs(pairs, space)
        mask = SupervisedCEP(budget=3).prune(probabilities, candidates)
        retained = set(zip(candidates.left[mask].tolist(), candidates.right[mask].tolist()))
        # (1, 4) wins outright at 0.9; the two remaining slots go to the
        # tied pairs with the smallest packed keys: (0, 2) and (0, 3)
        assert retained == {(1, 4), (0, 2), (0, 3)}
