"""Tests for the experiment modules (fast configurations).

Each experiment module is exercised end-to-end on small generated datasets;
these tests check the structure of the outputs and the qualitative claims the
paper makes (who wins, in which direction measures move), not absolute values.
"""

import pytest

import repro.experiments as ex


@pytest.fixture(scope="module")
def fast_config():
    return ex.ExperimentConfig.fast(dataset_names=("AbtBuy", "DblpAcm"), repetitions=1)


@pytest.fixture(scope="module")
def tiny_config():
    return ex.ExperimentConfig.fast(dataset_names=("AbtBuy",), repetitions=1)


class TestBlockQuality:
    def test_rows_cover_requested_datasets(self):
        rows = ex.run_block_quality(("AbtBuy", "DblpAcm"), seed=0)
        assert [row.dataset for row in rows] == ["AbtBuy", "DblpAcm"]
        for row in rows:
            assert row.candidates > 0
            assert 0.0 <= row.recall <= 1.0
            assert row.precision < 0.1  # blocking alone has very low precision

    def test_formatting(self):
        rows = ex.run_block_quality(("AbtBuy",), seed=0)
        text = ex.format_block_quality(rows)
        assert "AbtBuy" in text and "|C|" in text

    def test_paper_reference_has_all_datasets(self):
        reference = ex.paper_table2_reference()
        assert len(reference) == 9
        assert reference["AbtBuy"]["recall"] == pytest.approx(0.948)


class TestPruningSelection:
    def test_figure5_weight_based(self, fast_config):
        result = ex.run_figure5(fast_config)
        series = result.series()
        assert set(series) == {"BCl", "WEP", "WNP", "RWNP", "BLAST"}
        # the paper's qualitative claim: the new weight-based algorithms trade a
        # little recall for clearly higher precision than the BCl baseline
        assert series["RWNP"]["precision"] >= series["BCl"]["precision"]
        assert series["WEP"]["precision"] >= series["BCl"]["precision"]
        text = ex.format_pruning_selection(result, "Figure 5")
        assert "BLAST" in text

    def test_figure6_cardinality_based(self, fast_config):
        result = ex.run_figure6(fast_config)
        series = result.series()
        assert set(series) == {"CEP", "CNP", "RCNP"}
        # RCNP is the paper's winner on precision among cardinality algorithms
        assert series["RCNP"]["precision"] >= series["CNP"]["precision"] - 0.02


class TestFeatureSelection:
    def test_table3_structure(self, tiny_config):
        result = ex.run_table3(tiny_config, max_set_size=1, top_k=3)
        assert result.algorithm == "BLAST"
        assert 1 <= len(result.top_sets) <= 3
        rows = result.rows()
        assert all("feature_set" in row for row in rows)
        text = ex.format_feature_selection(result)
        assert "BLAST" in text

    def test_references(self):
        assert ex.paper_table3_reference()["f1"] == pytest.approx(0.2892)
        assert ex.paper_table4_reference()["f1"] == pytest.approx(0.353)


class TestFeatureRuntime:
    def test_runtime_rows(self, tiny_config):
        rows = ex.run_feature_runtime(
            [("CF-IBF", "RS"), ("CF-IBF", "LCP")],
            tiny_config,
            dataset_names=("AbtBuy",),
        )
        assert len(rows) == 2
        assert all(row.total_seconds > 0 for row in rows)
        assert ex.lcp_free_sets_are_faster(rows) in (True, False)
        text = ex.format_feature_runtime(rows, "Figure 7")
        assert "AbtBuy" in text

    def test_top10_sets_declared(self):
        assert len(ex.BLAST_TOP10) == 10
        assert len(ex.RCNP_TOP10) == 10
        assert all("LCP" not in features for features in ex.BLAST_TOP10)
        assert all("LCP" in features for features in ex.RCNP_TOP10)


class TestAlgorithmComparison:
    def test_figure8(self, fast_config):
        result = ex.run_figure8(fast_config)
        series = result.series()
        assert set(series) == {"BCl", "BLAST", "CNP", "RCNP"}
        assert ex.format_figure8(result)

    def test_figure10(self, tiny_config):
        rows = ex.run_figure10(tiny_config, dataset_names=("AbtBuy",))
        assert {row["algorithm"] for row in rows} == {"BCl", "BLAST", "CNP", "RCNP"}
        assert ex.format_figure10(rows)


class TestTrainingSize:
    def test_sweep_structure(self, tiny_config):
        points = ex.run_figure11(tiny_config, sizes=(20, 50))
        assert [point.training_size for point in points] == [20, 50]
        assert all(point.algorithm == "BLAST" for point in points)
        assert ex.format_training_size(points, "Figure 11")
        assert ex.small_training_set_suffices(points, small=50, tolerance=0.5)

    def test_figure13_two_series(self, tiny_config):
        series = ex.run_figure13(tiny_config, sizes=(50,))
        assert set(series) == {"BCl", "BLAST"}

    def test_small_training_set_check_requires_size(self, tiny_config):
        points = ex.run_figure11(tiny_config, sizes=(20,))
        with pytest.raises(ValueError):
            ex.small_training_set_suffices(points, small=50)


class TestProbabilityDensity:
    def test_snapshots(self, tiny_config):
        snapshots = ex.run_probability_density(
            "AbtBuy", training_sizes=(50, 200), config=tiny_config
        )
        assert [snapshot.training_size for snapshot in snapshots] == [50, 200]
        for snapshot in snapshots:
            assert snapshot.matching_density.shape == snapshot.non_matching_density.shape
            assert 0.0 <= snapshot.average_threshold <= 1.0
        assert ex.probabilities_shift_upwards(snapshots) in (True, False)
        assert ex.format_probability_density(snapshots)


class TestFinalComparison:
    def test_table5(self, tiny_config):
        result = ex.run_table5(tiny_config)
        algorithms = {outcome.algorithm for outcome in result.outcomes}
        assert algorithms == {"BLAST", "BCl1", "BCl2"}
        assert ex.format_final_comparison(result)

    def test_table7(self, tiny_config):
        result = ex.run_table7(tiny_config)
        algorithms = {outcome.algorithm for outcome in result.outcomes}
        assert algorithms == {"RCNP", "CNP1", "CNP2"}
        grouped = result.by_algorithm()
        assert set(grouped) == algorithms

    def test_paper_references_complete(self):
        table5 = ex.paper_table5_reference()
        table7 = ex.paper_table7_reference()
        assert set(table5) == {"BLAST", "BCl1", "BCl2"}
        assert set(table7) == {"RCNP", "CNP1", "CNP2"}
        for per_dataset in list(table5.values()) + list(table7.values()):
            assert len(per_dataset) == 9


class TestCommonBlocks:
    def test_distribution_sums_to_one(self, tiny_config):
        distributions = ex.run_common_block_distribution(("AbtBuy", "DblpAcm"), tiny_config)
        for distribution in distributions:
            assert sum(distribution.portions.values()) == pytest.approx(1.0)
        assert ex.format_common_blocks(distributions, "Figures 15/16")

    def test_noisy_dataset_has_more_single_block_duplicates(self, tiny_config):
        distributions = {
            d.dataset: d
            for d in ex.run_common_block_distribution(("AbtBuy", "DblpAcm"), tiny_config)
        }
        noisy = distributions["AbtBuy"]
        clean = distributions["DblpAcm"]
        assert (
            noisy.single_block_portion + noisy.missed_portion
            > clean.single_block_portion + clean.missed_portion
        )


class TestScalability:
    def test_scalability_rows_and_speedups(self):
        config = ex.ExperimentConfig(repetitions=1, seed=0)
        result = ex.run_scalability(config, dataset_names=("D10K", "D50K"), scale=0.02)
        assert {row["dataset"] for row in result.rows()} == {"D10K", "D50K"}
        speedups = result.speedups()
        assert all(row["dataset"] == "D50K" for row in speedups)
        assert all(row["speedup"] > 0 for row in speedups)
        assert ex.format_scalability(result)
        assert ex.format_speedups(result)

    def test_table6_models(self):
        config = ex.ExperimentConfig(repetitions=1, seed=0)
        snapshots = ex.run_table6("D100K", iterations=2, config=config, scale=0.008)
        assert len(snapshots) == 2
        for snapshot in snapshots:
            assert set(snapshot.coefficients) == {"CF-IBF", "RACCB", "RS", "NRS"}
            assert snapshot.retained_pairs >= snapshot.detected_duplicates >= 0
        assert ex.format_table6(snapshots)
