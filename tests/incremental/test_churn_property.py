"""Churn property test: any dynamic interleaving converges to batch.

Hypothesis generates random *operation sequences* — single inserts, bulk
loads, removals and in-place updates — over small entity collections.  After
replaying the sequence through a :class:`MatchingSession`, the exact
finalisation must retain exactly the pairs the batch pipeline retains on the
final live collection (survivors in arrival order, updates re-appending),
for **every** pruning algorithm including the cardinality-based CEP/CNP/RCNP
whose probability ties are broken deterministically by packed candidate key.

A shadow model tracks the live entities per side; the batch side is built
from it after the replay.  Both sides share the deterministic frozen
classifier of ``test_session_property`` (rounded probabilities, so streaming
and batch score every pair bit-identically).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import prepare_blocks
from repro.datamodel import EntityCollection, make_profile
from repro.incremental import MatchingSession

from test_session_property import (
    PRUNING,
    _batch_retained_ids,
    _collection,
    _frozen_model,
    _profile_strategy,
)


def _operations(bilateral):
    sides = st.sampled_from((0, 1)) if bilateral else st.just(0)
    return st.lists(
        st.one_of(
            st.tuples(st.just("add"), sides, _profile_strategy()),
            st.tuples(
                st.just("bulk"),
                sides,
                st.lists(_profile_strategy(), min_size=1, max_size=3),
            ),
            st.tuples(st.just("remove"), sides, st.integers(0, 32)),
            st.tuples(
                st.just("update"), sides, st.integers(0, 32), _profile_strategy()
            ),
        ),
        min_size=1,
        max_size=14,
    )


class _Shadow:
    """The live collection a churn replay should end in, per side."""

    def __init__(self):
        self.live = ([], [])  # (entity_id, text) in arrival order, per side
        self._serial = 0

    def fresh_id(self, side):
        self._serial += 1
        return f"{'ab'[side]}{self._serial}"

    def victim(self, side, pick):
        entries = self.live[side]
        if not entries:
            return None
        return entries[pick % len(entries)]

    def add(self, side, entity_id, text):
        self.live[side].append((entity_id, text))

    def remove(self, side, entity_id):
        self.live[side][:] = [
            entry for entry in self.live[side] if entry[0] != entity_id
        ]


def _replay(session, shadow, operations):
    """Apply a generated operation sequence to both session and shadow."""
    for operation in operations:
        kind, side = operation[0], operation[1]
        if kind == "add":
            entity_id = shadow.fresh_id(side)
            session.insert(make_profile(entity_id, text=operation[2]), side=side)
            shadow.add(side, entity_id, operation[2])
        elif kind == "bulk":
            profiles = []
            for text in operation[2]:
                entity_id = shadow.fresh_id(side)
                profiles.append(make_profile(entity_id, text=text))
                shadow.add(side, entity_id, text)
            session.insert_bulk(profiles, side=side)
        elif kind == "remove":
            victim = shadow.victim(side, operation[2])
            if victim is None:
                continue
            session.remove(victim[0], side=side)
            shadow.remove(side, victim[0])
        else:  # update: retract + re-insert under the same id, new text
            victim = shadow.victim(side, operation[2])
            if victim is None:
                continue
            session.update(make_profile(victim[0], text=operation[3]), side=side)
            shadow.remove(side, victim[0])
            shadow.add(side, victim[0], operation[3])


def _final_collections(shadow, bilateral):
    first = EntityCollection(
        [make_profile(entity_id, text=text) for entity_id, text in shadow.live[0]],
        name="churn-first",
        is_clean=bilateral,
    )
    if not bilateral:
        return first, None
    second = EntityCollection(
        [make_profile(entity_id, text=text) for entity_id, text in shadow.live[1]],
        name="churn-second",
    )
    return first, second


def _assert_converges(session, shadow, bilateral, pruning, model):
    streamed = {frozenset(pair) for pair in session.retained().retained_ids}
    first, second = _final_collections(shadow, bilateral)
    if len(first) == 0 and (second is None or len(second) == 0):
        assert streamed == set()
        return
    prepared = prepare_blocks(
        first, second, apply_purging=False, apply_filtering=False
    )
    size_first = len(first)

    def id_of(node):
        if node < size_first:
            return first[node].entity_id
        return second[node - size_first].entity_id

    batch = _batch_retained_ids(
        prepared.blocks, prepared.candidates, model, pruning, id_of
    )
    assert streamed == batch


@settings(max_examples=60, deadline=None)
@given(operations=_operations(bilateral=True), pruning=st.sampled_from(PRUNING))
def test_bilateral_churn_converges_to_batch(operations, pruning):
    model = _frozen_model()
    session = MatchingSession(model, bilateral=True, pruning=pruning)
    shadow = _Shadow()
    _replay(session, shadow, operations)
    _assert_converges(session, shadow, bilateral=True, pruning=pruning, model=model)


@settings(max_examples=60, deadline=None)
@given(operations=_operations(bilateral=False), pruning=st.sampled_from(PRUNING))
def test_unilateral_churn_converges_to_batch(operations, pruning):
    model = _frozen_model()
    session = MatchingSession(model, bilateral=False, pruning=pruning)
    shadow = _Shadow()
    _replay(session, shadow, operations)
    _assert_converges(session, shadow, bilateral=False, pruning=pruning, model=model)


def test_remove_everything_leaves_an_empty_answer():
    """Retracting every streamed entity must leave no candidates behind."""
    model = _frozen_model()
    session = MatchingSession(model, bilateral=True, pruning="CEP")
    first = _collection("a", ["alpha beta", "alpha", "beta gamma"])
    second = _collection("b", ["alpha gamma", "beta"])
    for profile in first:
        session.insert(profile, side=0)
    for profile in second:
        session.insert(profile, side=1)
    assert session.num_pairs > 0
    for profile in first:
        session.remove(profile.entity_id, side=0)
    for profile in second:
        session.remove(profile.entity_id, side=1)
    assert session.num_entities == 0
    assert session.num_pairs == 0
    final = session.retained()
    assert final.retained_count == 0
    assert len(final.candidates) == 0
    # the index is still serviceable after total retraction
    session.insert(make_profile("a-new", text="alpha beta"), side=0)
    session.insert(make_profile("b-new", text="alpha"), side=1)
    assert session.num_pairs == 1
