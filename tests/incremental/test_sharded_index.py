"""Equivalence tests for :class:`ShardedMutableBlockIndex` and ``compact()``.

A signature-sharded index fed any interleaving of add/remove/update/bulk
must expose the same aggregate contract as the unsharded
:class:`MutableBlockIndex` on the same stream: identical node numbering,
identical distinct-pair sets, matching per-entity/global aggregates and
co-occurrence aggregates.  ``compact()`` must bound memory (no tombstoned
slots, no retracted registry positions) while leaving the canonical view
untouched.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datamodel import make_profile
from repro.incremental import MutableBlockIndex, ShardedMutableBlockIndex
from repro.parallel import ParallelExecutor

WORDS = (
    "apple", "samsung", "phone", "smartphone", "mate", "fold", "x",
    "s20", "20", "the", "and", "a", "pro", "mini",
)

SLOW_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def churn_scripts(draw, bilateral):
    """A random interleaving of inserts, bulk loads, removals and updates."""
    steps = []
    live = []
    counter = 0
    for _ in range(draw(st.integers(3, 12))):
        kind = draw(st.sampled_from(("add", "bulk", "remove", "update")))
        side = draw(st.integers(0, 1)) if bilateral else 0
        if kind in ("remove", "update") and not live:
            kind = "add"
        if kind == "add":
            tokens = draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=5))
            steps.append(("add", f"e{counter}", side, tokens))
            live.append((f"e{counter}", side))
            counter += 1
        elif kind == "bulk":
            size = draw(st.integers(1, 4))
            batch = []
            for _ in range(size):
                tokens = draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=5))
                batch.append((f"e{counter}", tokens))
                live.append((f"e{counter}", side))
                counter += 1
            steps.append(("bulk", batch, side))
        elif kind == "remove":
            target = draw(st.sampled_from(live))
            live.remove(target)
            steps.append(("remove", target[0], target[1]))
        else:
            target = draw(st.sampled_from(live))
            tokens = draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=5))
            steps.append(("update", target[0], target[1], tokens))
    return steps


def apply_script(index, steps):
    for step in steps:
        if step[0] == "add":
            _, entity_id, side, tokens = step
            index.add_entity(make_profile(entity_id, t=" ".join(tokens)), side=side)
        elif step[0] == "bulk":
            _, batch, side = step
            index.add_entities_bulk(
                [make_profile(eid, t=" ".join(tokens)) for eid, tokens in batch],
                side=side,
            )
        elif step[0] == "remove":
            _, entity_id, side = step
            index.remove_entity(entity_id, side=side)
        else:
            _, entity_id, side, tokens = step
            index.update_entity(make_profile(entity_id, t=" ".join(tokens)), side=side)


def pairs_of(candidates):
    return set(zip(candidates.left.tolist(), candidates.right.tolist()))


def pair_set(index):
    return pairs_of(index.candidate_set())


def assert_same_contract(single, sharded):
    assert sharded.num_entities == single.num_entities
    assert sharded.num_slots == single.num_slots
    assert np.array_equal(sharded.canonical_node_ids(), single.canonical_node_ids())
    assert pair_set(sharded) == pair_set(single)
    assert sharded.num_pairs == single.num_pairs

    stats_single, stats_sharded = single.statistics(), sharded.statistics()
    assert stats_sharded.num_blocks == stats_single.num_blocks
    assert stats_sharded.total_cardinality == stats_single.total_cardinality
    for attribute in (
        "blocks_per_entity",
        "entity_cardinality",
        "entity_inv_cardinality",
        "entity_inv_size",
    ):
        assert np.allclose(
            getattr(stats_sharded, attribute), getattr(stats_single, attribute)
        ), attribute
    assert np.allclose(
        stats_sharded.local_candidate_counts_sparse(),
        stats_single.local_candidate_counts_sparse(),
    )

    candidates = sharded.candidate_set()
    if len(candidates):
        agg_single = stats_single.pair_cooccurrence(candidates)
        agg_sharded = stats_sharded.pair_cooccurrence(candidates)
        assert np.array_equal(agg_single.common, agg_sharded.common)
        assert np.allclose(
            agg_single.sum_inverse_cardinality, agg_sharded.sum_inverse_cardinality
        )
        assert np.allclose(agg_single.sum_inverse_size, agg_sharded.sum_inverse_size)

    snap_single = {
        (b.key, tuple(b.entities_first), tuple(b.entities_second))
        for b in single.snapshot_blocks()
    }
    snap_sharded = {
        (b.key, tuple(b.entities_first), tuple(b.entities_second))
        for b in sharded.snapshot_blocks()
    }
    assert snap_single == snap_sharded


@SLOW_SETTINGS
@given(data=st.data(), bilateral=st.booleans(), num_shards=st.sampled_from((2, 3)))
def test_sharded_matches_unsharded_under_churn(data, bilateral, num_shards):
    steps = data.draw(churn_scripts(bilateral))
    single = MutableBlockIndex(bilateral=bilateral)
    sharded = ShardedMutableBlockIndex(bilateral=bilateral, num_shards=num_shards)
    apply_script(single, steps)
    apply_script(sharded, steps)
    assert_same_contract(single, sharded)

    # compacting the shards must not change the canonical contract
    sharded.compact()
    assert sharded.num_slots == sharded.num_entities
    assert pairs_of(
        sharded.canonical_candidates(sharded.candidate_set())
    ) == pairs_of(single.canonical_candidates(single.candidate_set()))


def test_bulk_tokenization_through_executor():
    """Bulk-load tokenization fanned out over worker processes is identical."""
    profiles = [
        make_profile(f"e{i}", t=" ".join(WORDS[i % len(WORDS)] for _ in range(3)))
        for i in range(20)
    ]
    plain = ShardedMutableBlockIndex(num_shards=2)
    plain.add_entities_bulk(profiles)
    with ParallelExecutor(2) as executor:
        parallel = ShardedMutableBlockIndex(num_shards=2, executor=executor)
        parallel.add_entities_bulk(profiles)
    assert pair_set(plain) == pair_set(parallel)
    assert plain.num_blocks == parallel.num_blocks


class TestCompactChurn:
    """Satellite: ``compact()`` bounds long-lived high-churn sessions."""

    def _churned_index(self):
        rng = np.random.default_rng(5)
        index = MutableBlockIndex(bilateral=True)
        for i in range(120):
            tokens = rng.choice(WORDS, size=int(rng.integers(1, 5)))
            index.add_entity(
                make_profile(f"e{i}", t=" ".join(tokens)), side=int(i % 2)
            )
        for i in range(0, 120, 2):  # heavy churn: retract half of everything
            index.remove_entity(f"e{i}", side=int(i % 2))
        return index

    def test_compact_bounds_memory(self):
        index = self._churned_index()
        assert index.num_slots > index.num_entities
        assert index.num_registered_pairs > index.num_pairs
        index.compact()
        # bounded: no tombstoned slots, no retracted registry positions
        assert index.num_slots == index.num_entities
        assert index.num_registered_pairs == index.num_pairs

    def test_compact_preserves_the_canonical_view(self):
        index = self._churned_index()
        canonical = index.canonical_node_ids()
        live = canonical >= 0
        order = np.argsort(canonical[live])
        before_pairs = pairs_of(index.canonical_candidates(index.candidate_set()))
        stats = index.statistics()
        before = {
            "num_blocks": stats.num_blocks,
            "total_cardinality": stats.total_cardinality,
            "blocks_per_entity": stats.blocks_per_entity[live][order].copy(),
            "entity_inv_cardinality": stats.entity_inv_cardinality[live][order].copy(),
            "degrees": stats.local_candidate_counts_sparse()[live][order].copy(),
        }
        snapshot_before = {
            (b.key, tuple(b.entities_first), tuple(b.entities_second))
            for b in index.snapshot_blocks()
        }

        index.compact()

        assert pairs_of(index.canonical_candidates(index.candidate_set())) == before_pairs
        canonical2 = index.canonical_node_ids()
        live2 = canonical2 >= 0
        order2 = np.argsort(canonical2[live2])
        stats2 = index.statistics()
        assert stats2.num_blocks == before["num_blocks"]
        assert stats2.total_cardinality == before["total_cardinality"]
        assert np.allclose(
            stats2.blocks_per_entity[live2][order2], before["blocks_per_entity"]
        )
        assert np.allclose(
            stats2.entity_inv_cardinality[live2][order2],
            before["entity_inv_cardinality"],
        )
        assert np.allclose(
            stats2.local_candidate_counts_sparse()[live2][order2], before["degrees"]
        )
        snapshot_after = {
            (b.key, tuple(b.entities_first), tuple(b.entities_second))
            for b in index.snapshot_blocks()
        }
        assert snapshot_before == snapshot_after

    def test_compact_then_mutate(self):
        index = self._churned_index()
        index.compact()
        delta = index.add_entity(make_profile("fresh", t="apple phone"), side=0)
        assert delta.node == index.num_slots - 1
        index.remove_entity("fresh", side=0)
        index.compact()
        assert index.num_slots == index.num_entities
        with pytest.raises(KeyError):
            index.node_of("fresh", side=0)
