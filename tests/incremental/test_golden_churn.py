"""Golden regression test for a delete-heavy streaming replay on DblpAcm.

The exact outcome of a churned replay — bootstrap-trained frozen model,
interleaved inserts with seeded random deletions (30% churn), CEP
finalisation — is frozen into ``tests/data/golden_churn.json``: stream and
retraction counts, the live survivor totals, the retained pair set digest
and a sample of retained pairs, plus recall/precision against the live
ground truth.  A change that shifts the dynamic index's behaviour — even one
the streaming-vs-batch equivalence tests cannot see because it affects both
sides identically — fails here.

To regenerate the fixture after an *intentional* semantic change::

    PYTHONPATH=src python tests/incremental/test_golden_churn.py --regenerate
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.datasets import load_benchmark
from repro.incremental import (
    evaluate_retained_ids,
    ground_truth_id_pairs,
    live_truth_id_pairs,
    replay_stream,
    train_frozen_model,
)

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_churn.json"

DATASET, SEED, SCALE = "DblpAcm", 9, 0.12
PRUNING = "CEP"
DELETE_FRACTION, CHURN_SEED = 0.3, 21


def _replay():
    dataset = load_benchmark(DATASET, seed=SEED, scale=SCALE)
    model = train_frozen_model(
        dataset, bootstrap_fraction=0.5, pruning=PRUNING, seed=SEED
    )
    replay = replay_stream(
        dataset,
        model,
        pruning=PRUNING,
        delete_fraction=DELETE_FRACTION,
        churn_seed=CHURN_SEED,
    )
    return dataset, replay


def _snapshot(dataset, replay):
    final = replay.session.retained()
    retained = sorted(final.retained_ids)
    digest = hashlib.sha256(
        ",".join(f"{a}|{b}" for a, b in retained).encode("utf-8")
    ).hexdigest()
    truth = live_truth_id_pairs(
        replay.session.index,
        ground_truth_id_pairs(dataset.ground_truth, dataset.first, dataset.second),
    )
    recall, precision = evaluate_retained_ids(final, truth)
    return {
        "dataset": DATASET,
        "seed": SEED,
        "scale": SCALE,
        "pruning": PRUNING,
        "delete_fraction": DELETE_FRACTION,
        "churn_seed": CHURN_SEED,
        "inserts": replay.num_inserts,
        "deletes": replay.num_deletes,
        "retracted_pairs": int(replay.retraction_sizes.sum()),
        "live_entities": replay.session.num_entities,
        "live_pairs": replay.session.num_pairs,
        "live_truth_pairs": len(truth),
        "retained_count": final.retained_count,
        "retained_digest": digest,
        "first_retained": [list(pair) for pair in retained[:10]],
        "recall": round(recall, 9),
        "precision": round(precision, 9),
    }


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def test_delete_heavy_replay_matches_golden(golden):
    dataset, replay = _replay()
    snapshot = _snapshot(dataset, replay)
    assert snapshot == golden


def _regenerate():
    dataset, replay = _replay()
    snapshot = _snapshot(dataset, replay)
    GOLDEN_PATH.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
    for key in ("inserts", "deletes", "live_pairs", "retained_count", "recall"):
        print(f"  {key}: {snapshot[key]}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
