"""Session-safe compaction: remapped online state, stale-session detection.

``MutableBlockIndex.compact()`` reassigns raw node ids and registry
positions.  A live :class:`MatchingSession` holds per-position state (the
insert-time probability array, OnlineTopK's queue items), so compacting the
index directly would silently corrupt it — the regression these tests pin
down.  :meth:`MatchingSession.compact` remaps that state by canonical pair
key; direct ``index.compact()`` is detected via the index generation
counter and every subsequent session operation raises
:class:`StaleSessionError`.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datamodel import make_profile
from repro.incremental import MatchingSession, StaleSessionError

from test_churn_property import _Shadow, _assert_converges, _operations, _replay
from test_session_property import PRUNING, _frozen_model


def _churned_session(online="topk", top_k=8):
    session = MatchingSession(_frozen_model(), online=online, top_k=top_k)
    for i in range(30):
        session.insert(
            make_profile(f"e{i}", t=f"alpha tok{i % 4} tok{i % 7} beta")
        )
    for i in range(0, 30, 3):
        session.remove(f"e{i}")
    return session


class TestSessionCompact:
    @pytest.mark.parametrize("online", ["wep", "topk"])
    def test_compact_preserves_answer_and_thresholds(self, online):
        session = _churned_session(online=online)
        expected = session.retained().retained_id_set()
        threshold = session.online.threshold
        assert session.index.num_slots > session.index.num_entities

        session.compact()

        assert session.index.num_slots == session.index.num_entities
        assert session.index.num_registered_pairs == session.index.num_pairs
        assert session.retained().retained_id_set() == expected
        assert session.online.threshold == pytest.approx(threshold, abs=1e-12)

    def test_compact_keeps_probabilities_aligned_with_the_registry(self):
        session = _churned_session(online="wep")
        from repro.persistence import canonical_pair_keys

        positions, keys = canonical_pair_keys(session.index)
        order = np.argsort(keys)
        before = session._insert_probabilities.view()[positions][order].copy()

        session.compact()

        positions2, keys2 = canonical_pair_keys(session.index)
        order2 = np.argsort(keys2)
        assert np.array_equal(keys[order], keys2[order2])
        after = session._insert_probabilities.view()[positions2][order2]
        assert np.allclose(before, after)

    def test_streaming_continues_after_compact(self):
        session = _churned_session(online="topk")
        session.compact()
        session.insert(make_profile("fresh", t="alpha beta tok1"))
        session.remove("fresh")
        session.update(make_profile("e1", t="alpha tok2"))
        session.compact()  # repeated compaction is fine
        assert session.index.num_slots == session.index.num_entities


class TestStaleSessionDetection:
    def test_direct_index_compact_is_detected(self):
        session = _churned_session()
        session.index.compact()  # bypasses the session — the old corruption
        with pytest.raises(StaleSessionError, match="MatchingSession.compact"):
            session.insert(make_profile("x", t="alpha"))
        with pytest.raises(StaleSessionError):
            session.remove("e1")
        with pytest.raises(StaleSessionError):
            session.retained()
        with pytest.raises(StaleSessionError):
            session.compact()

    def test_session_compact_keeps_the_session_fresh(self):
        session = _churned_session()
        session.compact()
        session.insert(make_profile("x", t="alpha"))  # no StaleSessionError


@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    operations=_operations(bilateral=True),
    pruning=st.sampled_from(PRUNING),
    compact_every=st.integers(1, 5),
)
def test_churn_with_interleaved_compaction_converges_to_batch(
    operations, pruning, compact_every
):
    """Any interleaving of mutations and session-safe compactions still
    finalises to exactly the batch answer, for every pruning algorithm."""
    model = _frozen_model()
    session = MatchingSession(model, bilateral=True, pruning=pruning)
    shadow = _Shadow()
    for start in range(0, len(operations), compact_every):
        _replay(session, shadow, operations[start : start + compact_every])
        session.compact()
        assert session.index.num_slots == session.index.num_entities
    _assert_converges(session, shadow, True, pruning, model)
