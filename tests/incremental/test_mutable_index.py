"""Unit tests for the incrementally maintained block index.

The invariant under test: a :class:`MutableBlockIndex` fed entities one at a
time exposes exactly the statistics :class:`BlockStatistics` computes on the
batch block collection built from the same final data (with the batch-only
purging/filtering steps disabled).
"""

import numpy as np
import pytest

from repro.blocking import prepare_blocks
from repro.core import FeatureVectorGenerator
from repro.datamodel import EntityCollection, make_profile
from repro.incremental import (
    DeltaFeatureGenerator,
    DuplicateEntityError,
    MutableBlockIndex,
    UnknownEntityError,
    interleave_profiles,
)
from repro.weights import BlockStatistics, PAPER_FEATURES


def _profiles(rows):
    return [make_profile(entity_id, text=text) for entity_id, text in rows]


@pytest.fixture()
def small_stream():
    """A tiny bilateral stream with shared, unique and absent tokens."""
    first = _profiles(
        [("a1", "apple phone"), ("a2", "samsung phone"), ("a3", "unique1"), ("a4", "")]
    )
    second = _profiles(
        [("b1", "apple handset"), ("b2", "samsung phone case"), ("b3", "unique2")]
    )
    return first, second


def _batch_node_mapper(index, first, second):
    size_first = len(first)

    def to_batch(node):
        entity_id = index.entity_id(node)
        if index.side_of(node) == 0:
            return first.index_of(entity_id)
        return size_first + second.index_of(entity_id)

    return to_batch


def _assert_matches_batch(index, first, second):
    """Compare the index against the batch pipeline on the final data."""
    prepared = prepare_blocks(
        first, second, apply_purging=False, apply_filtering=False
    )
    stats = BlockStatistics(prepared.blocks)
    to_batch = _batch_node_mapper(index, first, second) if second is not None else int

    # candidate pairs
    candidates = index.candidate_set()
    streamed = {
        tuple(sorted((to_batch(int(i)), to_batch(int(j)))))
        for i, j in zip(candidates.left, candidates.right)
    }
    batch = set(zip(prepared.candidates.left.tolist(), prepared.candidates.right.tolist()))
    assert streamed == batch

    # global aggregates
    assert index.num_nonempty_blocks == len(prepared.blocks)
    assert index.total_cardinality == prepared.blocks.total_comparisons()
    assert index.total_block_assignments == prepared.blocks.total_block_assignments()

    # per-entity aggregates
    view = index.statistics()
    node_map = np.array([to_batch(node) for node in range(index.num_entities)])
    np.testing.assert_allclose(view.blocks_per_entity, stats.blocks_per_entity[node_map])
    np.testing.assert_allclose(view.entity_cardinality, stats.entity_cardinality[node_map])
    np.testing.assert_allclose(
        view.entity_inv_cardinality, stats.entity_inv_cardinality[node_map]
    )
    np.testing.assert_allclose(view.entity_inv_size, stats.entity_inv_size[node_map])
    np.testing.assert_allclose(
        view.local_candidate_counts_sparse(), stats.local_candidate_counts()[node_map]
    )

    # full feature matrices
    if len(candidates):
        streamed_matrix = DeltaFeatureGenerator(index, PAPER_FEATURES).generate(candidates)
        batch_matrix = FeatureVectorGenerator(PAPER_FEATURES, backend="sparse").generate(
            prepared.candidates, stats
        )
        position = prepared.candidates.position_index()
        rows = np.array(
            [
                position[tuple(sorted((to_batch(int(i)), to_batch(int(j)))))]
                for i, j in zip(candidates.left, candidates.right)
            ]
        )
        np.testing.assert_allclose(
            streamed_matrix.values, batch_matrix.values[rows], rtol=1e-9, atol=1e-12
        )


class TestBilateralIndex:
    def test_matches_batch_on_interleaved_stream(self, small_stream):
        first_profiles, second_profiles = small_stream
        first = EntityCollection(first_profiles, name="s1")
        second = EntityCollection(second_profiles, name="s2")
        index = MutableBlockIndex(bilateral=True)
        for profile, side in interleave_profiles(first, second):
            index.add_entity(profile, side=side)
        _assert_matches_batch(index, first, second)

    def test_delta_reports_only_new_pairs(self, small_stream):
        first_profiles, second_profiles = small_stream
        index = MutableBlockIndex(bilateral=True)
        index.add_entity(first_profiles[0], side=0)  # apple phone
        delta = index.add_entity(second_profiles[0], side=1)  # apple handset
        assert delta.num_new_pairs == 1
        assert delta.counterparts.tolist() == [0]
        delta = index.add_entity(second_profiles[1], side=1)  # samsung phone case
        assert delta.num_new_pairs == 1  # shares only "phone" with a1
        delta = index.add_entity(first_profiles[1], side=0)  # samsung phone
        assert delta.num_new_pairs == 1  # shares samsung+phone with b2 only
        assert delta.counterparts.tolist() == [2]

    def test_empty_profile_introduces_nothing(self, small_stream):
        first_profiles, second_profiles = small_stream
        index = MutableBlockIndex(bilateral=True)
        index.add_entity(first_profiles[0], side=0)
        delta = index.add_entity(make_profile("empty"), side=1)
        assert delta.num_new_pairs == 0
        assert delta.block_ids.size == 0
        assert index.num_pairs == 0

    def test_one_sided_block_spawns_no_pairs(self):
        index = MutableBlockIndex(bilateral=True)
        index.add_entity(make_profile("a1", text="solo"), side=0)
        delta = index.add_entity(make_profile("a2", text="solo"), side=0)
        assert delta.num_new_pairs == 0
        assert index.num_nonempty_blocks == 0
        # the first opposite-side member flips the block to comparison-spawning
        delta = index.add_entity(make_profile("b1", text="solo"), side=1)
        assert delta.num_new_pairs == 2
        assert index.num_nonempty_blocks == 1

    def test_duplicate_entity_id_rejected_per_side(self):
        index = MutableBlockIndex(bilateral=True)
        index.add_entity(make_profile("x", text="token"), side=0)
        with pytest.raises(ValueError, match="duplicate entity_id"):
            index.add_entity(make_profile("x", text="other"), side=0)

    def test_same_id_on_both_sides_is_allowed(self):
        """Clean-Clean sources number their entities independently."""
        index = MutableBlockIndex(bilateral=True)
        index.add_entity(make_profile("1", text="apple phone"), side=0)
        delta = index.add_entity(make_profile("1", text="apple phone"), side=1)
        assert delta.num_new_pairs == 1
        assert index.node_of("1", side=0) == 0
        assert index.node_of("1", side=1) == 1
        assert index.has_entity("1", side=0) and index.has_entity("1", side=1)
        assert not index.has_entity("2", side=0)

    def test_side_validation(self):
        unilateral = MutableBlockIndex(bilateral=False)
        with pytest.raises(ValueError, match="bilateral"):
            unilateral.add_entity(make_profile("x", text="t"), side=1)
        with pytest.raises(ValueError, match="side"):
            MutableBlockIndex(bilateral=True).add_entity(
                make_profile("y", text="t"), side=2
            )


def _assert_matches_batch_canonical(index, first, second):
    """Compare a (possibly churned) index against batch on the live data.

    Unlike :func:`_assert_matches_batch`, node ids are bridged through
    :meth:`MutableBlockIndex.canonical_node_ids` — the compact batch
    numbering of the live survivors — so the comparison works after
    removals, updates and bulk loads.
    """
    prepared = prepare_blocks(
        first, second, apply_purging=False, apply_filtering=False
    )
    stats = BlockStatistics(prepared.blocks)
    canonical = index.canonical_node_ids()

    candidates = index.canonical_candidates(index.candidate_set())
    streamed = set(zip(candidates.left.tolist(), candidates.right.tolist()))
    batch = set(
        zip(prepared.candidates.left.tolist(), prepared.candidates.right.tolist())
    )
    assert streamed == batch

    assert index.num_nonempty_blocks == len(prepared.blocks)
    assert index.total_cardinality == prepared.blocks.total_comparisons()
    assert index.total_block_assignments == prepared.blocks.total_block_assignments()

    live = np.flatnonzero(canonical >= 0)
    order = live[np.argsort(canonical[live])]
    view = index.statistics()
    np.testing.assert_allclose(
        view.blocks_per_entity[order], stats.blocks_per_entity, atol=1e-9
    )
    np.testing.assert_allclose(
        view.entity_cardinality[order], stats.entity_cardinality, atol=1e-9
    )
    np.testing.assert_allclose(
        view.entity_inv_cardinality[order], stats.entity_inv_cardinality, atol=1e-9
    )
    np.testing.assert_allclose(
        view.entity_inv_size[order], stats.entity_inv_size, atol=1e-9
    )
    np.testing.assert_allclose(
        view.local_candidate_counts_sparse()[order],
        stats.local_candidate_counts(),
        atol=1e-9,
    )

    snapshot = {
        (block.key, tuple(block.entities_first), tuple(block.entities_second))
        for block in index.snapshot_blocks()
    }
    batch_blocks = {
        (block.key, tuple(block.entities_first), tuple(block.entities_second))
        for block in prepared.blocks
    }
    assert snapshot == batch_blocks


class TestDynamicIndex:
    """Removal, update and bulk-load behaviour of the fully dynamic index."""

    def _collection(self, prefix, rows, is_clean=True):
        return EntityCollection(
            _profiles([(f"{prefix}{k}", text) for k, text in enumerate(rows)]),
            name=prefix,
            is_clean=is_clean,
        )

    def test_removal_reverses_the_insert_exactly(self, small_stream):
        """Insert A+B, remove B -> identical aggregates to inserting A only."""
        first_profiles, second_profiles = small_stream
        churned = MutableBlockIndex(bilateral=True)
        for profile in first_profiles:
            churned.add_entity(profile, side=0)
        for profile in second_profiles:
            churned.add_entity(profile, side=1)
        for profile in second_profiles:
            churned.remove_entity(profile.entity_id, side=1)
        churned.remove_entity(first_profiles[1].entity_id, side=0)

        survivors = [p for p in first_profiles if p.entity_id != first_profiles[1].entity_id]
        first = EntityCollection(survivors, name="s1")
        second = EntityCollection([], name="s2")
        _assert_matches_batch_canonical(churned, first, second)

    def test_update_changes_the_entity_signature(self):
        index = MutableBlockIndex(bilateral=True)
        index.add_entity(make_profile("a1", text="apple phone"), side=0)
        index.add_entity(make_profile("b1", text="apple handset"), side=1)
        assert index.num_pairs == 1
        delta = index.update_entity(make_profile("a1", text="handset"), side=0)
        assert delta.retraction.num_retracted_pairs == 1
        assert delta.insert.num_new_pairs == 1
        # fresh node id, arrival order re-entered at the end
        assert delta.insert.node != delta.retraction.node
        assert index.num_pairs == 1
        assert index.num_entities == 2
        first = EntityCollection([make_profile("a1", text="handset")], name="f")
        second = EntityCollection([make_profile("b1", text="apple handset")], name="s")
        _assert_matches_batch_canonical(index, first, second)

    def test_retraction_delta_reports_dead_pairs(self):
        index = MutableBlockIndex(bilateral=False)
        index.add_entity(make_profile("d1", text="red widget"))
        index.add_entity(make_profile("d2", text="red"))
        index.add_entity(make_profile("d3", text="widget blue"))
        assert index.num_pairs == 2
        retraction = index.remove_entity("d1")
        assert retraction.num_retracted_pairs == 2
        assert sorted(retraction.counterparts.tolist()) == [1, 2]
        assert index.num_pairs == 0
        # degrees fully reversed
        np.testing.assert_allclose(
            index.statistics().local_candidate_counts_sparse(), 0.0
        )

    def test_unknown_entity_raises_named_error_without_corruption(self):
        index = MutableBlockIndex(bilateral=False)
        index.add_entity(make_profile("d1", text="solo token"))
        before = index.total_cardinality, index.num_pairs, index.num_entities
        with pytest.raises(UnknownEntityError, match="ghost"):
            index.remove_entity("ghost")
        with pytest.raises(UnknownEntityError, match="ghost"):
            index.node_of("ghost")
        assert (index.total_cardinality, index.num_pairs, index.num_entities) == before
        # removing twice raises on the second attempt, leaving state intact
        index.remove_entity("d1")
        with pytest.raises(UnknownEntityError):
            index.remove_entity("d1")

    def test_duplicate_insert_raises_named_error(self):
        index = MutableBlockIndex(bilateral=False)
        index.add_entity(make_profile("d1", text="token"))
        with pytest.raises(DuplicateEntityError, match="duplicate entity_id"):
            index.add_entity(make_profile("d1", text="other"))
        with pytest.raises(DuplicateEntityError):
            index.add_entities_bulk([make_profile("d1", text="other")])
        with pytest.raises(DuplicateEntityError):
            index.add_entities_bulk(
                [make_profile("d9", text="x"), make_profile("d9", text="y")]
            )
        # removal re-opens the id
        index.remove_entity("d1")
        delta = index.add_entity(make_profile("d1", text="token"))
        assert delta.node == 1

    def test_bulk_load_equals_sequential_inserts(self, small_stream):
        first_profiles, second_profiles = small_stream
        sequential = MutableBlockIndex(bilateral=True)
        sequential.add_entities(first_profiles, side=0)
        sequential.add_entities(second_profiles, side=1)

        bulk = MutableBlockIndex(bilateral=True)
        delta_first = bulk.add_entities_bulk(first_profiles, side=0)
        delta_second = bulk.add_entities_bulk(second_profiles, side=1)
        assert delta_first.nodes.tolist() == list(range(len(first_profiles)))
        assert (
            delta_first.num_new_pairs + delta_second.num_new_pairs
            == sequential.num_pairs
        )

        assert bulk.num_pairs == sequential.num_pairs
        assert bulk.total_cardinality == sequential.total_cardinality
        assert bulk.num_nonempty_blocks == sequential.num_nonempty_blocks
        assert bulk.total_block_assignments == sequential.total_block_assignments
        bulk_pairs = bulk.candidate_set()
        seq_pairs = sequential.candidate_set()
        assert set(zip(bulk_pairs.left.tolist(), bulk_pairs.right.tolist())) == set(
            zip(seq_pairs.left.tolist(), seq_pairs.right.tolist())
        )
        for name in (
            "_blocks_per_entity",
            "_entity_cardinality",
            "_entity_inv_cardinality",
            "_entity_inv_size",
            "_degrees",
        ):
            np.testing.assert_allclose(
                getattr(bulk, name).view(),
                getattr(sequential, name).view(),
                rtol=1e-12,
                atol=1e-12,
                err_msg=name,
            )
        # CSR rows identical (same per-row sorted block ids)
        np.testing.assert_array_equal(
            bulk.csr().indptr, sequential.csr().indptr
        )
        np.testing.assert_array_equal(
            bulk.csr().indices, sequential.csr().indices
        )

    def test_bulk_load_matches_batch_after_churn(self):
        index = MutableBlockIndex(bilateral=False)
        index.add_entities_bulk(
            _profiles([("d1", "red widget"), ("d2", "red deluxe"), ("d3", "blue")])
        )
        index.remove_entity("d2")
        index.add_entities_bulk(
            _profiles([("d4", "red blue widget"), ("d5", "deluxe")])
        )
        index.update_entity(make_profile("d3", text="blue deluxe"))
        live = EntityCollection(
            _profiles(
                [
                    ("d1", "red widget"),
                    ("d4", "red blue widget"),
                    ("d5", "deluxe"),
                    ("d3", "blue deluxe"),
                ]
            ),
            name="dirty",
            is_clean=False,
        )
        _assert_matches_batch_canonical(index, live, None)

    def test_bulk_load_of_empty_batch_is_a_no_op(self):
        index = MutableBlockIndex(bilateral=False)
        delta = index.add_entities_bulk([])
        assert delta.num_new_pairs == 0
        assert delta.nodes.size == 0
        assert index.num_entities == 0

    def test_live_bookkeeping_after_churn(self):
        index = MutableBlockIndex(bilateral=True)
        index.add_entity(make_profile("a1", text="x y"), side=0)
        index.add_entity(make_profile("b1", text="y z"), side=1)
        index.remove_entity("a1", side=0)
        assert index.num_entities == 1
        assert index.num_slots == 2
        assert not index.has_entity("a1", side=0)
        assert not index.is_live(0)
        assert index.is_live(1)
        assert index.side_of(0) == -1
        space = index.index_space()
        assert (space.size_first, space.size_second) == (0, 1)
        canonical = index.canonical_node_ids()
        assert canonical.tolist() == [-1, 0]


class TestUnilateralIndex:
    def test_matches_batch_on_dirty_stream(self):
        profiles = _profiles(
            [
                ("d1", "red widget deluxe"),
                ("d2", "red widget"),
                ("d3", "blue widget"),
                ("d4", "singleton token"),
                ("d5", ""),
                ("d6", "red deluxe"),
            ]
        )
        collection = EntityCollection(profiles, name="dirty", is_clean=False)
        index = MutableBlockIndex(bilateral=False)
        deltas = index.add_entities(collection)
        assert len(deltas) == len(profiles)
        _assert_matches_batch(index, collection, None)

    def test_singleton_block_counts_nothing_until_second_member(self):
        index = MutableBlockIndex(bilateral=False)
        index.add_entity(make_profile("d1", text="rare"))
        assert index.num_nonempty_blocks == 0
        assert index.statistics().blocks_per_entity[0] == 0.0
        index.add_entity(make_profile("d2", text="rare"))
        assert index.num_nonempty_blocks == 1
        view = index.statistics()
        np.testing.assert_allclose(view.blocks_per_entity[:2], [1.0, 1.0])
        np.testing.assert_allclose(view.entity_inv_cardinality[:2], [1.0, 1.0])

    def test_snapshot_blocks_match_batch_collection(self):
        profiles = _profiles([("d1", "a b"), ("d2", "b c"), ("d3", "c a")])
        collection = EntityCollection(profiles, name="dirty", is_clean=False)
        index = MutableBlockIndex(bilateral=False)
        index.add_entities(collection)
        snapshot = index.snapshot_blocks()
        prepared = prepare_blocks(
            collection, None, apply_purging=False, apply_filtering=False
        )
        streamed = {
            (block.key, tuple(block.entities_first), tuple(block.entities_second))
            for block in snapshot
        }
        batch = {
            (block.key, tuple(block.entities_first), tuple(block.entities_second))
            for block in prepared.blocks
        }
        assert streamed == batch

    def test_csr_rows_are_sorted(self):
        index = MutableBlockIndex(bilateral=False)
        index.add_entity(make_profile("d1", text="zeta alpha midway"))
        index.add_entity(make_profile("d2", text="midway zeta"))
        csr = index.csr()
        for node in range(index.num_entities):
            row = csr.indices[csr.indptr[node] : csr.indptr[node + 1]]
            assert np.all(np.diff(row) > 0)


class TestPairKeyOverflow:
    """Node ids at or past 2^32 must raise instead of silently colliding.

    ``pack_pair_keys`` packs a pair as ``left << 32 | right``; ids past the
    32-bit bound would alias other pairs' keys and silently corrupt the
    candidate registry (the regression this class pins down).
    """

    def test_scalar_pack_raises_at_the_bound(self):
        from repro.incremental.index import _pack_pair

        assert _pack_pair((1 << 32) - 1, 5) > 0
        with pytest.raises(OverflowError, match="2\\^32"):
            _pack_pair(1 << 32, 5)
        with pytest.raises(OverflowError, match="compact"):
            _pack_pair(5, 1 << 32)

    def test_vectorized_pack_raises_at_the_bound(self):
        from repro.incremental.index import pack_pair_keys

        ok = pack_pair_keys(
            np.array([0, (1 << 32) - 1]), np.array([1, (1 << 32) - 1])
        )
        assert ok.dtype == np.int64 and ok.size == 2
        with pytest.raises(OverflowError, match="2\\^32"):
            pack_pair_keys(np.array([1 << 32]), np.array([5]))
        with pytest.raises(OverflowError):
            pack_pair_keys(np.array([5]), np.array([1 << 32, 7]))

    def test_insert_path_raises_with_forged_large_node_ids(self, monkeypatch):
        """An index whose slot counter reached 2^32 refuses further inserts."""
        index = MutableBlockIndex(bilateral=False)
        index.add_entity(make_profile("d1", text="alpha"))
        monkeypatch.setattr(
            MutableBlockIndex,
            "num_slots",
            property(lambda self: 1 << 32),
        )
        with pytest.raises(OverflowError, match="compact"):
            index.add_entity(make_profile("d2", text="alpha"))

    def test_bulk_path_raises_when_the_batch_crosses_the_bound(self, monkeypatch):
        index = MutableBlockIndex(bilateral=False)
        monkeypatch.setattr(
            MutableBlockIndex,
            "num_slots",
            property(lambda self: (1 << 32) - 1),
        )
        with pytest.raises(OverflowError, match="2\\^32"):
            index.add_entities_bulk(
                [make_profile("d1", text="alpha"), make_profile("d2", text="alpha")]
            )
