"""Property test: streaming inserts reproduce the batch retained set.

Hypothesis generates small random entity collections (including empty
profiles, singleton tokens and tokens present on only one side, i.e. blocks
that spawn no comparison).  Every collection is processed twice:

* *batch* — token blocking (purging/filtering disabled, as streaming
  maintains raw token blocks), sparse feature generation, scoring, pruning;
* *streaming* — a :class:`MatchingSession` fed the same entities one at a
  time, finalised with :meth:`MatchingSession.retained`.

Both sides share a deterministic frozen classifier (no training — the
property is about statistics/scoring/pruning equivalence, not about the
learner), and must retain exactly the same entity-id pairs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import prepare_blocks
from repro.core import FeatureVectorGenerator, get_pruning_algorithm
from repro.datamodel import EntityCollection, make_profile
from repro.incremental import FrozenModel, MatchingSession, interleave_profiles
from repro.weights import BlockStatistics, RCNP_FEATURE_SET

#: RCNP's Formula 2 set covers every aggregate kind, including the per-side
#: LCP columns whose orientation the streaming generator must preserve.
FEATURE_SET = RCNP_FEATURE_SET

#: Every pruning algorithm is exactly batch-equivalent: the weight-based
#: ones are order-invariant by construction, and the cardinality-based ones
#: (CEP/CNP/RCNP) break probability ties deterministically by packed
#: candidate key, so arrival-ordered and canonical pair storage retain the
#: same set.
PRUNING = ("BLAST", "WEP", "WNP", "RWNP", "CEP", "CNP", "RCNP")


class _FixedLogistic:
    """A deterministic frozen 'classifier': logistic over fixed weights.

    Probabilities are rounded so the streaming and batch sides — whose
    feature sums may differ in the last float ulp — score every pair with
    bit-identical values.
    """

    def __init__(self, n_features: int) -> None:
        self._weights = np.linspace(-1.0, 1.0, n_features)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        z = np.clip(features @ self._weights, -30.0, 30.0)
        return np.round(1.0 / (1.0 + np.exp(-z)), 9)


def _frozen_model() -> FrozenModel:
    width = FeatureVectorGenerator(FEATURE_SET).columns
    return FrozenModel(
        classifier=_FixedLogistic(len(width)), scaler=None, feature_set=FEATURE_SET
    )


_TOKENS = ("alpha", "beta", "gamma", "delta", "eps", "zeta")


def _profile_strategy():
    return st.lists(st.sampled_from(_TOKENS), min_size=0, max_size=4).map(" ".join)


def _collection(prefix, texts, is_clean=True):
    return EntityCollection(
        [
            make_profile(f"{prefix}{position}", text=text)
            for position, text in enumerate(texts)
        ],
        name=prefix,
        is_clean=is_clean,
    )


def _batch_retained_ids(blocks, candidates, model, pruning, id_of):
    stats = BlockStatistics(blocks)
    matrix = FeatureVectorGenerator(FEATURE_SET, backend="sparse").generate(
        candidates, stats
    )
    probabilities = model.score(matrix.values)
    mask = get_pruning_algorithm(pruning).prune(probabilities, candidates, blocks)
    return {
        frozenset((id_of(int(i)), id_of(int(j))))
        for i, j in zip(candidates.left[mask], candidates.right[mask])
    }


@settings(max_examples=60, deadline=None)
@given(
    first_texts=st.lists(_profile_strategy(), min_size=1, max_size=7),
    second_texts=st.lists(_profile_strategy(), min_size=1, max_size=7),
    pruning=st.sampled_from(PRUNING),
)
def test_bilateral_stream_matches_batch(first_texts, second_texts, pruning):
    first = _collection("a", first_texts)
    second = _collection("b", second_texts)
    model = _frozen_model()

    session = MatchingSession(model, bilateral=True, pruning=pruning)
    for profile, side in interleave_profiles(first, second):
        session.insert(profile, side=side)
    streamed = {frozenset(pair) for pair in session.retained().retained_ids}

    prepared = prepare_blocks(
        first, second, apply_purging=False, apply_filtering=False
    )
    size_first = len(first)

    def id_of(node):
        if node < size_first:
            return first[node].entity_id
        return second[node - size_first].entity_id

    batch = _batch_retained_ids(
        prepared.blocks, prepared.candidates, model, pruning, id_of
    )
    assert streamed == batch


@settings(max_examples=60, deadline=None)
@given(
    texts=st.lists(_profile_strategy(), min_size=1, max_size=10),
    pruning=st.sampled_from(PRUNING),
)
def test_unilateral_stream_matches_batch(texts, pruning):
    collection = _collection("d", texts, is_clean=False)
    model = _frozen_model()

    session = MatchingSession(model, bilateral=False, pruning=pruning)
    session.insert_many(collection)
    streamed = {frozenset(pair) for pair in session.retained().retained_ids}

    prepared = prepare_blocks(
        collection, None, apply_purging=False, apply_filtering=False
    )
    batch = _batch_retained_ids(
        prepared.blocks,
        prepared.candidates,
        model,
        pruning,
        lambda node: collection[node].entity_id,
    )
    assert streamed == batch


def test_singleton_and_empty_edge_cases_explicitly():
    """The edge cases the strategies may or may not hit, pinned down."""
    model = _frozen_model()
    first = _collection("a", ["alpha", "", "zeta"])  # singleton token + empty
    second = _collection("b", ["", "beta"])  # no shared token at all
    session = MatchingSession(model, bilateral=True, pruning="BLAST")
    for profile, side in interleave_profiles(first, second):
        session.insert(profile, side=side)
    final = session.retained()
    assert final.retained_count == 0
    assert len(final.candidates) == 0
    assert final.retained_ids == ()
