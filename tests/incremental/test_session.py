"""MatchingSession behaviour + exact batch equivalence on fixture datasets.

The acceptance invariant: inserting every entity of a benchmark one at a
time through a :class:`MatchingSession` holding the batch run's frozen
classifier, then asking for the exact answer, reproduces the batch
pipeline's retained pairs on the final collection — verified here on two
generated fixture datasets (DblpAcm and AbtBuy) and two pruning algorithms.
"""

import numpy as np
import pytest

from repro.blocking import prepare_blocks
from repro.core import FeatureVectorGenerator, GeneralizedSupervisedMetaBlocking
from repro.core.pruning import get_pruning_algorithm
from repro.datamodel import EntityCollection, make_profile
from repro.datasets import load_benchmark
from repro.incremental import (
    FrozenModel,
    MatchingSession,
    OnlineTopK,
    OnlineWEP,
    StreamTrainingError,
    UnknownEntityError,
    interleave_profiles,
    replay_stream,
    split_bootstrap,
    train_frozen_model,
)
from repro.weights import BLAST_FEATURE_SET, BlockStatistics


def _batch_retained_ids(dataset, result):
    size_first = len(dataset.first)
    return {
        (
            dataset.first[int(i)].entity_id,
            dataset.second[int(j) - size_first].entity_id,
        )
        for i, j in zip(result.retained.left, result.retained.right)
    }


@pytest.fixture(scope="module", params=["DblpAcm", "AbtBuy"])
def streamed_fixture(request):
    """One benchmark, its batch pipeline run, and the frozen model."""
    dataset = load_benchmark(request.param, seed=11, scale=0.15)
    prepared = prepare_blocks(
        dataset.first, dataset.second, apply_purging=False, apply_filtering=False
    )
    pipeline = GeneralizedSupervisedMetaBlocking(
        feature_set=BLAST_FEATURE_SET, pruning="BLAST", training_size=50, seed=3
    )
    result = pipeline.run(prepared.blocks, prepared.candidates, dataset.ground_truth)
    return dataset, prepared, result


class TestBatchEquivalence:
    def test_streaming_reproduces_batch_retained_pairs(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        session = MatchingSession(FrozenModel.from_batch(result), bilateral=True)
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            session.insert(profile, side=side)
        final = session.retained()
        assert final.retained_id_set() == _batch_retained_ids(dataset, result)
        assert len(final.candidates) == len(result.candidates)

    def test_equivalence_holds_for_wep_pruning(self, streamed_fixture):
        dataset, prepared, result = streamed_fixture
        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET, pruning="WEP", training_size=50, seed=3
        )
        wep_result = pipeline.run(
            prepared.blocks, prepared.candidates, dataset.ground_truth
        )
        session = MatchingSession(
            FrozenModel.from_batch(wep_result), bilateral=True, pruning="WEP"
        )
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            session.insert(profile, side=side)
        assert session.retained().retained_id_set() == _batch_retained_ids(
            dataset, wep_result
        )


def _batch_retained_on_live(model, first, second, pruning):
    """Apply the frozen model + batch pruning to a live collection pair."""
    prepared = prepare_blocks(
        first, second, apply_purging=False, apply_filtering=False
    )
    stats = BlockStatistics(prepared.blocks)
    matrix = FeatureVectorGenerator(model.feature_set, backend="sparse").generate(
        prepared.candidates, stats
    )
    probabilities = model.score(matrix.values)
    if len(prepared.candidates) == 0:
        return set()
    mask = get_pruning_algorithm(pruning).prune(
        probabilities, prepared.candidates, prepared.blocks
    )
    size_first = len(first)
    return {
        (first[int(i)].entity_id, second[int(j) - size_first].entity_id)
        for i, j in zip(
            prepared.candidates.left[mask], prepared.candidates.right[mask]
        )
    }


class TestDynamicEquivalence:
    """Removal/update/bulk paths stay exactly batch-equivalent on fixtures."""

    @pytest.mark.parametrize("pruning", ["BLAST", "CEP", "RCNP"])
    def test_delete_heavy_replay_matches_batch_on_survivors(
        self, streamed_fixture, pruning
    ):
        dataset, _, result = streamed_fixture
        model = FrozenModel.from_batch(result)
        replay = replay_stream(
            dataset, model, pruning=pruning, delete_fraction=0.3, churn_seed=5
        )
        assert replay.num_deletes > 0
        index = replay.session.index
        live_first = EntityCollection(
            [p for p in dataset.first if index.has_entity(p.entity_id, 0)],
            name="live-1",
        )
        live_second = EntityCollection(
            [p for p in dataset.second if index.has_entity(p.entity_id, 1)],
            name="live-2",
        )
        batch = _batch_retained_on_live(model, live_first, live_second, pruning)
        assert replay.session.retained().retained_id_set() == batch

    def test_cardinality_pruning_matches_batch_without_churn(self, streamed_fixture):
        """The headline bugfix: CEP is exactly batch-equivalent while streaming."""
        dataset, prepared, _ = streamed_fixture
        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET, pruning="CEP", training_size=50, seed=3
        )
        cep_result = pipeline.run(
            prepared.blocks, prepared.candidates, dataset.ground_truth
        )
        session = MatchingSession(
            FrozenModel.from_batch(cep_result), bilateral=True, pruning="CEP"
        )
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            session.insert(profile, side=side)
        assert session.retained().retained_id_set() == _batch_retained_ids(
            dataset, cep_result
        )

    def test_bulk_insert_matches_per_entity_inserts(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        model = FrozenModel.from_batch(result)
        one_at_a_time = MatchingSession(model, bilateral=True)
        one_at_a_time.insert_many(dataset.first, side=0)
        one_at_a_time.insert_many(dataset.second, side=1)
        bulk = MatchingSession(model, bilateral=True)
        outcome_first = bulk.insert_bulk(list(dataset.first), side=0)
        outcome_second = bulk.insert_bulk(list(dataset.second), side=1)
        assert (
            outcome_first.num_new_pairs + outcome_second.num_new_pairs
            == one_at_a_time.num_pairs
        )
        assert bulk.retained().retained_id_set() == one_at_a_time.retained().retained_id_set()

    def test_update_rescores_against_current_statistics(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        model = FrozenModel.from_batch(result)
        session = MatchingSession(model, bilateral=True)
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            session.insert(profile, side=side)
        victim = dataset.first[0]
        outcome = session.update(victim, side=0)
        assert outcome.removed.entity_id == victim.entity_id
        assert outcome.inserted.entity_id == victim.entity_id
        # same profile re-inserted -> same live pair set as plain streaming
        assert session.retained().retained_id_set() == _batch_retained_ids(
            dataset, result
        )

    def test_remove_unknown_entity_raises_named_error(self, streamed_fixture):
        _, _, result = streamed_fixture
        session = MatchingSession(FrozenModel.from_batch(result), bilateral=True)
        session.insert(make_profile("a1", text="alpha beta"), side=0)
        with pytest.raises(UnknownEntityError, match="ghost"):
            session.remove("ghost", side=0)
        with pytest.raises(UnknownEntityError, match="a1"):
            session.remove("a1", side=1)  # wrong side is unknown too
        assert session.num_entities == 1

    def test_topk_policy_evicts_retracted_pairs(self, streamed_fixture):
        _, _, result = streamed_fixture
        session = MatchingSession(
            FrozenModel.from_batch(result), bilateral=True, online="topk", top_k=3
        )
        session.insert(make_profile("a1", text="alpha beta gamma"), side=0)
        session.insert(make_profile("b1", text="alpha beta gamma"), side=1)
        session.insert(make_profile("b2", text="alpha beta"), side=1)
        queue = session.online._queue
        occupied = len(queue)
        session.remove("a1", side=0)
        assert len(queue) < occupied or occupied == 0
        assert session.num_pairs == 0

    def test_online_wep_retraction_restores_threshold(self):
        policy = OnlineWEP()
        policy.admit(np.array([0.9, 0.2, 0.7]), np.arange(3))
        policy.retract(np.array([0.9]), np.array([0]))
        assert policy.threshold == pytest.approx(0.7)
        policy.retract(np.array([0.7, 0.2]), np.array([2, 1]))
        # empty aggregate resets exactly to the validity threshold
        assert policy.threshold == 0.5


class TestSessionBehaviour:
    def test_insert_reports_scored_matches(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        session = MatchingSession(FrozenModel.from_batch(result), bilateral=True)
        outcomes = []
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            outcomes.append(session.insert(profile, side=side))
        assert session.num_entities == len(dataset.first) + len(dataset.second)
        assert sum(o.num_new_pairs for o in outcomes) == session.num_pairs
        with_pairs = [o for o in outcomes if o.num_new_pairs]
        assert with_pairs, "the stream should produce candidate pairs"
        for outcome in with_pairs:
            assert outcome.probabilities.shape == (outcome.num_new_pairs,)
            assert np.all((outcome.probabilities >= 0) & (outcome.probabilities <= 1))
            assert len(outcome.counterpart_ids) == outcome.num_new_pairs
            # matches are sorted by decreasing probability and above 0.5
            probabilities = [p for _, p in outcome.matches]
            assert probabilities == sorted(probabilities, reverse=True)
            assert all(p >= 0.5 for p in probabilities)

    def test_insert_time_probabilities_align_with_pairs(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        session = MatchingSession(FrozenModel.from_batch(result), bilateral=True)
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            session.insert(profile, side=side)
        provisional = session.insert_time_probabilities()
        assert provisional.shape == (session.num_pairs,)

    def test_topk_policy_bounds_reported_matches(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        replay = replay_stream(
            dataset, FrozenModel.from_batch(result), online="topk", top_k=5
        )
        # the queue never admits more than its capacity per insert, and the
        # total number of simultaneously retained pairs is bounded by K
        assert replay.online_matches.max() <= 5
        assert isinstance(replay.session.online, OnlineTopK)

    def test_unknown_online_policy_rejected(self, streamed_fixture):
        _, _, result = streamed_fixture
        with pytest.raises(ValueError, match="unknown online policy"):
            MatchingSession(
                FrozenModel.from_batch(result), bilateral=True, online="bogus"
            )

    def test_frozen_model_requires_classifier(self, streamed_fixture):
        _, _, result = streamed_fixture
        stripped = type(result)(
            retained_mask=result.retained_mask,
            retained=result.retained,
            probabilities=result.probabilities,
            labels=result.labels,
            training_set=result.training_set,
            timer=result.timer,
        )
        with pytest.raises(ValueError, match="no classifier"):
            FrozenModel.from_batch(stripped)


class TestOnlineWEP:
    def test_running_threshold_tracks_valid_scores(self):
        policy = OnlineWEP()
        assert policy.threshold == 0.5
        admitted = policy.admit(np.array([0.9, 0.2, 0.7]), np.arange(3))
        assert policy.threshold == pytest.approx(0.8)
        assert admitted.tolist() == [True, False, False]
        admitted = policy.admit(np.array([0.85, 0.4]), np.arange(3, 5))
        # running average over {0.9, 0.7, 0.85}
        assert policy.threshold == pytest.approx((0.9 + 0.7 + 0.85) / 3)
        assert admitted.tolist() == [True, False]


class TestBootstrapTraining:
    def test_train_frozen_model_on_bootstrap(self):
        dataset = load_benchmark("DblpAcm", seed=7, scale=0.15)
        model = train_frozen_model(dataset, bootstrap_fraction=0.6, seed=1)
        assert model.feature_set == tuple(BLAST_FEATURE_SET)
        scores = model.score(np.zeros((3, len(model.feature_set))))
        assert scores.shape == (3,)

    def test_bootstrap_without_duplicates_raises_clear_error(self):
        dataset = load_benchmark("DblpAcm", seed=7, scale=0.15)
        # ground truth restricted to a prefix with no duplicate: build a
        # dataset whose duplicates all live outside the bootstrap
        truncated = type(dataset)(
            name=dataset.name,
            first=dataset.first,
            second=dataset.second,
            ground_truth=type(dataset.ground_truth)(
                [(0, len(dataset.first) + len(dataset.second) - 1)],
                dataset.ground_truth.index_space,
            ),
            profile=dataset.profile,
        )
        with pytest.raises(StreamTrainingError, match="no ground-truth duplicate"):
            split_bootstrap(truncated, 0.02)

    def test_bootstrap_fraction_validated(self):
        dataset = load_benchmark("DblpAcm", seed=7, scale=0.15)
        with pytest.raises(ValueError, match="fraction"):
            split_bootstrap(dataset, 0.0)
