"""MatchingSession behaviour + exact batch equivalence on fixture datasets.

The acceptance invariant: inserting every entity of a benchmark one at a
time through a :class:`MatchingSession` holding the batch run's frozen
classifier, then asking for the exact answer, reproduces the batch
pipeline's retained pairs on the final collection — verified here on two
generated fixture datasets (DblpAcm and AbtBuy) and two pruning algorithms.
"""

import numpy as np
import pytest

from repro.blocking import prepare_blocks
from repro.core import GeneralizedSupervisedMetaBlocking
from repro.datamodel import make_profile
from repro.datasets import load_benchmark
from repro.incremental import (
    FrozenModel,
    MatchingSession,
    OnlineTopK,
    OnlineWEP,
    StreamTrainingError,
    interleave_profiles,
    replay_stream,
    split_bootstrap,
    train_frozen_model,
)
from repro.weights import BLAST_FEATURE_SET


def _batch_retained_ids(dataset, result):
    size_first = len(dataset.first)
    return {
        (
            dataset.first[int(i)].entity_id,
            dataset.second[int(j) - size_first].entity_id,
        )
        for i, j in zip(result.retained.left, result.retained.right)
    }


@pytest.fixture(scope="module", params=["DblpAcm", "AbtBuy"])
def streamed_fixture(request):
    """One benchmark, its batch pipeline run, and the frozen model."""
    dataset = load_benchmark(request.param, seed=11, scale=0.15)
    prepared = prepare_blocks(
        dataset.first, dataset.second, apply_purging=False, apply_filtering=False
    )
    pipeline = GeneralizedSupervisedMetaBlocking(
        feature_set=BLAST_FEATURE_SET, pruning="BLAST", training_size=50, seed=3
    )
    result = pipeline.run(prepared.blocks, prepared.candidates, dataset.ground_truth)
    return dataset, prepared, result


class TestBatchEquivalence:
    def test_streaming_reproduces_batch_retained_pairs(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        session = MatchingSession(FrozenModel.from_batch(result), bilateral=True)
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            session.insert(profile, side=side)
        final = session.retained()
        assert final.retained_id_set() == _batch_retained_ids(dataset, result)
        assert len(final.candidates) == len(result.candidates)

    def test_equivalence_holds_for_wep_pruning(self, streamed_fixture):
        dataset, prepared, result = streamed_fixture
        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET, pruning="WEP", training_size=50, seed=3
        )
        wep_result = pipeline.run(
            prepared.blocks, prepared.candidates, dataset.ground_truth
        )
        session = MatchingSession(
            FrozenModel.from_batch(wep_result), bilateral=True, pruning="WEP"
        )
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            session.insert(profile, side=side)
        assert session.retained().retained_id_set() == _batch_retained_ids(
            dataset, wep_result
        )


class TestSessionBehaviour:
    def test_insert_reports_scored_matches(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        session = MatchingSession(FrozenModel.from_batch(result), bilateral=True)
        outcomes = []
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            outcomes.append(session.insert(profile, side=side))
        assert session.num_entities == len(dataset.first) + len(dataset.second)
        assert sum(o.num_new_pairs for o in outcomes) == session.num_pairs
        with_pairs = [o for o in outcomes if o.num_new_pairs]
        assert with_pairs, "the stream should produce candidate pairs"
        for outcome in with_pairs:
            assert outcome.probabilities.shape == (outcome.num_new_pairs,)
            assert np.all((outcome.probabilities >= 0) & (outcome.probabilities <= 1))
            assert len(outcome.counterpart_ids) == outcome.num_new_pairs
            # matches are sorted by decreasing probability and above 0.5
            probabilities = [p for _, p in outcome.matches]
            assert probabilities == sorted(probabilities, reverse=True)
            assert all(p >= 0.5 for p in probabilities)

    def test_insert_time_probabilities_align_with_pairs(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        session = MatchingSession(FrozenModel.from_batch(result), bilateral=True)
        for profile, side in interleave_profiles(dataset.first, dataset.second):
            session.insert(profile, side=side)
        provisional = session.insert_time_probabilities()
        assert provisional.shape == (session.num_pairs,)

    def test_topk_policy_bounds_reported_matches(self, streamed_fixture):
        dataset, _, result = streamed_fixture
        replay = replay_stream(
            dataset, FrozenModel.from_batch(result), online="topk", top_k=5
        )
        # the queue never admits more than its capacity per insert, and the
        # total number of simultaneously retained pairs is bounded by K
        assert replay.online_matches.max() <= 5
        assert isinstance(replay.session.online, OnlineTopK)

    def test_unknown_online_policy_rejected(self, streamed_fixture):
        _, _, result = streamed_fixture
        with pytest.raises(ValueError, match="unknown online policy"):
            MatchingSession(
                FrozenModel.from_batch(result), bilateral=True, online="bogus"
            )

    def test_frozen_model_requires_classifier(self, streamed_fixture):
        _, _, result = streamed_fixture
        stripped = type(result)(
            retained_mask=result.retained_mask,
            retained=result.retained,
            probabilities=result.probabilities,
            labels=result.labels,
            training_set=result.training_set,
            timer=result.timer,
        )
        with pytest.raises(ValueError, match="no classifier"):
            FrozenModel.from_batch(stripped)


class TestOnlineWEP:
    def test_running_threshold_tracks_valid_scores(self):
        policy = OnlineWEP()
        assert policy.threshold == 0.5
        admitted = policy.admit(np.array([0.9, 0.2, 0.7]), np.arange(3))
        assert policy.threshold == pytest.approx(0.8)
        assert admitted.tolist() == [True, False, False]
        admitted = policy.admit(np.array([0.85, 0.4]), np.arange(3, 5))
        # running average over {0.9, 0.7, 0.85}
        assert policy.threshold == pytest.approx((0.9 + 0.7 + 0.85) / 3)
        assert admitted.tolist() == [True, False]


class TestBootstrapTraining:
    def test_train_frozen_model_on_bootstrap(self):
        dataset = load_benchmark("DblpAcm", seed=7, scale=0.15)
        model = train_frozen_model(dataset, bootstrap_fraction=0.6, seed=1)
        assert model.feature_set == tuple(BLAST_FEATURE_SET)
        scores = model.score(np.zeros((3, len(model.feature_set))))
        assert scores.shape == (3,)

    def test_bootstrap_without_duplicates_raises_clear_error(self):
        dataset = load_benchmark("DblpAcm", seed=7, scale=0.15)
        # ground truth restricted to a prefix with no duplicate: build a
        # dataset whose duplicates all live outside the bootstrap
        truncated = type(dataset)(
            name=dataset.name,
            first=dataset.first,
            second=dataset.second,
            ground_truth=type(dataset.ground_truth)(
                [(0, len(dataset.first) + len(dataset.second) - 1)],
                dataset.ground_truth.index_space,
            ),
            profile=dataset.profile,
        )
        with pytest.raises(StreamTrainingError, match="no ground-truth duplicate"):
            split_bootstrap(truncated, 0.02)

    def test_bootstrap_fraction_validated(self):
        dataset = load_benchmark("DblpAcm", seed=7, scale=0.15)
        with pytest.raises(ValueError, match="fraction"):
            split_bootstrap(dataset, 0.0)
