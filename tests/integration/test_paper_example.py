"""Integration test on the paper's running example (Figures 1-4).

The seven smartphone profiles of Figure 1 are blocked with Token Blocking,
and the resulting blocks, candidate pairs and meta-blocking behaviour are
checked against the paper's narrative: all three duplicate pairs co-occur in
at least one block, and meta-blocking removes superfluous comparisons without
losing the matches.
"""

import numpy as np
import pytest

from repro.blocking import TokenBlocking, extract_candidates
from repro.core import GeneralizedSupervisedMetaBlocking
from repro.datamodel import CandidateSet
from repro.evaluation import evaluate_candidates, evaluate_retained_mask
from repro.metablocking import UnsupervisedWNP, build_blocking_graph
from repro.weights import BlockStatistics, CommonBlocksScheme


@pytest.fixture(scope="module")
def example_blocks(paper_example_profiles):
    first, second, _ = paper_example_profiles
    return TokenBlocking().build_blocks(first, second)


class TestPaperExample:
    def test_duplicates_share_blocks(self, example_blocks, paper_example_profiles):
        _, _, truth = paper_example_profiles
        stats = BlockStatistics(example_blocks)
        for left, right in truth:
            assert stats.common_block_count(left, right) >= 1

    def test_blocking_achieves_perfect_recall(self, example_blocks, paper_example_profiles):
        _, _, truth = paper_example_profiles
        candidates = extract_candidates(example_blocks)
        report = evaluate_candidates(candidates, truth)
        assert report.recall == 1.0
        assert report.precision < 1.0  # superfluous comparisons exist

    def test_redundant_comparisons_removed(self, example_blocks):
        total_with_redundancy = example_blocks.total_comparisons()
        distinct = len(extract_candidates(example_blocks))
        assert distinct < total_with_redundancy

    def test_common_blocks_weighting_matches_figure2(
        self, example_blocks, paper_example_profiles
    ):
        """In Figure 2a the edge e1-e3 has weight 3 (apple, iphone, smartphone)."""
        first, second, _ = paper_example_profiles
        candidates = extract_candidates(example_blocks)
        stats = BlockStatistics(example_blocks)
        weights = CommonBlocksScheme().compute(candidates, stats)[:, 0]
        position = candidates.position_index()[
            (first.index_of("e1"), len(first) + second.index_of("e3"))
        ]
        assert weights[position] == 3.0

    def test_unsupervised_meta_blocking_keeps_matches(
        self, example_blocks, paper_example_profiles
    ):
        _, _, truth = paper_example_profiles
        graph = build_blocking_graph(example_blocks, scheme="CBS")
        mask = UnsupervisedWNP().prune(graph, example_blocks)
        labels = truth.labels_for(graph.candidates)
        report = evaluate_retained_mask(mask, labels, len(truth))
        assert report.recall == 1.0
        assert mask.sum() < graph.edge_count  # some superfluous pairs pruned

    def test_supervised_pipeline_on_tiny_example(self, example_blocks, paper_example_profiles):
        """The supervised pipeline degrades gracefully on a 3-duplicate toy input."""
        _, _, truth = paper_example_profiles
        candidates = extract_candidates(example_blocks)
        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=("CF-IBF", "RACCB", "JS"),
            pruning="BLAST",
            training_size=6,
            seed=0,
        )
        result = pipeline.run(example_blocks, candidates, truth)
        report = evaluate_retained_mask(result.retained_mask, result.labels, len(truth))
        assert report.recall >= 2 / 3
