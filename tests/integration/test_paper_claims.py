"""Integration tests for the paper's headline claims.

These run the full pipeline on generated benchmark datasets and assert the
*qualitative* findings of the evaluation section — the direction of every
comparison, not the absolute numbers (our substrate is a synthetic generator,
not the original corpora).
"""

import numpy as np
import pytest

from repro.core import GeneralizedSupervisedMetaBlocking
from repro.evaluation import ExperimentRunner, average_over_datasets, evaluate_result
from repro.weights import BLAST_FEATURE_SET, ORIGINAL_FEATURE_SET, RCNP_FEATURE_SET


@pytest.fixture(scope="module")
def datasets(prepared_abtbuy, prepared_dblpacm):
    return [prepared_abtbuy, prepared_dblpacm]


def run_algorithms(datasets, configurations, repetitions=2, seed=0):
    runner = ExperimentRunner(repetitions=repetitions, seed=seed)
    outcomes = runner.run_matrix(configurations, datasets)
    return average_over_datasets(outcomes)


class TestClaimBlastVsBaseline:
    """Section 5.2/5.3: BLAST outperforms the BCl baseline on precision and F1."""

    def test_blast_beats_bcl_on_f1(self, datasets):
        averages = run_algorithms(
            datasets,
            {
                "BLAST": GeneralizedSupervisedMetaBlocking(
                    feature_set=BLAST_FEATURE_SET, pruning="BLAST", training_size=50
                ),
                "BCl": GeneralizedSupervisedMetaBlocking(
                    feature_set=ORIGINAL_FEATURE_SET, pruning="BCl", training_size=50
                ),
            },
        )
        assert averages["BLAST"].precision >= averages["BCl"].precision
        assert averages["BLAST"].f1 >= averages["BCl"].f1
        # and recall stays comparable (within a few points)
        assert averages["BLAST"].recall >= averages["BCl"].recall - 0.07


class TestClaimRcnpVsCnp:
    """Section 5.2: RCNP trades a little recall for clearly higher precision than CNP."""

    def test_rcnp_beats_cnp_on_precision_and_f1(self, datasets):
        averages = run_algorithms(
            datasets,
            {
                "RCNP": GeneralizedSupervisedMetaBlocking(
                    feature_set=RCNP_FEATURE_SET, pruning="RCNP", training_size=50
                ),
                "CNP": GeneralizedSupervisedMetaBlocking(
                    feature_set=RCNP_FEATURE_SET, pruning="CNP", training_size=50
                ),
            },
        )
        assert averages["RCNP"].precision >= averages["CNP"].precision
        assert averages["RCNP"].f1 >= averages["CNP"].f1


class TestClaimDeeperPruningOrdering:
    """Reciprocal variants prune deeper: RWNP ⊆ WNP and precision is not lower."""

    def test_rwnp_vs_wnp(self, prepared_abtbuy):
        reports = {}
        retained = {}
        for pruning in ("WNP", "RWNP"):
            pipeline = GeneralizedSupervisedMetaBlocking(
                feature_set=ORIGINAL_FEATURE_SET, pruning=pruning, training_size=50, seed=1
            )
            result = pipeline.run(
                prepared_abtbuy.blocks,
                prepared_abtbuy.candidates,
                prepared_abtbuy.ground_truth,
                stats=prepared_abtbuy.statistics(),
            )
            reports[pruning] = evaluate_result(result, prepared_abtbuy.ground_truth)
            retained[pruning] = result.retained_count
        assert retained["RWNP"] <= retained["WNP"]
        assert reports["RWNP"].precision >= reports["WNP"].precision


class TestClaimSmallTrainingSetSuffices:
    """Section 5.4: 50 labelled instances already achieve high effectiveness.

    The paper's strong form (F1 *drops* as the training set grows) depends on
    the probability distribution of the original corpora; on the synthetic
    benchmarks we assert the robust form: recall with 50 labels stays at the
    level reached with 500, and F1 stays within the same order of magnitude.
    """

    def test_fifty_labels_already_effective(self, prepared_abtbuy):
        reports = {}
        for size in (50, 500):
            pipeline = GeneralizedSupervisedMetaBlocking(
                feature_set=BLAST_FEATURE_SET, pruning="BLAST", training_size=size, seed=2
            )
            runner = ExperimentRunner(repetitions=3, seed=2)
            reports[size] = runner.run_pipeline(pipeline, prepared_abtbuy).report
        assert reports[50].recall >= reports[500].recall - 0.05
        assert reports[50].f1 >= 0.5 * reports[500].f1
        assert reports[50].f1 > 0.2  # far above the input block collection's F1

    def test_recall_does_not_collapse_with_small_training(self, prepared_dblpacm):
        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET, pruning="BLAST", training_size=50, seed=0
        )
        result = pipeline.run(
            prepared_dblpacm.blocks,
            prepared_dblpacm.candidates,
            prepared_dblpacm.ground_truth,
            stats=prepared_dblpacm.statistics(),
        )
        report = evaluate_result(result, prepared_dblpacm.ground_truth)
        assert report.recall > 0.9


class TestClaimLcpIsExpensive:
    """Section 5.3: dropping LCP from a feature set never slows it down.

    The paper's absolute speed-ups come from its Spark implementation at full
    dataset scale; the scale-independent form of the claim is that adding LCP
    to an otherwise identical feature set adds measurable work (it has to
    iterate over every block of every entity) and never makes it faster.
    """

    def test_adding_lcp_adds_feature_time(self, prepared_abtbuy):
        import time

        from repro.core import FeatureVectorGenerator
        from repro.weights import BlockStatistics

        base_features = ("CF-IBF", "RACCB", "JS")

        def measure(feature_set):
            stats = BlockStatistics(prepared_abtbuy.blocks)  # fresh, uncached LCP
            start = time.perf_counter()
            FeatureVectorGenerator(feature_set).generate(prepared_abtbuy.candidates, stats)
            return time.perf_counter() - start

        without_lcp = min(measure(base_features) for _ in range(3))
        with_lcp = min(measure(base_features + ("LCP",)) for _ in range(3))
        assert without_lcp <= with_lcp * 1.1


class TestClaimMetaBlockingImprovesBlocks:
    """Definition 2: Pr(B') >> Pr(B) while Re(B') ~ Re(B), on every dataset."""

    @pytest.mark.parametrize("fixture_name", ["prepared_abtbuy", "prepared_dblpacm"])
    def test_precision_gain(self, request, fixture_name):
        from repro.evaluation import evaluate_candidates

        dataset = request.getfixturevalue(fixture_name)
        input_report = evaluate_candidates(dataset.candidates, dataset.ground_truth)
        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET, pruning="BLAST", training_size=50, seed=0
        )
        result = pipeline.run(
            dataset.blocks, dataset.candidates, dataset.ground_truth, stats=dataset.statistics()
        )
        output_report = evaluate_result(result, dataset.ground_truth)
        assert output_report.precision > 3 * input_report.precision
        assert output_report.recall > 0.75 * input_report.recall
