"""Golden regression test for the sharded execution engine on DblpAcm.

The exact outcome of a ``workers=2`` run on a deterministic generated
DblpAcm benchmark (seed 3, scale 0.4) is frozen into
``tests/data/golden_parallel.json``: block counts, a digest of all
candidate pairs, a digest of the full 9-scheme feature matrix, and the
retained-pair digests of a weight-based and a cardinality-based pipeline.
The fixture is generated from the *single-process* path and checked against
the parallel one, so a drift in either — even one affecting both
identically, which the equivalence tests cannot see — fails here.

To regenerate the fixture after an *intentional* semantic change::

    PYTHONPATH=src python tests/parallel/test_golden_parallel.py --regenerate
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.blocking import prepare_blocks
from repro.core.features import generate_features
from repro.core.pipeline import GeneralizedSupervisedMetaBlocking
from repro.datasets import load_benchmark
from repro.weights import PAPER_FEATURES

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_parallel.json"

DATASET, SEED, SCALE = "DblpAcm", 3, 0.4
ALL_SCHEMES = tuple(PAPER_FEATURES) + ("CBS",)


def _digest(array) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _snapshot(workers: int):
    dataset = load_benchmark(DATASET, seed=SEED, scale=SCALE)
    prepared = prepare_blocks(dataset.first, dataset.second, workers=workers)
    matrix = generate_features(
        prepared.candidates,
        prepared.blocks,
        feature_set=ALL_SCHEMES,
        stats=prepared.statistics(),
        backend="sparse",
        workers=workers,
    )
    retained = {}
    for pruning in ("BLAST", "RCNP"):
        result = GeneralizedSupervisedMetaBlocking(
            pruning=pruning, training_size=50, seed=0, workers=workers
        ).run(
            prepared.blocks,
            prepared.candidates,
            dataset.ground_truth,
            stats=prepared.statistics(),
        )
        retained[pruning] = {
            "count": result.retained_count,
            "digest": _digest(
                np.stack((result.retained.left, result.retained.right))
            ),
        }
    return {
        "raw_blocks": len(prepared.raw_blocks),
        "filtered_blocks": len(prepared.blocks),
        "candidate_pairs": len(prepared.candidates),
        "pair_digest": _digest(np.stack((prepared.candidates.left, prepared.candidates.right))),
        "feature_columns": list(matrix.columns),
        "feature_digest": _digest(matrix.values),
        "retained": retained,
    }


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def test_parallel_run_matches_golden(golden):
    assert _snapshot(workers=2) == golden["snapshot"], (
        "the sharded engine (workers=2) deviates from the frozen "
        "single-process DblpAcm fixture; regenerate only if the change is "
        "intentional"
    )


def test_golden_fixture_is_nontrivial(golden):
    snapshot = golden["snapshot"]
    assert snapshot["candidate_pairs"] > 1000
    assert snapshot["retained"]["BLAST"]["count"] > 0
    assert snapshot["retained"]["RCNP"]["count"] > 0
    assert len(snapshot["feature_columns"]) == 10  # 8 one-column + LCP twice


def _regenerate() -> None:
    payload = {
        "description": (
            f"Frozen single-process (workers=1) outcome on {DATASET} "
            f"(seed {SEED}, scale {SCALE}); the parallel engine is checked "
            "against it"
        ),
        "snapshot": _snapshot(workers=1),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
