"""Equivalence tests: ``workers=K`` vs the ``workers=1`` oracle.

The sharded execution engine must be *bit-identical* to the single-process
path for every worker count: prepared blocks (raw/purged/filtered,
key-for-key and member-for-member), candidate sets, the handed-over CSR,
all 9 feature schemes, and the retained mask of every pruning algorithm —
including under probability ties, which exercise the deterministic
packed-key tie-breaking across worker boundaries.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blocking import prepare_blocks
from repro.core.features import generate_features
from repro.core.pruning import PRUNING_ALGORITHMS, get_pruning_algorithm
from repro.datamodel import EntityCollection, make_profile
from repro.parallel import ParallelExecutor, parallel_prune
from repro.weights import PAPER_FEATURES

#: a small vocabulary (stop-words included) so random texts collide heavily
WORDS = (
    "apple", "samsung", "phone", "smartphone", "mate", "fold", "x",
    "s20", "20", "the", "and", "a", "pro", "mini",
)

#: all 9 registered schemes — the full feature surface
ALL_SCHEMES = tuple(PAPER_FEATURES) + ("CBS",)

SLOW_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_collection(token_rows, name):
    profiles = [
        make_profile(f"{name}-{position}", text=" ".join(row))
        for position, row in enumerate(token_rows)
    ]
    return EntityCollection(profiles, name=name)


@st.composite
def collections(draw, name, min_entities=1, max_entities=10):
    n_entities = draw(st.integers(min_entities, max_entities))
    rows = [
        draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=6))
        for _ in range(n_entities)
    ]
    return make_collection(rows, name)


@pytest.fixture(scope="module", params=[2, 4])
def executor(request):
    """Module-scoped executors so Hypothesis examples share one pool."""
    with ParallelExecutor(request.param) as live:
        yield live


def assert_prepared_equal(serial, sharded):
    for attribute in ("raw_blocks", "purged_blocks", "blocks"):
        blocks_serial = list(getattr(serial, attribute))
        blocks_sharded = list(getattr(sharded, attribute))
        assert [b.key for b in blocks_serial] == [b.key for b in blocks_sharded]
        for left, right in zip(blocks_serial, blocks_sharded):
            assert left.entities_first == right.entities_first
            assert left.entities_second == right.entities_second
    assert np.array_equal(serial.candidates.left, sharded.candidates.left)
    assert np.array_equal(serial.candidates.right, sharded.candidates.right)
    assert np.array_equal(serial.csr.indptr, sharded.csr.indptr)
    assert np.array_equal(serial.csr.indices, sharded.csr.indices)


@SLOW_SETTINGS
@given(
    first=collections("first"),
    second=st.one_of(st.none(), collections("second", max_entities=6)),
    apply_purging=st.booleans(),
    apply_filtering=st.booleans(),
)
def test_prepared_blocks_bit_identical(
    executor, first, second, apply_purging, apply_filtering
):
    serial = prepare_blocks(
        first, second, apply_purging=apply_purging, apply_filtering=apply_filtering
    )
    sharded = prepare_blocks(
        first,
        second,
        apply_purging=apply_purging,
        apply_filtering=apply_filtering,
        executor=executor,
    )
    assert_prepared_equal(serial, sharded)


@SLOW_SETTINGS
@given(
    first=collections("first", min_entities=2),
    second=st.one_of(st.none(), collections("second", max_entities=6)),
)
def test_all_feature_schemes_bit_identical(executor, first, second):
    serial = prepare_blocks(first, second)
    matrix_serial = generate_features(
        serial.candidates,
        serial.blocks,
        feature_set=ALL_SCHEMES,
        stats=serial.statistics(),
        backend="sparse",
    )
    sharded = prepare_blocks(first, second, executor=executor)
    matrix_sharded = generate_features(
        sharded.candidates,
        sharded.blocks,
        feature_set=ALL_SCHEMES,
        stats=sharded.statistics(),
        backend="sparse",
        executor=executor,
    )
    assert matrix_serial.columns == matrix_sharded.columns
    assert np.array_equal(matrix_serial.values, matrix_sharded.values)


def tie_heavy_probabilities(candidates):
    """Deterministic pseudo-probabilities quantised into heavy ties.

    Quantisation forces many exact probability ties, so any worker-boundary
    sensitivity in the tie-breaking of the cardinality algorithms would
    surface as a mask difference.
    """
    keys = candidates.packed_keys()
    raw = (keys * np.int64(2654435761)) % np.int64(1000)
    return np.round(raw / 999.0, 1)


@SLOW_SETTINGS
@given(
    first=collections("first", min_entities=3, max_entities=12),
    second=st.one_of(st.none(), collections("second", max_entities=8)),
)
def test_all_pruning_algorithms_bit_identical(executor, first, second):
    prepared = prepare_blocks(first, second)
    if len(prepared.candidates) == 0:
        return
    probabilities = tie_heavy_probabilities(prepared.candidates)
    for name in sorted(PRUNING_ALGORITHMS):
        serial = get_pruning_algorithm(name).prune(
            probabilities, prepared.candidates, prepared.blocks
        )
        sharded = parallel_prune(
            get_pruning_algorithm(name),
            probabilities,
            prepared.candidates,
            prepared.blocks,
            executor,
        )
        assert np.array_equal(serial, sharded), f"{name} mask differs"


def test_loop_backends_reject_workers():
    first = make_collection([["apple", "phone"], ["apple", "mate"]], "first")
    with pytest.raises(ValueError, match="array"):
        prepare_blocks(first, None, backend="loop", workers=2)
    from repro.core.features import FeatureVectorGenerator

    with pytest.raises(ValueError, match="sparse"):
        FeatureVectorGenerator(("JS",), backend="loop", workers=2)
