"""End-to-end ``workers`` equivalence and knob threading.

The full pipeline — block preparation, feature generation, training,
scoring, pruning — must produce identical results for every worker count,
including the stochastic stages: training-set sampling and classifier
fitting run in the parent on the single RNG entrypoint
(:mod:`repro.utils.rng`), so the drawn indices and the probabilities are
bit-identical regardless of ``--workers``.
"""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.core.pipeline import GeneralizedSupervisedMetaBlocking
from repro.datasets import load_benchmark
from repro.experiments import ExperimentConfig
from repro.experiments.common import blast_pipeline, prepare_benchmark_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_benchmark("DblpAcm", seed=11, scale=0.3)


@pytest.fixture(scope="module")
def serial_result(dataset):
    pipeline = GeneralizedSupervisedMetaBlocking(
        pruning="RCNP", training_size=50, seed=0
    )
    return pipeline.run_on_collections(dataset.first, dataset.second, dataset.ground_truth)


@pytest.mark.parametrize("workers", [2, 3])
def test_pipeline_bit_identical_across_worker_counts(dataset, serial_result, workers):
    pipeline = GeneralizedSupervisedMetaBlocking(
        pruning="RCNP", training_size=50, seed=0, workers=workers
    )
    result = pipeline.run_on_collections(
        dataset.first, dataset.second, dataset.ground_truth
    )
    # stochastic stages: the single RNG entrypoint stays in the parent, so
    # the sampled training set is identical for every worker count
    assert np.array_equal(
        serial_result.training_set.candidate_indices,
        result.training_set.candidate_indices,
    )
    assert np.array_equal(serial_result.probabilities, result.probabilities)
    assert np.array_equal(serial_result.labels, result.labels)
    assert np.array_equal(serial_result.retained_mask, result.retained_mask)
    assert np.array_equal(serial_result.retained.left, result.retained.left)
    assert np.array_equal(serial_result.retained.right, result.retained.right)


def test_workers_do_not_consume_the_global_numpy_stream(dataset):
    """Parallel stages never touch NumPy's global RNG state."""
    np.random.seed(1234)
    state_before = np.random.get_state()[1].copy()
    pipeline = GeneralizedSupervisedMetaBlocking(
        pruning="BLAST", training_size=50, seed=3, workers=2
    )
    pipeline.run_on_collections(dataset.first, dataset.second, dataset.ground_truth)
    assert np.array_equal(state_before, np.random.get_state()[1])


def test_prepared_dataset_threading(dataset):
    serial = prepare_benchmark_dataset("DblpAcm", seed=11, scale=0.3)
    sharded = prepare_benchmark_dataset("DblpAcm", seed=11, scale=0.3, workers=2)
    assert np.array_equal(serial.candidates.left, sharded.candidates.left)
    assert np.array_equal(serial.candidates.right, sharded.candidates.right)


def test_experiment_config_threads_workers():
    config = ExperimentConfig.fast(workers=2)
    assert blast_pipeline(config).workers == 2
    assert GeneralizedSupervisedMetaBlocking(workers="auto").workers >= 1


class TestCliWorkersFlag:
    def test_default_and_explicit(self):
        parser = build_parser()
        assert parser.parse_args(["quickstart"]).workers == 1
        assert parser.parse_args(["quickstart", "--workers", "4"]).workers == 4
        assert parser.parse_args(["run", "fig5", "--workers", "2"]).workers == 2

    def test_auto(self):
        args = build_parser().parse_args(["quickstart", "--workers", "auto"])
        assert args.workers == "auto"

    @pytest.mark.parametrize("bad", ["0", "-3", "many"])
    def test_rejects_invalid(self, bad, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--workers", bad])
        assert "workers" in capsys.readouterr().err
