"""Unit tests for the parallel engine's building blocks.

Shared-memory round-trips, worker-knob resolution, deterministic range
splitting and stable shard planning — the pieces every parallel stage is
built from.
"""

import numpy as np
import pytest

from repro.datamodel import EntityCollection, make_profile
from repro.parallel import (
    ParallelExecutor,
    ShardPlanner,
    SharedArray,
    attach_view,
    resolve_workers,
    shard_of_signature,
    split_ranges,
    stable_hash,
)


class TestResolveWorkers:
    def test_defaults_and_auto(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers("3") == 3
        assert resolve_workers("auto") >= 1

    @pytest.mark.parametrize("bad", [0, -2, "zero", "", 2.5, True, "-1"])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)


class TestSplitRanges:
    def test_covers_without_overlap(self):
        for n in (0, 1, 5, 17, 100):
            for parts in (1, 2, 3, 7):
                ranges = split_ranges(n, parts)
                flat = [i for start, stop in ranges for i in range(start, stop)]
                assert flat == list(range(n))
                assert all(stop > start for start, stop in ranges)

    def test_never_more_parts_than_items(self):
        assert len(split_ranges(2, 8)) == 2
        assert split_ranges(0, 4) == []


class TestSharedArray:
    def test_roundtrip(self):
        source = np.arange(17, dtype=np.float64) * 0.5
        shared = SharedArray(source)
        try:
            view = attach_view(shared.handle)
            assert np.array_equal(view, source)
            assert view.dtype == source.dtype
        finally:
            shared.close()

    def test_output_allocation(self):
        with ParallelExecutor(1) as executor:
            handle, view = executor.allocate_output((5,), np.float64)
            assert np.array_equal(view, np.zeros(5))
            view[:] = 3.0
            assert np.array_equal(attach_view(handle), np.full(5, 3.0))

    def test_publish_keeps_temporaries_distinct(self):
        # regression: publish() must hold the source reference — otherwise a
        # garbage-collected temporary frees its id and a later publish of a
        # different temporary can alias the stale segment
        with ParallelExecutor(1) as executor:
            base = np.arange(1000, dtype=np.float64)
            handles = [executor.publish(base * scale) for scale in (1.0, 2.0, 3.0)]
            views = [attach_view(handle) for handle in handles]
            for scale, view in zip((1.0, 2.0, 3.0), views):
                assert np.array_equal(view, base * scale)

    def test_publish_idempotent_per_object(self):
        with ParallelExecutor(1) as executor:
            array = np.arange(10, dtype=np.int64)
            assert executor.publish(array) == executor.publish(array)


class TestExecutorDispatch:
    def test_inline_when_single_worker(self):
        with ParallelExecutor(1) as executor:
            assert executor._pool is None
            results = executor.starmap(divmod, [(7, 3), (9, 2)])
            assert results == [(2, 1), (4, 1)]
            assert executor._pool is None  # never built a pool

    def test_pool_dispatch_preserves_order(self):
        with ParallelExecutor(2) as executor:
            results = executor.starmap(divmod, [(n, 3) for n in range(8)])
            assert results == [divmod(n, 3) for n in range(8)]

    def test_closed_executor_refuses_work(self):
        executor = ParallelExecutor(2)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.starmap(divmod, [(1, 1), (2, 1)])


class TestExecutorLifecycle:
    """The daemon keeps one executor alive for its whole lifetime, so the
    close path must be idempotent, context-manager safe, and leak-free."""

    def test_double_close_is_a_noop(self):
        executor = ParallelExecutor(2)
        executor.starmap(divmod, [(7, 3), (9, 2)])
        executor.close()
        assert executor.closed
        executor.close()  # second close must not raise
        assert executor.closed

    def test_context_manager_after_explicit_close(self):
        with ParallelExecutor(2) as executor:
            executor.close()
        assert executor.closed  # __exit__ after close() must not raise

    def test_publish_after_close_refused(self):
        executor = ParallelExecutor(2)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.publish(np.arange(4))

    def test_allocate_output_after_close_refused(self):
        executor = ParallelExecutor(2)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.allocate_output((4,), np.int64)

    def test_close_unlinks_published_segments(self):
        executor = ParallelExecutor(2)
        source = np.arange(16, dtype=np.int64)
        handle = executor.publish(source)
        handle_out, _ = executor.allocate_output((4,), np.float64)
        executor.close()
        for stale in (handle, handle_out):
            with pytest.raises(FileNotFoundError):
                attach_view(stale)

    def test_close_runs_even_without_pool(self):
        # lazily-created pool: closing a never-used executor is safe
        executor = ParallelExecutor(2)
        executor.close()
        executor.close()
        assert executor.closed


class TestShardPlanner:
    def test_stable_hash_is_process_independent(self):
        # frozen values: a salted hash would break cross-run reproducibility
        assert stable_hash("apple") == 2838417488
        assert shard_of_signature("apple", 4) == stable_hash("apple") % 4

    def test_plan_preserves_global_node_ids(self):
        first = EntityCollection(
            [make_profile(f"a{i}", t="x") for i in range(5)], name="first"
        )
        second = EntityCollection(
            [make_profile(f"b{i}", t="y") for i in range(3)], name="second"
        )
        shards = ShardPlanner(3).plan(first, second)
        nodes = np.sort(np.concatenate([shard.nodes for shard in shards]))
        assert np.array_equal(nodes, np.arange(8))
        for shard in shards:
            for profile, node in zip(shard.profiles, shard.nodes):
                expected = (
                    first[int(node)].entity_id
                    if node < 5
                    else second[int(node) - 5].entity_id
                )
                assert profile.entity_id == expected

    def test_assignment_is_a_pure_function_of_the_id(self):
        planner = ShardPlanner(4)
        assert planner.shard_of("e42") == ShardPlanner(4).shard_of("e42")
        with pytest.raises(ValueError):
            ShardPlanner(0)
