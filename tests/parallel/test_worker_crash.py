"""Regression: a SIGKILLed pool worker raises a named error, never hangs.

``multiprocessing.Pool`` silently never completes a task whose worker died
— before crash detection, :meth:`ParallelExecutor.starmap` would wait
forever.  The executor now watches the pool's pids while collecting and
raises :class:`WorkerCrashError` naming the still-outstanding task indices
(the shard numbers, for the sharded stages).
"""

import os
import signal

import pytest

from repro.parallel import ParallelExecutor, WorkerCrashError


def _maybe_die(index, victim):
    if index == victim:
        os.kill(os.getpid(), signal.SIGKILL)
    return index


def _echo(index):
    return index


class TestWorkerCrashDetection:
    def test_sigkilled_worker_raises_named_error(self):
        executor = ParallelExecutor(2)
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                executor.starmap(_maybe_die, [(i, 1) for i in range(4)])
        finally:
            executor.close()
        assert 1 in excinfo.value.shards, (
            "the error must name the crashed task's shard"
        )
        assert "never completed" in str(excinfo.value)

    def test_crash_error_is_importable_from_repro(self):
        from repro import WorkerCrashError as top_level

        assert top_level is WorkerCrashError

    def test_clean_tasks_still_complete(self):
        executor = ParallelExecutor(2)
        try:
            assert executor.starmap(_echo, [(i,) for i in range(6)]) == list(
                range(6)
            )
        finally:
            executor.close()
