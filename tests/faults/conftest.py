"""Fixtures for the fault-injection suite.

Reuses the serving tests' deterministic frozen model and reference helper
(loaded by file path so the two ``conftest`` modules never collide in
``sys.modules``), and guarantees every test in this directory starts and
ends with fault injection disarmed.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro import faults

_spec = importlib.util.spec_from_file_location(
    "repro_tests_serve_conftest",
    Path(__file__).resolve().parents[1] / "serve" / "conftest.py",
)
_serve_conftest = importlib.util.module_from_spec(_spec)
# registered so the frozen model's classifier class stays picklable
# (session checkpoints pickle it; forked workers inherit sys.modules)
sys.modules["repro_tests_serve_conftest"] = _serve_conftest
_spec.loader.exec_module(_serve_conftest)

make_frozen_model = _serve_conftest.make_frozen_model
reference_retained = _serve_conftest.reference_retained


@pytest.fixture(scope="session")
def frozen_model():
    return make_frozen_model()


@pytest.fixture(autouse=True)
def _disarm_faults():
    faults.clear()
    yield
    faults.clear()
