"""WAL fault semantics + the acked-write-survival properties.

The write-ahead log's contract under injected failures:

* a failed **fsync** undoes the partial append (append-or-nothing) and the
  writer keeps working — the log is *not* broken;
* a **torn** or **corrupt** tail cannot be undone blindly, so the writer
  marks itself broken and refuses further appends (:class:`WalBrokenError`)
  while the log stays readable — ``scan()`` drops the damaged tail;
* across any schedule of injected faults, recovery sees **exactly** the
  acked (non-raising) appends, in order — nothing acked is lost, nothing
  unacked is resurrected.

The Hypothesis properties drive both the raw log and a full
:class:`MatchingSession` (journal + apply + recover) through random
operation sequences under random fault schedules.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_frozen_model, reference_retained
from repro import faults
from repro.datamodel import make_profile
from repro.faults import FaultPlan, InjectedFaultError
from repro.incremental import MatchingSession
from repro.persistence.log import WalBrokenError, WriteAheadLog
from repro.persistence.recovery import recover_session

MODEL = make_frozen_model()

_TOKENS = ("alpha", "beta", "gamma", "delta", "eps", "zeta")
_text = st.lists(st.sampled_from(_TOKENS), min_size=1, max_size=3).map(" ".join)


def _record(n):
    return {"op": "noop", "n": n}


class TestFsyncFaults:
    def test_failed_fsync_undoes_the_append_and_writer_survives(self, tmp_path):
        faults.install(FaultPlan(fsync_error=(1,)))
        wal = WriteAheadLog(tmp_path).open()
        with pytest.raises(OSError):
            wal.append_record(_record(0))
        assert not wal.broken
        # append-or-nothing: the failed record left no bytes behind
        offset_after_failure = wal.log_offset
        wal.append_record(_record(1))
        assert wal.log_offset > offset_after_failure
        faults.clear()
        scan = wal.scan()
        assert [entry.record for entry in scan.records] == [_record(1)]
        assert not scan.truncated
        wal.close()

    def test_failed_batch_sync_does_not_block_scan(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync="batch").open()
        wal.append_record(_record(0))
        faults.install(FaultPlan(fsync_error=(1,)))
        with pytest.raises(OSError):
            wal.sync()
        # scan still reads what was flushed, despite the failing fsync
        faults.install(FaultPlan(fsync_error=(1,)))
        assert [entry.record for entry in wal.scan().records] == [_record(0)]
        faults.clear()
        wal.close()


class TestTornAndCorruptTails:
    @pytest.mark.parametrize("fault", ["torn_append", "corrupt_append"])
    def test_damaged_tail_breaks_writer_but_not_reader(self, tmp_path, fault):
        faults.install(FaultPlan(**{fault: (2,)}))
        wal = WriteAheadLog(tmp_path).open()
        wal.append_record(_record(0))
        with pytest.raises(InjectedFaultError):
            wal.append_record(_record(1))
        assert wal.broken
        with pytest.raises(WalBrokenError):
            wal.append_record(_record(2))
        faults.clear()
        scan = wal.scan()
        assert [entry.record for entry in scan.records] == [_record(0)]
        assert scan.truncated, "the damaged tail bytes are on disk"
        wal.close()

    def test_recovery_reopens_past_a_damaged_tail(self, tmp_path):
        faults.install(FaultPlan(torn_append=(2,)))
        wal = WriteAheadLog(tmp_path).open()
        wal.append_record(_record(0))
        with pytest.raises(InjectedFaultError):
            wal.append_record(_record(1))
        wal.close()
        faults.clear()
        # recovery's discipline: scan, truncate at valid_length, append on
        scan = WriteAheadLog(tmp_path).scan()
        reopened = WriteAheadLog(tmp_path).open(truncate_at=scan.valid_length)
        assert not reopened.broken
        reopened.append_record(_record(2))
        assert [entry.record for entry in reopened.scan().records] == [
            _record(0),
            _record(2),
        ]
        reopened.close()


@st.composite
def _fault_schedule(draw, max_ordinal=16):
    ordinals = st.integers(1, max_ordinal)
    return FaultPlan(
        torn_append=tuple(draw(st.sets(ordinals, max_size=1))),
        corrupt_append=tuple(draw(st.sets(ordinals, max_size=1))),
        fsync_error=tuple(draw(st.sets(ordinals, max_size=2))),
    )


class TestAckedWritesSurviveRecovery:
    @settings(max_examples=30, deadline=None)
    @given(count=st.integers(1, 12), plan=_fault_schedule())
    def test_log_level_acked_appends_equal_scan(self, count, plan):
        tmp = Path(tempfile.mkdtemp())
        try:
            faults.install(plan)
            wal = WriteAheadLog(tmp).open()
            acked = []
            for n in range(count):
                try:
                    wal.append_record(_record(n))
                except OSError:
                    continue  # unacked: injected fault or broken writer
                acked.append(_record(n))
            faults.clear()
            try:
                wal.close()
            except OSError:
                pass  # a broken writer may fail its final sync

            scan = WriteAheadLog(tmp).scan()
            assert [entry.record for entry in scan.records] == acked
        finally:
            faults.clear()
            shutil.rmtree(tmp, ignore_errors=True)

    @settings(max_examples=10, deadline=None)
    @given(
        texts=st.lists(_text, min_size=1, max_size=8),
        plan=_fault_schedule(max_ordinal=10),
    )
    def test_session_level_acked_mutations_survive_recovery(self, texts, plan):
        """Every insert the session acked is present after recovery, and the
        recovered retained set equals an oracle session fed only the acked
        stream — unacked (failed) mutations leave no trace."""
        tmp = Path(tempfile.mkdtemp())
        oracle_dir = Path(tempfile.mkdtemp())
        try:
            # construct first (init journals the meta record and writes
            # snapshot 1), then arm: ordinals count serving-time appends
            session = MatchingSession(MODEL, bilateral=True, wal_path=tmp)
            faults.install(plan)
            acked = []
            for i, text in enumerate(texts):
                side = i % 2
                entity_id = f"{'ab'[side]}{i}"
                try:
                    session.insert(make_profile(entity_id, text=text), side=side)
                except OSError:
                    continue
                acked.append((entity_id, side, text))
            faults.clear()
            try:
                session.close()
            except OSError:
                pass  # a broken writer may fail its final sync

            recovered = recover_session(tmp)
            oracle = MatchingSession(MODEL, bilateral=True, wal_path=oracle_dir)
            try:
                for entity_id, side, _ in acked:
                    assert recovered.index.has_entity(entity_id, side=side), (
                        f"acked insert {entity_id!r} lost across recovery "
                        f"under {plan.describe()}"
                    )
                for entity_id, side, text in acked:
                    oracle.insert(make_profile(entity_id, text=text), side=side)
                assert reference_retained(recovered) == reference_retained(oracle)
                assert recovered.num_entities == len(acked)
            finally:
                recovered.close()
                oracle.close()
        finally:
            faults.clear()
            shutil.rmtree(tmp, ignore_errors=True)
            shutil.rmtree(oracle_dir, ignore_errors=True)
