"""Unit tests for :mod:`repro.faults`: plan codec, determinism, hooks."""

import pytest

from repro import faults
from repro.faults import FAULTS_ENV, FaultPlan, InjectedFaultError, plan_from_env


class TestPlanCodec:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            kill_worker={0: 3, 2: 5},
            drop_heartbeats={1: 4},
            torn_append=(2,),
            corrupt_append=(5, 9),
            fsync_error=(1,),
            slow_io_ms=2.5,
            slow_io_every=3,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_to_json_is_canonical(self):
        left = FaultPlan(seed=1, kill_worker={1: 2, 0: 4}, torn_append=(3, 1))
        right = FaultPlan(seed=1, kill_worker={0: 4, 1: 2}, torn_append=(1, 3))
        assert left.to_json() == right.to_json()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_json('{"seed": 1, "explode": true}')

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_plan_from_env(self):
        plan = FaultPlan(seed=3, fsync_error=(2,))
        assert plan_from_env({FAULTS_ENV: plan.to_json()}) == plan
        assert plan_from_env({}) is None
        assert plan_from_env({FAULTS_ENV: ""}) is None

    def test_kill_loop_is_seed_deterministic(self):
        first = FaultPlan.kill_loop(42, num_shards=4)
        second = FaultPlan.kill_loop(42, num_shards=4)
        other = FaultPlan.kill_loop(43, num_shards=4)
        assert first == second
        assert first.seed == 42
        assert set(first.kill_worker) == {0, 1, 2, 3}
        assert all(2 <= nth <= 8 for nth in first.kill_worker.values())
        assert other.kill_worker != first.kill_worker

    def test_describe_names_every_armed_fault(self):
        plan = FaultPlan(
            seed=9, kill_worker={1: 3}, torn_append=(2,), slow_io_ms=1.0,
            slow_io_every=2,
        )
        text = plan.describe()
        assert "seed=9" in text
        assert "kill_worker" in text
        assert "torn_append" in text
        assert "slow_io" in text


class TestHooks:
    def test_append_hook_fires_at_exact_ordinals(self):
        faults.install(FaultPlan(torn_append=(2,), corrupt_append=(3,)))
        assert faults.on_wal_append() is None
        assert faults.on_wal_append() == "torn"
        assert faults.on_wal_append() == "corrupt"
        assert faults.on_wal_append() is None

    def test_fsync_hook_raises_at_ordinal(self):
        faults.install(FaultPlan(fsync_error=(2,)))
        faults.on_wal_fsync()
        with pytest.raises(InjectedFaultError):
            faults.on_wal_fsync()
        faults.on_wal_fsync()

    def test_install_resets_counters(self):
        faults.install(FaultPlan(torn_append=(1,)))
        assert faults.on_wal_append() == "torn"
        faults.install(FaultPlan(torn_append=(1,)))
        assert faults.on_wal_append() == "torn"

    def test_shard_scoped_heartbeat_drop(self):
        faults.install(FaultPlan(drop_heartbeats={1: 2}))
        # unscoped process (the daemon itself): never drops
        assert not faults.on_heartbeat()
        faults.set_scope(0)  # a different shard's worker
        assert not faults.on_heartbeat()
        faults.set_scope(1)
        assert faults.on_heartbeat()
        assert faults.on_heartbeat()
        assert not faults.on_heartbeat()  # budget exhausted

    def test_env_plan_resolved_once_and_rearmed_by_clear(self, monkeypatch):
        plan = FaultPlan(seed=5, fsync_error=(1,))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert faults.active_plan() == plan
        monkeypatch.setenv(FAULTS_ENV, FaultPlan(seed=6).to_json())
        assert faults.active_plan() == plan  # cached until cleared
        faults.clear()
        assert faults.active_plan() == FaultPlan(seed=6)
