"""Chaos + observability: the event log reconstructs the causal chain.

The acceptance contract of the observability subsystem: after driving the
live daemon through a supervisor respawn, the merged structured event log
must tell the whole story with joinable identifiers —

    client request (trace id)
      → injected fault / liveness detection (worker pid)
      → supervisor respawn (old pid → new pid)
      → replacement worker spawn (new pid, lineage token)
      → checkpoint adoption (same lineage)
      → degraded read (same trace id as the failing request)

Two scenarios: a SIGKILL mid-replay (detected as a dead/wedged worker by
the kicked supervisor) and a wedged-but-alive worker that swallows its
heartbeats (detected as a missed heartbeat).
"""

import threading
import time

import pytest

from repro import faults
from repro.datamodel import make_profile
from repro.faults import FAULTS_ENV, FaultPlan
from repro.obs import events as obs_events
from repro.obs import read_events
from repro.serve import MatchingDaemon, ServeClient

TEXTS = (
    "alpha beta gamma",
    "beta gamma delta",
    "alpha delta eps",
    "gamma eps zeta",
)


def _start(daemon):
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(60), "daemon did not come up"
    return thread


def _stop(daemon, thread):
    daemon.request_shutdown()
    thread.join(60)
    assert not thread.is_alive(), "daemon did not shut down"
    obs_events.configure(None)


def _events_of(log, event_type, **match):
    return [
        event
        for event in log
        if event.get("type") == event_type
        and all(event.get(key) == value for key, value in match.items())
    ]


@pytest.mark.chaos
class TestKillChain:
    def test_event_log_reconstructs_the_kill_respawn_adoption_chain(
        self, tmp_path, frozen_model, monkeypatch
    ):
        plan = FaultPlan(kill_worker={0: 3})
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        faults.clear()  # the worker inherits the armed env at spawn
        daemon = MatchingDaemon(
            tmp_path / "wal",
            frozen_model,
            num_shards=2,
            bilateral=True,
            heartbeat_interval=0.2,
            hang_timeout=1.0,
            event_log=tmp_path / "events",
        )
        thread = _start(daemon)
        degraded_trace = None
        try:
            victim_pid = daemon.router.handle(0).pid
            with ServeClient(*daemon.address) as client:
                # walk shard 0's replica onto its kill ordinal: inserts
                # journal records, reads force the replica to replay them
                deadline = time.monotonic() + 60
                serial = 0
                while degraded_trace is None:
                    assert time.monotonic() < deadline, "kill never fired"
                    side = serial % 2
                    client.insert(
                        make_profile(
                            f"{'ab'[side]}{serial}",
                            text=TEXTS[serial % len(TEXTS)],
                        ),
                        side=side,
                    )
                    answer = client.match()
                    if answer.get("degraded"):
                        degraded_trace = client.last_trace_id
                    serial += 1
                # heal: disarm before asserting, so the replacement
                # worker stays alive
                monkeypatch.delenv(FAULTS_ENV)
                faults.clear()
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if daemon.router.handle(0).pid not in (None, victim_pid):
                        break
                    time.sleep(0.05)
        finally:
            faults.clear()
            _stop(daemon, thread)

        log = read_events(tmp_path / "events")

        # 1. the injected fault announced itself before killing, from
        #    inside the victim process
        (fault,) = _events_of(log, "fault_injected", kind="kill_worker")
        assert fault["shard"] == 0
        assert fault["pid"] == victim_pid
        assert fault["role"] == "shard0"

        # 2. the supervisor noticed the loss of that exact pid...
        liveness = (
            _events_of(log, "worker_dead", shard=0, pid=victim_pid)
            + _events_of(log, "worker_hang", shard=0, pid=victim_pid)
            + _events_of(log, "heartbeat_miss", shard=0, pid=victim_pid)
        )
        assert liveness, "no liveness event for the killed worker"

        # 3. ...and respawned it: old pid joins the victim, new pid joins
        #    the replacement's own spawn record
        respawns = _events_of(log, "worker_respawn", shard=0, old_pid=victim_pid)
        assert respawns
        new_pid = respawns[0]["new_pid"]
        (spawn,) = _events_of(log, "worker_spawn", shard=0, pid=new_pid)

        # 4. the replacement adopted a checkpoint under the same lineage
        adoptions = _events_of(
            log, "checkpoint_adoption", shard=0, pid=new_pid,
            lineage=spawn["lineage"],
        )
        assert adoptions, "no checkpoint adoption for the replacement lineage"

        # 5. the read that hit the dead worker degraded under ITS trace id
        #    and still completed successfully
        assert _events_of(log, "degraded_read", trace=degraded_trace)
        (request,) = _events_of(log, "request", trace=degraded_trace)
        assert request["op"] == "match"
        assert request["ok"] is True

        # 6. and the story is ordered (merged across three processes):
        #    the fault precedes everything; the replacement spawns before
        #    it adopts; the swap record lands after the fault.  (spawn may
        #    precede the respawn record — the router spawns the
        #    replacement BEFORE swapping, to keep downtime to one swap)
        assert log.index(fault) < log.index(spawn) < log.index(adoptions[0])
        assert log.index(fault) < log.index(respawns[0])


@pytest.mark.chaos
class TestHeartbeatChain:
    def test_missed_heartbeats_chain_to_respawn_and_adoption(
        self, tmp_path, frozen_model, monkeypatch
    ):
        plan = FaultPlan(drop_heartbeats={0: 10_000})
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        faults.clear()
        daemon = MatchingDaemon(
            tmp_path / "wal",
            frozen_model,
            num_shards=2,
            bilateral=True,
            heartbeat_interval=0.1,
            hang_timeout=0.4,
            spawn_grace=0.2,
            event_log=tmp_path / "events",
        )
        thread = _start(daemon)
        try:
            victim_pid = daemon.router.handle(0).pid
            deadline = time.monotonic() + 30
            while not _events_of(
                read_events(tmp_path / "events"),
                "worker_respawn", shard=0, old_pid=victim_pid,
            ):
                assert time.monotonic() < deadline, "heartbeat miss never fired"
                time.sleep(0.1)
            # disarm so replacement workers answer their pings again
            monkeypatch.delenv(FAULTS_ENV)
            faults.clear()
        finally:
            faults.clear()
            _stop(daemon, thread)

        log = read_events(tmp_path / "events")
        # the dropped pings were journaled by the wedged worker itself
        drops = _events_of(log, "fault_injected", kind="drop_heartbeat")
        assert drops and all(event["shard"] == 0 for event in drops)
        (miss,) = _events_of(log, "heartbeat_miss", shard=0, pid=victim_pid)
        (respawn,) = _events_of(
            log, "worker_respawn", shard=0, old_pid=victim_pid
        )
        assert respawn["reason"] == "missed heartbeat"
        spawns = _events_of(log, "worker_spawn", shard=0, pid=respawn["new_pid"])
        assert spawns
        assert _events_of(
            log, "checkpoint_adoption", shard=0, lineage=spawns[0]["lineage"]
        )
        # miss precedes both halves of the swap; adoption follows the
        # spawn (spawn may precede the respawn record — the replacement
        # is launched before the supervisor journals the swap)
        assert log.index(miss) < log.index(respawn)
        assert log.index(miss) < log.index(spawns[0])
