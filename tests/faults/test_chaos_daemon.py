"""Chaos: a seeded kill-loop against the live daemon, no acked write lost.

The ``REPRO_FAULTS`` plan SIGKILLs every shard worker mid-replay (each at
a seed-drawn applied-record ordinal) while a client keeps ingesting and
reading.  The daemon must keep answering throughout (degrading reads
while shards rebuild), every worker must be replaced, and after healing
and shutdown the offline recovery must hold every acked write with the
exact retained set the last clean read reported.

Seed selection: ``REPRO_CHAOS_SEED`` (default 0).  CI runs the fixed
seed plus one randomized seed, logging it — the plan line printed below
is all that is needed to replay a failure.
"""

import os
import threading
import time

import pytest

from conftest import reference_retained
from repro import faults
from repro.datamodel import make_profile
from repro.faults import FAULTS_ENV, FaultPlan
from repro.persistence.recovery import recover_session
from repro.serve import MatchingDaemon, ServeClient

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

TEXTS = (
    "alpha beta gamma",
    "beta gamma delta",
    "alpha delta eps",
    "gamma eps zeta",
    "beta eps zeta",
    "alpha beta zeta",
)


def _start(daemon):
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(60), "daemon did not come up"
    return thread


@pytest.mark.chaos
class TestSeededKillLoop:
    def test_kill_loop_loses_no_acked_write(
        self, tmp_path, frozen_model, monkeypatch
    ):
        plan = FaultPlan.kill_loop(SEED, num_shards=2, low=2, high=6)
        print(f"chaos plan (REPRO_CHAOS_SEED={SEED}): {plan.describe()}")
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        faults.clear()  # workers inherit the armed env at spawn
        daemon = MatchingDaemon(
            tmp_path / "wal",
            frozen_model,
            num_shards=2,
            bilateral=True,
            heartbeat_interval=0.2,
            hang_timeout=1.0,
        )
        thread = _start(daemon)
        acked = []
        final = None
        try:
            initial_pids = {
                shard: daemon.router.handle(shard).pid for shard in range(2)
            }

            def every_worker_replaced():
                return all(
                    daemon.router.handle(shard).pid != initial_pids[shard]
                    for shard in range(2)
                )

            with ServeClient(*daemon.address) as client:
                # ingest + read until the kill loop has claimed BOTH shard
                # workers; reads drive replica replay, so they are what
                # walks each worker onto its kill ordinal
                deadline = time.monotonic() + 60
                serial = 0
                while not every_worker_replaced():
                    assert time.monotonic() < deadline, (
                        f"kill loop never fired both kills: {plan.describe()}"
                    )
                    side = serial % 2
                    entity_id = f"{'ab'[side]}{serial}"
                    client.insert(
                        make_profile(
                            entity_id, text=TEXTS[serial % len(TEXTS)]
                        ),
                        side=side,
                    )
                    acked.append((entity_id, side))
                    client.match()  # may be degraded mid-kill; must answer
                    serial += 1
                assert daemon._supervisor.restarts >= 2

                # heal: stop arming respawned workers, then wait for a
                # clean (non-degraded) read from the rebuilt fleet
                monkeypatch.delenv(FAULTS_ENV)
                faults.clear()
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    answer = client.match()
                    if answer.get("degraded") is None:
                        final = answer
                        break
                    time.sleep(0.1)
                assert final is not None, "reads never healed after the loop"
        finally:
            faults.clear()
            daemon.request_shutdown()
            thread.join(60)
            assert not thread.is_alive(), "daemon did not shut down"

        recovered = recover_session(tmp_path / "wal")
        try:
            for entity_id, side in acked:
                assert recovered.index.has_entity(entity_id, side=side), (
                    f"acked insert {entity_id!r} lost across the kill loop "
                    f"({plan.describe()})"
                )
            assert reference_retained(recovered) == final["retained"], (
                "the healed fleet's answer is not the canonical state"
            )
        finally:
            recovered.close()
