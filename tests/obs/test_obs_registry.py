"""Unit tests for the unified metrics registry (``repro.obs.registry``).

Covers the bisect-based histogram bucketing (asserted identical to the
linear reference scan it replaced, across every boundary), snapshot
consistency under concurrent recording, and the Prometheus text
exposition format.
"""

import json
import threading

import pytest

from repro.obs.registry import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    MetricsRegistry,
    process_rss_bytes,
    render_prometheus,
)


def linear_reference_bucket(seconds: float) -> int:
    """The original linear scan ``add`` used before the bisect rewrite."""
    for position, bound in enumerate(BUCKET_BOUNDS):
        if seconds <= bound:
            return position
    return len(BUCKET_BOUNDS)


class TestBucketAssignment:
    def test_bisect_matches_linear_scan_on_every_boundary(self):
        values = [0.0, 1e-12, 1e6]
        for bound in BUCKET_BOUNDS:
            values.extend(
                [bound, bound * (1.0 - 1e-12), bound * (1.0 + 1e-12)]
            )
        for seconds in values:
            histogram = LatencyHistogram()
            histogram.add(seconds)
            expected = linear_reference_bucket(seconds)
            assert histogram._counts[expected] == 1, (
                f"{seconds!r} landed in bucket "
                f"{histogram._counts.index(1)}, linear scan says {expected}"
            )

    def test_bisect_matches_linear_scan_on_a_sweep(self):
        import random

        rng = random.Random(7)
        for _ in range(500):
            seconds = 10.0 ** rng.uniform(-7.0, 3.0)
            histogram = LatencyHistogram()
            histogram.add(seconds)
            assert histogram._counts[linear_reference_bucket(seconds)] == 1

    def test_overflow_bucket(self):
        histogram = LatencyHistogram()
        histogram.add(BUCKET_BOUNDS[-1] * 2.0)
        assert histogram._counts[len(BUCKET_BOUNDS)] == 1
        # the overflow observation still counts toward the +Inf total
        assert histogram.count == 1

    def test_summary_and_percentiles(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.add(0.001)
        histogram.add(1.0)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(1.0, rel=0.8)
        assert summary["p99_ms"] >= summary["p50_ms"]
        assert summary["max_ms"] == pytest.approx(1000.0)

    def test_cumulative_buckets_are_monotone(self):
        histogram = LatencyHistogram()
        for seconds in (1e-4, 1e-3, 1e-2, 1e-1, 1.0):
            histogram.add(seconds)
        cumulative = histogram.cumulative_buckets()
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)
        assert counts[-1] == 5


class TestConcurrentSnapshot:
    OPS = ("match", "insert", "top_k")
    THREADS = 6
    ROUNDS = 400

    def test_snapshot_is_consistent_and_serializable_under_load(self):
        registry = MetricsRegistry()
        start = threading.Barrier(self.THREADS + 1)
        stop = threading.Event()

        def hammer(worker: int) -> None:
            start.wait()
            for round_number in range(self.ROUNDS):
                op = self.OPS[round_number % len(self.OPS)]
                registry.record(op, 0.001 * (worker + 1), round_number % 5 != 0)
                registry.increment("degraded_reads")
                registry.adjust_gauge("read_queue_depth", 1)
                registry.adjust_gauge("read_queue_depth", -1)
                registry.observe_stage("blocking", 0.001)
                registry.connection_opened()
                registry.connection_closed()

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        start.wait()
        snapshots = []
        while any(thread.is_alive() for thread in threads):
            snapshot = registry.snapshot()
            # every mid-flight snapshot must be JSON-serializable and
            # internally consistent (no partially-updated structures)
            json.dumps(snapshot)
            for op, stats in snapshot["operations"].items():
                assert stats["count"] >= stats["errors"] >= 0
                assert stats["max_ms"] >= 0.0
            assert snapshot["connections"]["open"] >= 0
            snapshots.append(snapshot)
            render_prometheus(registry)
        for thread in threads:
            thread.join()
        stop.set()

        final = registry.snapshot()
        total = self.THREADS * self.ROUNDS
        assert sum(s["count"] for s in final["operations"].values()) == total
        assert final["counters"]["degraded_reads"] == total
        assert final["queues"]["read_queue_depth"] == 0
        assert final["connections"]["total"] == total
        assert final["connections"]["open"] == 0
        assert final["stages"]["blocking"] == pytest.approx(total * 0.001)
        # counts only ever grow: snapshots taken while hammering are a
        # monotone prefix of the final state
        observed = [
            sum(s["count"] for s in snap["operations"].values())
            for snap in snapshots
        ]
        assert observed == sorted(observed)

    def test_snapshot_keeps_the_historical_shape(self):
        registry = MetricsRegistry()
        registry.record("match", 0.001, True)
        snapshot = registry.snapshot()
        assert set(snapshot) == {
            "operations", "queues", "counters", "connections", "gauges", "stages",
        }
        assert set(snapshot["operations"]["match"]) == {
            "count", "mean_ms", "p50_ms", "p99_ms", "max_ms", "errors",
        }


class TestGauges:
    def test_registered_gauge_is_sampled_at_snapshot_time(self):
        registry = MetricsRegistry()
        values = iter([5.0, 7.0])
        registry.register_gauge("wal_size_bytes", lambda: next(values))
        assert registry.snapshot()["gauges"]["wal_size_bytes"] == 5.0
        assert registry.snapshot()["gauges"]["wal_size_bytes"] == 7.0

    def test_none_and_raising_gauges_are_omitted(self):
        registry = MetricsRegistry()
        registry.register_gauge("absent", lambda: None)

        def broken():
            raise OSError("gone")

        registry.register_gauge("broken", broken)
        registry.set_gauge("direct", 3.5)
        gauges = registry.snapshot()["gauges"]
        assert gauges == {"direct": 3.5}

    def test_process_rss_bytes_is_positive_here(self):
        rss = process_rss_bytes()
        assert rss is not None and rss > 0

    def test_stage_timer_absorption(self):
        from repro.utils.timing import StageTimer

        timer = StageTimer()
        timer.add("blocking", 0.25)
        timer.add("features", 0.5)
        registry = MetricsRegistry()
        registry.absorb_stage_timer(timer, prefix="prep_")
        stages = registry.snapshot()["stages"]
        assert stages == {"prep_blocking": 0.25, "prep_features": 0.5}


class TestPrometheusExposition:
    def build_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.record("match", 0.001, True)
        registry.record("match", 0.1, False)
        registry.increment("degraded_reads", 2)
        registry.adjust_gauge("mutation_queue_depth", 1)
        registry.observe_stage("blocking", 0.5)
        registry.connection_opened()
        registry.set_gauge("wal_size_bytes", 4096.0)
        return registry

    def test_golden_families(self):
        text = render_prometheus(self.build_registry())
        lines = text.splitlines()
        # golden non-histogram families, exact text
        for expected in [
            "# TYPE repro_request_duration_seconds histogram",
            'repro_request_duration_seconds_bucket{op="match",le="+Inf"} 2',
            'repro_request_duration_seconds_sum{op="match"} 0.101',
            'repro_request_duration_seconds_count{op="match"} 2',
            "# TYPE repro_request_errors_total counter",
            'repro_request_errors_total{op="match"} 1',
            "# TYPE repro_events_total counter",
            'repro_events_total{event="degraded_reads"} 2',
            "# TYPE repro_queue_depth gauge",
            'repro_queue_depth{queue="mutation_queue_depth"} 1',
            'repro_queue_depth{queue="read_queue_depth"} 0',
            "# TYPE repro_stage_seconds_total counter",
            'repro_stage_seconds_total{stage="blocking"} 0.5',
            "repro_connections_total 1",
            "repro_connections_open 1",
            "# TYPE repro_wal_size_bytes gauge",
            "repro_wal_size_bytes 4096",
        ]:
            assert expected in lines, f"missing exposition line: {expected}"
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_and_complete(self):
        text = render_prometheus(self.build_registry())
        import re

        buckets = re.findall(
            r'repro_request_duration_seconds_bucket\{op="match",le="([^"]+)"\} (\d+)',
            text,
        )
        assert len(buckets) == len(BUCKET_BOUNDS) + 1  # every bound + +Inf
        counts = [int(count) for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1] == ("+Inf", "2")
        # the 0.001 observation is cumulative from its bound onward
        reference = linear_reference_bucket(0.001)
        assert counts[reference] == 1

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.increment('weird"event\\name')
        text = render_prometheus(registry)
        assert 'repro_events_total{event="weird\\"event\\\\name"} 1' in text
