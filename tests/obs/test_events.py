"""Unit tests for the structured event log (``repro.obs.events``)."""

import json
import os

import pytest

from repro.obs import events
from repro.obs.render import render_event, render_event_summary, render_span_tree


@pytest.fixture(autouse=True)
def _isolated_sink(monkeypatch):
    """Each test starts unconfigured and leaves no sink/env behind."""
    monkeypatch.delenv(events.EVENT_LOG_ENV, raising=False)
    events.configure(None, role="main")
    yield
    events.configure(None, role="main")


class TestSink:
    def test_emit_is_a_noop_when_unconfigured(self, tmp_path):
        events.emit("request", op="match")
        assert list(tmp_path.glob("events-*")) == []

    def test_round_trip_with_envelope_fields(self, tmp_path):
        events.configure(tmp_path, role="daemon")
        events.emit("request", trace="abc", op="match", ok=True)
        events.emit("wal_append", offset=10, bytes=5)
        log = events.read_events(tmp_path)
        assert [event["type"] for event in log] == ["request", "wal_append"]
        first = log[0]
        assert first["role"] == "daemon"
        assert first["pid"] == os.getpid()
        assert first["seq"] == 1
        assert first["trace"] == "abc" and first["ok"] is True
        assert log[1]["seq"] == 2

    def test_configure_exports_and_clears_the_env(self, tmp_path):
        events.configure(tmp_path, role="daemon")
        assert os.environ[events.EVENT_LOG_ENV] == str(tmp_path)
        events.configure(None)
        assert events.EVENT_LOG_ENV not in os.environ
        events.emit("request")  # disabled again
        assert events.read_events(tmp_path) == []

    def test_env_is_resolved_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv(events.EVENT_LOG_ENV, str(tmp_path))
        events.configure(None, export_env=False)  # forget, then re-resolve
        monkeypatch.setenv(events.EVENT_LOG_ENV, str(tmp_path))
        assert events.configured_dir() is None  # explicit None wins until reset
        # a fresh process (simulated by reconfiguring from the env) sees it
        events.configure(tmp_path, export_env=False)
        events.emit("probe")
        assert events.read_events(tmp_path)[0]["type"] == "probe"

    def test_per_role_files(self, tmp_path):
        events.configure(tmp_path, role="daemon")
        events.emit("a")
        events.set_role("shard0")
        events.emit("b")
        names = sorted(path.name for path in tmp_path.glob("events-*.jsonl"))
        pid = os.getpid()
        assert names == [
            f"events-daemon-{pid}.jsonl", f"events-shard0-{pid}.jsonl",
        ]
        log = events.read_events(tmp_path)
        assert [(e["role"], e["type"]) for e in log] == [
            ("daemon", "a"), ("shard0", "b"),
        ]

    def test_torn_final_line_is_dropped(self, tmp_path):
        events.configure(tmp_path, role="daemon")
        events.emit("kept", n=1)
        path = next(tmp_path.glob("events-*.jsonl"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 1.0, "type": "torn", "pa')  # killed mid-write
        log = events.read_events(tmp_path)
        assert [event["type"] for event in log] == ["kept"]

    def test_merge_orders_across_processes_by_ts_then_seq(self, tmp_path):
        (tmp_path / "events-daemon-100.jsonl").write_text(
            json.dumps({"ts": 2.0, "seq": 1, "pid": 100, "type": "late"}) + "\n"
            + json.dumps({"ts": 2.0, "seq": 2, "pid": 100, "type": "later"}) + "\n"
        )
        (tmp_path / "events-shard0-200.jsonl").write_text(
            json.dumps({"ts": 1.0, "seq": 1, "pid": 200, "type": "early"}) + "\n"
        )
        log = events.read_events(tmp_path)
        assert [event["type"] for event in log] == ["early", "late", "later"]

    def test_unserializable_fields_degrade_to_strings(self, tmp_path):
        events.configure(tmp_path, role="daemon")
        events.emit("weird", path=tmp_path)  # Path is not JSON-native
        (event,) = events.read_events(tmp_path)
        assert event["path"] == str(tmp_path)


class TestSummary:
    def test_summarize_counts_and_slowest(self, tmp_path):
        events.configure(tmp_path, role="daemon")
        events.emit("request", trace="t1", op="match", ok=True, duration_ms=5.0)
        events.emit("request", trace="t2", op="insert", ok=False, duration_ms=9.0)
        events.emit("wal_append", offset=1, bytes=2)
        summary = events.summarize_events(events.read_events(tmp_path))
        assert summary["events"] == 3
        assert summary["by_type"] == {"request": 2, "wal_append": 1}
        assert summary["requests"] == {"total": 2, "ok": 1, "failed": 1}
        assert [e["trace"] for e in summary["slowest"]] == ["t2", "t1"]
        # and the renderers accept what the summarizer produces
        assert "2 total, 1 ok, 1 failed" in render_event_summary(summary)


class TestLoggingBridge:
    def test_logger_records_become_log_events_with_trace_and_traceback(
        self, tmp_path
    ):
        events.configure(tmp_path, role="daemon")
        logger = events.get_logger("serve.daemon")
        assert logger.name == "repro.serve.daemon"
        try:
            raise ValueError("boom")
        except ValueError:
            logger.error(
                "unhandled error serving %s", "match",
                exc_info=True, extra={"trace_id": "deadbeef"},
            )
        log = [e for e in events.read_events(tmp_path) if e["type"] == "log"]
        (event,) = log
        assert event["level"] == "ERROR"
        assert event["logger"] == "repro.serve.daemon"
        assert event["message"] == "unhandled error serving match"
        assert event["trace"] == "deadbeef"
        assert "ValueError: boom" in event["exception"]

    def test_info_records_carry_no_trace_by_default(self, tmp_path):
        events.configure(tmp_path, role="daemon")
        events.get_logger("workers").info("shard %d warmed", 3)
        (event,) = [
            e for e in events.read_events(tmp_path) if e["type"] == "log"
        ]
        assert event["message"] == "shard 3 warmed"
        assert "trace" not in event


class TestRenderers:
    def test_render_event_single_line(self):
        line = render_event(
            {"ts": 12.5, "role": "daemon", "type": "request",
             "trace": "abc", "ok": True, "spans": {"name": "x"}}
        )
        assert line.splitlines() == [line]
        assert "trace=abc" in line and "spans" not in line

    def test_render_span_tree_shape(self):
        tree = {
            "name": "match", "ms": 10.0,
            "children": [
                {"name": "fan-out", "ms": 8.0, "tags": {"shards": 2},
                 "children": [{"name": "shard0", "ms": 4.0}]},
                {"name": "score", "ms": 1.0},
            ],
        }
        text = render_span_tree(tree)
        lines = text.splitlines()
        assert lines[0].startswith("match")
        assert any("├─ fan-out" in line and "shards=2" in line for line in lines)
        assert any("└─ score" in line for line in lines)
        assert render_span_tree(None) == "(no trace recorded)"
