"""Unit tests for request tracing (``repro.obs.trace``)."""

import threading

from repro.obs.trace import (
    RequestTrace,
    activate,
    current_trace,
    hook_span,
    mint_trace_id,
)


class TestMint:
    def test_ids_are_16_hex_and_unique(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)


class TestSpanTree:
    def test_nesting_and_tags(self):
        trace = RequestTrace("abc", "match")
        with trace.span("outer", shards=2):
            with trace.span("inner"):
                pass
            trace.add_span("measured", 1.5, kind="delta")
        tree = trace.finish()
        assert tree["name"] == "match"
        (outer,) = tree["children"]
        assert outer["name"] == "outer"
        assert outer["tags"] == {"shards": 2}
        assert [child["name"] for child in outer["children"]] == [
            "inner", "measured",
        ]
        measured = outer["children"][1]
        assert measured["ms"] == 1.5
        assert measured["tags"] == {"kind": "delta"}
        assert tree["ms"] >= outer["ms"] >= 0.0

    def test_graft_builds_a_child_subtree_with_summed_duration(self):
        trace = RequestTrace("abc", "match")
        trace.graft(
            "shard0",
            [
                {"name": "catch-up", "ms": 2.0, "records": 3},
                {"name": "export", "ms": 1.0},
            ],
        )
        tree = trace.finish()
        (shard,) = tree["children"]
        assert shard["name"] == "shard0"
        assert shard["ms"] == 3.0
        assert [c["name"] for c in shard["children"]] == ["catch-up", "export"]
        assert shard["children"][0]["tags"] == {"records": 3}

    def test_disabled_trace_records_nothing_and_costs_nothing(self):
        trace = RequestTrace("abc", "match", enabled=False)
        with trace.span("outer") as span:
            assert span is None
        trace.add_span("x", 1.0)
        trace.graft("shard0", [{"name": "a", "ms": 1.0}])
        assert trace.finish() is None

    def test_trees_are_json_serializable(self):
        import json

        trace = RequestTrace("abc", "match")
        with trace.span("fan-out", shards=2):
            trace.graft("shard0", [{"name": "export", "ms": 0.5}])
        json.dumps(trace.finish())


class TestActivation:
    def test_hook_span_attributes_to_the_active_trace(self):
        trace = RequestTrace("abc", "insert")
        with activate(trace):
            assert current_trace() is trace
            with hook_span("wal-append", bytes=10):
                pass
        assert current_trace() is None
        tree = trace.finish()
        (span,) = tree["children"]
        assert span["name"] == "wal-append"
        assert span["tags"] == {"bytes": 10}

    def test_hook_span_is_a_noop_without_an_active_trace(self):
        with hook_span("wal-append"):
            pass  # must not raise

    def test_hook_span_is_a_noop_against_a_disabled_trace(self):
        trace = RequestTrace("abc", "insert", enabled=False)
        with activate(trace):
            with hook_span("wal-append"):
                pass
        assert trace.finish() is None

    def test_activation_restores_the_previous_trace(self):
        outer = RequestTrace("o", "a")
        inner = RequestTrace("i", "b")
        with activate(outer):
            with activate(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_activation_is_thread_local(self):
        trace = RequestTrace("abc", "match")
        seen = {}

        def probe():
            seen["other_thread"] = current_trace()

        with activate(trace):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other_thread"] is None
