"""Property-based tests (hypothesis) on the library's core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    BinaryClassifierPruning,
    SupervisedBLAST,
    SupervisedCEP,
    SupervisedCNP,
    SupervisedRCNP,
    SupervisedRWNP,
    SupervisedWEP,
    SupervisedWNP,
)
from repro.datamodel import Block, BlockCollection, CandidateSet, EntityIndexSpace
from repro.ml import LogisticRegression, PlattScaler, StandardScaler, balanced_sample
from repro.utils import BoundedTopQueue, jaccard, qgrams, suffixes, tokens
from repro.weights import BlockStatistics, JaccardScheme, RACCBScheme, WeightedJaccardScheme


# -- strategies -----------------------------------------------------------------------

@st.composite
def bilateral_blocks(draw):
    """Random small bilateral block collections."""
    size_first = draw(st.integers(min_value=2, max_value=6))
    size_second = draw(st.integers(min_value=2, max_value=6))
    space = EntityIndexSpace(size_first, size_second)
    n_blocks = draw(st.integers(min_value=1, max_value=6))
    blocks = []
    for index in range(n_blocks):
        first = draw(
            st.lists(st.integers(0, size_first - 1), min_size=1, max_size=size_first, unique=True)
        )
        second = draw(
            st.lists(
                st.integers(size_first, size_first + size_second - 1),
                min_size=1,
                max_size=size_second,
                unique=True,
            )
        )
        blocks.append(Block(f"b{index}", sorted(first), sorted(second)))
    return BlockCollection(blocks, space)


@st.composite
def candidates_with_probabilities(draw):
    """A random candidate set plus aligned probabilities."""
    blocks = draw(bilateral_blocks())
    candidate_set = CandidateSet.from_blocks(blocks)
    assume(len(candidate_set) > 0)
    probabilities = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=len(candidate_set),
            max_size=len(candidate_set),
        )
    )
    return blocks, candidate_set, np.array(probabilities)


# -- text utilities ---------------------------------------------------------------------

class TestTextProperties:
    @given(st.text(max_size=60))
    def test_tokens_are_lowercase_alphanumeric(self, text):
        for token in tokens(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(st.text(max_size=60), st.integers(min_value=1, max_value=4))
    def test_qgrams_never_longer_than_q(self, text, q):
        for gram in qgrams(text, q=q):
            assert len(gram) <= max(
                q, max((len(t) for t in tokens(text)), default=0)
            )
            assert len(gram) >= 1

    @given(st.text(max_size=60))
    def test_suffixes_are_token_suffixes(self, text):
        token_set = tokens(text)
        for suffix in suffixes(text):
            assert any(token.endswith(suffix) for token in token_set)

    @given(
        st.sets(st.text(min_size=1, max_size=5), max_size=10),
        st.sets(st.text(min_size=1, max_size=5), max_size=10),
    )
    def test_jaccard_bounds_and_symmetry(self, first, second):
        value = jaccard(first, second)
        assert 0.0 <= value <= 1.0
        assert value == jaccard(second, first)


# -- priority queue -----------------------------------------------------------------------

class TestQueueProperties:
    @given(
        st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=10),
    )
    def test_queue_keeps_the_top_weights(self, weights, capacity):
        queue = BoundedTopQueue(capacity)
        for index, weight in enumerate(weights):
            queue.push(weight, index)
        kept = queue.weighted_items()
        assert len(kept) == min(capacity, len(weights))
        threshold = sorted(weights, reverse=True)[len(kept) - 1]
        assert all(weight >= threshold - 1e-12 for weight, _ in kept)


# -- weighting schemes ---------------------------------------------------------------------

class TestSchemeProperties:
    @settings(max_examples=30, deadline=None)
    @given(bilateral_blocks())
    def test_jaccard_scheme_bounded_and_symmetric_in_structure(self, blocks):
        candidate_set = CandidateSet.from_blocks(blocks)
        assume(len(candidate_set) > 0)
        stats = BlockStatistics(blocks)
        values = JaccardScheme().compute(candidate_set, stats)[:, 0]
        assert np.all(values >= 0.0) and np.all(values <= 1.0 + 1e-12)
        # every candidate pair shares at least one block, so JS > 0
        assert np.all(values > 0.0)

    @settings(max_examples=30, deadline=None)
    @given(bilateral_blocks())
    def test_wjs_normalises_raccb(self, blocks):
        candidate_set = CandidateSet.from_blocks(blocks)
        assume(len(candidate_set) > 0)
        stats = BlockStatistics(blocks)
        raccb = RACCBScheme().compute(candidate_set, stats)[:, 0]
        wjs = WeightedJaccardScheme().compute(candidate_set, stats)[:, 0]
        assert np.all(wjs <= 1.0 + 1e-12)
        assert np.all((raccb > 0) == (wjs > 0))


# -- pruning algorithms -----------------------------------------------------------------------

class TestPruningProperties:
    @settings(max_examples=30, deadline=None)
    @given(candidates_with_probabilities())
    def test_no_algorithm_retains_invalid_pairs(self, data):
        blocks, candidate_set, probabilities = data
        algorithms = [
            BinaryClassifierPruning(),
            SupervisedWEP(),
            SupervisedWNP(),
            SupervisedRWNP(),
            SupervisedBLAST(),
            SupervisedCEP(budget=3),
            SupervisedCNP(budget=2),
            SupervisedRCNP(budget=2),
        ]
        invalid = probabilities < 0.5
        for algorithm in algorithms:
            mask = algorithm.prune(probabilities, candidate_set, blocks)
            assert mask.shape == (len(candidate_set),)
            assert not np.any(mask & invalid), algorithm.name

    @settings(max_examples=30, deadline=None)
    @given(candidates_with_probabilities())
    def test_reciprocal_variants_are_subsets(self, data):
        blocks, candidate_set, probabilities = data
        wnp = SupervisedWNP().prune(probabilities, candidate_set)
        rwnp = SupervisedRWNP().prune(probabilities, candidate_set)
        cnp = SupervisedCNP(budget=2).prune(probabilities, candidate_set)
        rcnp = SupervisedRCNP(budget=2).prune(probabilities, candidate_set)
        assert np.all(~rwnp | wnp)
        assert np.all(~rcnp | cnp)

    @settings(max_examples=30, deadline=None)
    @given(candidates_with_probabilities())
    def test_every_retained_mask_is_subset_of_bcl(self, data):
        """BCl retains all valid pairs, so every other algorithm retains a subset."""
        blocks, candidate_set, probabilities = data
        bcl = BinaryClassifierPruning().prune(probabilities, candidate_set)
        for algorithm in (SupervisedWEP(), SupervisedRWNP(), SupervisedBLAST()):
            mask = algorithm.prune(probabilities, candidate_set, blocks)
            assert np.all(~mask | bcl), algorithm.name

    @settings(max_examples=30, deadline=None)
    @given(candidates_with_probabilities(), st.integers(min_value=1, max_value=5))
    def test_cep_never_exceeds_budget(self, data, budget):
        blocks, candidate_set, probabilities = data
        mask = SupervisedCEP(budget=budget).prune(probabilities, candidate_set)
        assert mask.sum() <= budget


# -- candidate sets --------------------------------------------------------------------------

class TestCandidateSetProperties:
    @settings(max_examples=30, deadline=None)
    @given(bilateral_blocks())
    def test_candidate_pairs_are_unique_and_canonical(self, blocks):
        candidate_set = CandidateSet.from_blocks(blocks)
        tuples = candidate_set.as_tuples()
        assert len(tuples) == len(set(tuples))
        assert all(left < right for left, right in tuples)

    @settings(max_examples=30, deadline=None)
    @given(bilateral_blocks())
    def test_candidate_count_never_exceeds_block_cardinality(self, blocks):
        candidate_set = CandidateSet.from_blocks(blocks)
        assert len(candidate_set) <= blocks.total_comparisons()


# -- machine learning --------------------------------------------------------------------------

class TestMlProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=10, max_value=60),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_logistic_probabilities_bounded(self, n, d, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(n, d))
        labels = (features[:, 0] + rng.normal(scale=0.2, size=n) > 0).astype(float)
        assume(0 < labels.sum() < n)
        model = LogisticRegression().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_scaler_round_trip_shape(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(30, 3)) * rng.uniform(0.5, 5) + rng.uniform(-3, 3)
        transformed = StandardScaler().fit_transform(data)
        assert transformed.shape == data.shape
        assert np.all(np.isfinite(transformed))

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=200),
        st.integers(min_value=2, max_value=100),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_balanced_sample_never_exceeds_population(self, n_negative, n_positive, seed):
        labels = np.concatenate([np.ones(n_positive, bool), np.zeros(n_negative, bool)])
        sample = balanced_sample(labels, size=20, seed=seed)
        assert sample.positives <= min(10, n_positive)
        assert sample.negatives <= min(10, n_negative)
        assert len(set(sample.indices.tolist())) == len(sample)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_platt_output_bounded(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=50)
        labels = (scores + rng.normal(scale=1.0, size=50) > 0).astype(float)
        assume(0 < labels.sum() < 50)
        probabilities = PlattScaler().fit_transform(scores, labels)
        assert np.all((probabilities >= 0) & (probabilities <= 1))
