"""Repository-level pytest configuration.

Makes the in-tree sources importable even when the package has not been
installed (offline environments without the ``wheel`` package cannot perform
PEP 660 editable installs; ``python setup.py develop`` or this path hook both
work).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: performance smoke tests comparing the feature backends "
        "(deselect with '-m \"not perf\"' or set REPRO_SKIP_PERF=1 in "
        "constrained CI)",
    )
