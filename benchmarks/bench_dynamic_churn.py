"""Bench S2 — dynamic churn: per-delete latency and bulk-load speedup.

Exercises the fully dynamic :class:`repro.incremental.MutableBlockIndex` on
a scaled generated benchmark:

* a delete-heavy session replay (30% churn) measuring per-*delete* latency
  bucketed by the retraction delta — removal cost tracks the number of dead
  pairs, not the collection size, mirroring the per-insert claim of the
  incremental bench;
* the same collection loaded through ``add_entities_bulk`` (one array pass
  per side) vs one ``add_entity`` call per profile — the bulk path amortises
  the per-insert Python overhead and must be at least 5x faster.

Reported (and saved to ``benchmarks/results/dynamic_churn.json``).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.datasets import load_benchmark
from repro.incremental import (
    MutableBlockIndex,
    replay_stream,
    train_frozen_model,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DATASET = "DblpAcm"
PRUNING = "BLAST"
DELETE_FRACTION = 0.3


def _retraction_buckets(retraction_sizes, delete_seconds, n_buckets=4):
    """Mean delete latency per retraction-delta quartile."""
    populated = retraction_sizes > 0
    if populated.sum() < n_buckets:
        return []
    deltas = retraction_sizes[populated].astype(np.float64)
    seconds = delete_seconds[populated]
    edges = np.quantile(deltas, np.linspace(0.0, 1.0, n_buckets + 1))
    buckets = []
    for k in range(n_buckets):
        low, high = edges[k], edges[k + 1]
        selected = (
            (deltas >= low) & (deltas <= high)
            if k == n_buckets - 1
            else (deltas >= low) & (deltas < high)
        )
        if not np.any(selected):
            continue
        buckets.append(
            {
                "retraction_min": float(deltas[selected].min()),
                "retraction_max": float(deltas[selected].max()),
                "mean_delete_ms": float(seconds[selected].mean() * 1e3),
                "deletes": int(selected.sum()),
            }
        )
    return buckets


def _time_sequential_load(dataset):
    index = MutableBlockIndex(bilateral=True)
    started = time.perf_counter()
    index.add_entities(dataset.first, side=0)
    index.add_entities(dataset.second, side=1)
    return time.perf_counter() - started, index


def _time_bulk_load(dataset):
    index = MutableBlockIndex(bilateral=True)
    started = time.perf_counter()
    index.add_entities_bulk(list(dataset.first), side=0)
    index.add_entities_bulk(list(dataset.second), side=1)
    return time.perf_counter() - started, index


def test_dynamic_churn_and_bulk_load(benchmark, full_mode, report_sink):
    """Per-delete cost tracks the retraction delta; bulk load beats 1-by-1."""
    scale = 0.6 if full_mode else 0.3
    dataset = load_benchmark(DATASET, seed=0, scale=scale)
    model = train_frozen_model(dataset, bootstrap_fraction=0.5, pruning=PRUNING, seed=0)

    replay = benchmark.pedantic(
        replay_stream,
        args=(dataset, model),
        kwargs=dict(pruning=PRUNING, delete_fraction=DELETE_FRACTION, churn_seed=7),
        rounds=1,
        iterations=1,
    )
    assert replay.num_deletes > 0
    buckets = _retraction_buckets(replay.retraction_sizes, replay.delete_seconds)

    # bulk load vs one-at-a-time inserts (repeat and keep the best of 3 to
    # damp shared-runner noise; both paths get the same treatment)
    sequential_seconds = min(_time_sequential_load(dataset)[0] for _ in range(3))
    bulk_seconds, bulk_index = min(
        (_time_bulk_load(dataset) for _ in range(3)), key=lambda pair: pair[0]
    )
    _, sequential_index = _time_sequential_load(dataset)
    assert bulk_index.num_pairs == sequential_index.num_pairs
    assert bulk_index.total_cardinality == sequential_index.total_cardinality
    speedup = sequential_seconds / max(bulk_seconds, 1e-12)

    payload = {
        "dataset": DATASET,
        "scale": scale,
        "pruning": PRUNING,
        "delete_fraction": DELETE_FRACTION,
        "inserts": replay.num_inserts,
        "deletes": replay.num_deletes,
        "retracted_pairs": int(replay.retraction_sizes.sum()),
        "live_pairs": int(replay.session.num_pairs),
        "mean_insert_ms": float(replay.insert_seconds.mean() * 1e3),
        "mean_delete_ms": float(replay.delete_seconds.mean() * 1e3),
        "p95_delete_ms": float(np.percentile(replay.delete_seconds, 95) * 1e3),
        "retraction_vs_latency_correlation": float(
            np.corrcoef(replay.retraction_sizes, replay.delete_seconds)[0, 1]
        )
        if replay.num_deletes > 2
        else 0.0,
        "retraction_buckets": buckets,
        "sequential_load_seconds": float(sequential_seconds),
        "bulk_load_seconds": float(bulk_seconds),
        "bulk_over_sequential_speedup": float(speedup),
        "bulk_entities": int(len(dataset.first) + len(dataset.second)),
        "bulk_candidate_pairs": int(bulk_index.num_pairs),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "dynamic_churn.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"Dynamic churn — {DATASET} (scale {scale}, {DELETE_FRACTION:.0%} deletes)",
        f"  {replay.num_inserts} inserts / {replay.num_deletes} deletes, "
        f"{payload['retracted_pairs']} pairs retracted, "
        f"{payload['live_pairs']} live pairs at the end",
        f"  per-delete latency: mean={payload['mean_delete_ms']:.3f}ms "
        f"p95={payload['p95_delete_ms']:.3f}ms "
        f"(insert mean {payload['mean_insert_ms']:.3f}ms)",
        "  per-delete latency by retraction-delta quartile:",
    ]
    for bucket in buckets:
        lines.append(
            f"    retraction {bucket['retraction_min']:>6.0f}.."
            f"{bucket['retraction_max']:>6.0f}: "
            f"{bucket['mean_delete_ms']:.3f}ms over {bucket['deletes']} deletes"
        )
    lines.append(
        f"  bulk load: {payload['bulk_entities']} entities in "
        f"{bulk_seconds:.3f}s vs {sequential_seconds:.3f}s one-at-a-time "
        f"({speedup:.1f}x)"
    )
    report_sink("dynamic_churn", "\n".join(lines))

    # Structural expectations that hold on any machine.
    assert len(buckets) >= 2
    assert speedup > 0.0
    # Qualitative timing claims (wall-clock-sensitive; REPRO_SKIP_PERF=1
    # downgrades them to measurements on noisy shared runners):
    # (1) per-delete cost grows with the retraction delta, and
    # (2) the one-pass bulk load amortises per-insert overhead >= 5x.
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert buckets[-1]["mean_delete_ms"] > buckets[0]["mean_delete_ms"]
        assert speedup >= 5.0
