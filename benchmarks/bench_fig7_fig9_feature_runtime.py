"""Bench E5 — Figures 7 & 9: run-time of the top-10 feature sets.

The paper measures the feature-generation + scoring time of the top-10
feature sets of BLAST (Figure 7) and RCNP (Figure 9) on the two largest
datasets (Movies, WalmartAmazon).  The key qualitative outcome is that the
LCP-free sets (all of BLAST's) are cheaper than the LCP-bearing ones (all of
RCNP's).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    BLAST_TOP10,
    RCNP_TOP10,
    backend_speedups,
    format_backend_comparison,
    format_feature_runtime,
    lcp_free_sets_are_faster,
    run_backend_comparison,
    run_feature_runtime,
)
from repro.weights import BACKENDS, BLAST_FEATURE_SET


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "figure,feature_sets",
    [("fig7", BLAST_TOP10), ("fig9", RCNP_TOP10)],
    ids=["figure7_blast_sets", "figure9_rcnp_sets"],
)
def test_feature_set_runtimes(
    benchmark,
    small_config,
    report_sink,
    largest_datasets,
    full_mode,
    figure,
    feature_sets,
    backend,
):
    """Time every top-10 feature set on the largest generated datasets."""
    selected = feature_sets if full_mode else feature_sets[:4]
    config = replace(small_config, backend=backend)
    rows = benchmark.pedantic(
        run_feature_runtime,
        args=(selected, config),
        kwargs=dict(dataset_names=largest_datasets),
        rounds=1,
        iterations=1,
    )
    title = (
        f"Figure 7 — run-time of BLAST's top feature sets ({backend} backend)"
        if figure == "fig7"
        else f"Figure 9 — run-time of RCNP's top feature sets ({backend} backend)"
    )
    report_sink(f"{figure}_feature_runtime_{backend}", format_feature_runtime(rows, title))
    assert all(row.total_seconds > 0 for row in rows)
    assert all(row.backend == backend for row in rows)


def test_sparse_backend_speedup(benchmark, small_config, report_sink, largest_datasets):
    """Measure (not assert) the sparse backend's speedup on the largest datasets."""
    rows = benchmark.pedantic(
        run_backend_comparison,
        args=(BLAST_FEATURE_SET,),
        kwargs=dict(config=small_config, dataset_names=largest_datasets),
        rounds=1,
        iterations=1,
    )
    report_sink(
        "fig7_fig9_backend_speedup",
        format_backend_comparison(
            rows, "Feature-generation run-time per backend (Figures 7/9 datasets)"
        ),
    )
    speedups = backend_speedups(rows)
    assert len(speedups) == len(largest_datasets)
    assert all(np.isfinite(row["speedup"]) and row["speedup"] > 0 for row in speedups)


def test_fig7_vs_fig9_lcp_cost(benchmark, small_config, report_sink, largest_datasets):
    """The paper's headline: BLAST's LCP-free sets are faster than RCNP's sets."""
    def run_both():
        blast_rows = run_feature_runtime(
            BLAST_TOP10[:2], small_config, dataset_names=largest_datasets[:1]
        )
        rcnp_rows = run_feature_runtime(
            RCNP_TOP10[:2], small_config, dataset_names=largest_datasets[:1]
        )
        return blast_rows + rcnp_rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report_sink(
        "fig7_fig9_lcp_cost",
        format_feature_runtime(rows, "Figures 7 vs 9 — LCP-free vs LCP-bearing feature sets"),
    )
    # Note: in this reproduction LCP is computed once per entity and cached in
    # BlockStatistics, so — unlike the paper's implementation — LCP-bearing
    # feature sets are not guaranteed to be slower (see EXPERIMENTS.md).  The
    # report above records which group is faster on this machine.
    assert all(row.total_seconds > 0 for row in rows)
    assert isinstance(lcp_free_sets_are_faster(rows), bool)
