"""Bench E6 — Figures 8 & 10: Generalized vs original Supervised Meta-blocking."""

from repro.evaluation import format_measure_series
from repro.experiments import (
    format_figure8,
    format_figure10,
    paper_figure8_reference,
    run_figure8,
    run_figure10,
)


def test_figure8_effectiveness_comparison(benchmark, bench_config, report_sink):
    """BLAST & RCNP (new features) vs BCl & CNP ([21] features), 500 labels."""
    result = benchmark.pedantic(run_figure8, args=(bench_config,), rounds=1, iterations=1)
    series = result.series()

    report = format_figure8(result)
    paper = format_measure_series(
        paper_figure8_reference(), title="Figure 8 — paper-reported averages (approximate)"
    )
    report_sink("fig8_comparison", report + "\n\n" + paper)

    # who wins: BLAST beats BCl on precision/F1; RCNP beats CNP on precision/F1
    assert series["BLAST"]["precision"] >= series["BCl"]["precision"] - 0.01
    assert series["BLAST"]["f1"] >= series["BCl"]["f1"] - 0.01
    assert series["RCNP"]["precision"] >= series["CNP"]["precision"] - 0.01
    assert series["RCNP"]["f1"] >= series["CNP"]["f1"] - 0.01


def test_figure10_runtime_comparison(benchmark, small_config, report_sink, largest_datasets):
    """Run-times of the four algorithms on the largest datasets."""
    rows = benchmark.pedantic(
        run_figure10,
        args=(small_config,),
        kwargs=dict(dataset_names=largest_datasets),
        rounds=1,
        iterations=1,
    )
    report_sink("fig10_runtime", format_figure10(rows))

    by_algorithm = {}
    for row in rows:
        by_algorithm.setdefault(row["algorithm"], []).append(row["runtime_seconds"])
    # every configuration completes and reports a positive run-time; the
    # paper's LCP-driven ordering is not reproduced because this
    # implementation amortises LCP per entity (see EXPERIMENTS.md)
    assert set(by_algorithm) == {"BCl", "BLAST", "CNP", "RCNP"}
    assert all(min(times) > 0 for times in by_algorithm.values())
