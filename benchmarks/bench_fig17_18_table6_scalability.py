"""Bench E12 — Figures 17 & 18 and Table 6: scalability over Dirty ER datasets."""

import numpy as np

from repro.experiments import (
    ExperimentConfig,
    backend_speedups,
    format_backend_comparison,
    format_scalability,
    format_speedups,
    format_table6,
    run_backend_comparison,
    run_scalability,
    run_table6,
)
from repro.weights import BLAST_FEATURE_SET


def test_figure17_figure18_scalability(benchmark, full_mode, report_sink):
    """Effectiveness and speedup of BCl/CNP vs BLAST/RCNP on D10K–D300K (scaled)."""
    config = ExperimentConfig(repetitions=3 if full_mode else 1, seed=0)
    names = ("D10K", "D50K", "D100K", "D200K", "D300K") if full_mode else ("D10K", "D50K", "D100K")
    scale = None if full_mode else 0.02

    result = benchmark.pedantic(
        run_scalability,
        args=(config,),
        kwargs=dict(dataset_names=names, scale=scale),
        rounds=1,
        iterations=1,
    )
    report_sink(
        "fig17_18_scalability", format_scalability(result) + "\n\n" + format_speedups(result)
    )

    by_algorithm = {}
    for outcome in result.outcomes:
        by_algorithm.setdefault(outcome.algorithm, []).append(outcome.report)

    # Figure 17's shape: BLAST keeps recall high on every dataset and beats the
    # BCl baseline on precision/F1; RCNP beats CNP on precision/F1.
    assert all(report.recall > 0.7 for report in by_algorithm["BLAST"])
    blast_f1 = np.mean([r.f1 for r in by_algorithm["BLAST"]])
    bcl_f1 = np.mean([r.f1 for r in by_algorithm["BCl"]])
    rcnp_precision = np.mean([r.precision for r in by_algorithm["RCNP"]])
    cnp_precision = np.mean([r.precision for r in by_algorithm["CNP"]])
    # BLAST stays in the same effectiveness league as the BCl baseline while
    # retaining far fewer pairs (the synthetic Dirty ER corpora reward BCl2's
    # larger proportional training set more than the original corpora did).
    assert blast_f1 >= 0.5 * bcl_f1
    assert rcnp_precision >= cnp_precision - 0.05

    # Figure 18: every speedup value is positive and finite.
    speedups = result.speedups()
    assert speedups
    assert all(np.isfinite(row["speedup"]) and row["speedup"] > 0 for row in speedups)


def test_scalability_backend_speedup(benchmark, full_mode, report_sink):
    """The backend dimension of the scalability study: loop vs sparse feature time.

    Measures pure feature generation with each backend on the synthetic Dirty
    ER series; the largest dataset is where the sparse backend's batched
    intersections pay off most, and the reported speedup quantifies it.
    """
    names = ("D10K", "D50K", "D100K") if full_mode else ("D10K", "D100K")
    config = ExperimentConfig(
        repetitions=2 if full_mode else 1, seed=0, scale=None if full_mode else 0.05
    )
    rows = benchmark.pedantic(
        run_backend_comparison,
        args=(BLAST_FEATURE_SET,),
        kwargs=dict(
            config=config,
            dataset_names=names,
            dirty=True,
        ),
        rounds=1,
        iterations=1,
    )
    report_sink(
        "fig17_18_backend_speedup",
        format_backend_comparison(
            rows, "Figures 17/18 — feature-generation time per backend (Dirty ER)"
        ),
    )
    speedups = backend_speedups(rows)
    assert len(speedups) == len(names)
    assert all(np.isfinite(row["speedup"]) and row["speedup"] > 0 for row in speedups)


def test_table6_blast_models_on_d100k(benchmark, full_mode, report_sink):
    """The logistic-regression models BLAST fits on D100K across iterations."""
    config = ExperimentConfig(repetitions=1, seed=0)
    snapshots = benchmark.pedantic(
        run_table6,
        args=("D100K",),
        kwargs=dict(iterations=3, config=config, scale=None if full_mode else 0.01),
        rounds=1,
        iterations=1,
    )
    report_sink("table6_blast_models", format_table6(snapshots))

    assert len(snapshots) == 3
    for snapshot in snapshots:
        assert set(snapshot.coefficients) == {"CF-IBF", "RACCB", "RS", "NRS"}
        assert snapshot.detected_duplicates <= snapshot.retained_pairs
    # Table 6's point: different training samples fit visibly different models.
    coefficient_matrix = np.array(
        [[snapshot.coefficients[name] for name in ("CF-IBF", "RACCB", "RS", "NRS")] for snapshot in snapshots]
    )
    assert np.ptp(coefficient_matrix, axis=0).max() > 0.0
