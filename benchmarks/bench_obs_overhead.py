"""Bench S8 — observability overhead: tracing + event log, on vs off.

Runs the real daemon twice over the same workload — once with tracing
disabled and no event log (the bare serving path) and once with tracing
on and a JSON-lines event log attached — and measures ingest throughput
(profiles/s over the full bulk stream) and warm match latency tails in
both modes.  The observability subsystem is built to be cheap enough to
leave on in production: with perf assertions armed, tracing + event
logging must cost under 10% of both ingest throughput and match p99.

The instrumented run is also checked structurally: its event log must
actually contain a request event for every timed request, so the bench
cannot silently measure an unconfigured sink.

Saved to ``benchmarks/results/obs_overhead.json``.  Qualitative perf
assertions are downgraded to measurements with ``REPRO_SKIP_PERF=1``.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets import load_benchmark
from repro.incremental import train_frozen_model
from repro.obs import events as obs_events
from repro.serve import MatchingDaemon, ServeClient

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DATASET = "DblpAcm"
PRUNING = "BLAST"


def _profiles(collection):
    return [
        {"entity_id": p.entity_id, "attributes": dict(p.attributes)}
        for p in collection
    ]


def _start(daemon):
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(120), "daemon did not come up"
    return thread


def _stop(daemon, thread):
    daemon.request_shutdown()
    thread.join(120)
    assert not thread.is_alive(), "daemon did not shut down"


def _run_mode(wal, model, first, second, matches, event_dir):
    """One daemon run: bulk ingest, one warm-up match, timed match cycles.

    ``event_dir`` selects the mode: ``None`` runs bare (tracing off, no
    event log), a path runs fully instrumented (tracing on, event log
    attached, every span tree journaled).
    """
    daemon = MatchingDaemon(
        wal,
        model,
        num_shards=2,
        bilateral=True,
        tracing=event_dir is not None,
        event_log=event_dir,
    )
    thread = _start(daemon)
    try:
        with ServeClient(*daemon.address, timeout=300.0) as client:
            started = time.perf_counter()
            for left, right in zip(first, second):
                client.insert(left, side=0)
                client.insert(right, side=1)
            ingest_seconds = time.perf_counter() - started
            client.match()  # warm the resident views
            latencies = []
            for _ in range(matches):
                cycle = time.perf_counter()
                client.match()
                latencies.append(time.perf_counter() - cycle)
    finally:
        _stop(daemon, thread)
        obs_events.configure(None)
    quantiles = np.quantile(latencies, (0.5, 0.99))
    ingested = 2 * len(first)
    return {
        "ingest_profiles": ingested,
        "ingest_rate_per_s": float(ingested / ingest_seconds),
        "match_p50_ms": float(quantiles[0] * 1e3),
        "match_p99_ms": float(quantiles[1] * 1e3),
        "timed_matches": matches,
    }


def test_observability_overhead(full_mode, tmp_path, report_sink, monkeypatch):
    # a stray sink inherited from the environment would instrument the
    # "off" run too and hide the very overhead this bench measures
    monkeypatch.delenv(obs_events.EVENT_LOG_ENV, raising=False)
    obs_events.configure(None)

    scale = 0.25 if full_mode else 0.1
    matches = 80 if full_mode else 40
    dataset = load_benchmark(DATASET, seed=0, scale=scale)
    model = train_frozen_model(
        dataset, bootstrap_fraction=0.5, pruning=PRUNING, seed=0
    )
    first = _profiles(dataset.first)
    second = _profiles(dataset.second)
    usable = min(len(first), len(second))
    first, second = first[:usable], second[:usable]

    off = _run_mode(tmp_path / "wal-off", model, first, second, matches, None)
    event_dir = tmp_path / "events"
    on = _run_mode(tmp_path / "wal-on", model, first, second, matches, event_dir)

    # the instrumented run really journaled its requests: one request
    # event per insert + warm-up + timed match (plus daemon lifecycle)
    requests = [
        event
        for event in obs_events.read_events(event_dir)
        if event["type"] == "request"
    ]
    assert len(requests) >= 2 * usable + 1 + matches
    assert all("spans" in event for event in requests if event["op"] == "match")

    ingest_overhead = 1.0 - on["ingest_rate_per_s"] / off["ingest_rate_per_s"]
    p99_overhead = on["match_p99_ms"] / off["match_p99_ms"] - 1.0
    payload = {
        "dataset": DATASET,
        "scale": scale,
        "shards": 2,
        "off": off,
        "on": on,
        "ingest_overhead": ingest_overhead,
        "match_p99_overhead": p99_overhead,
        "request_events_journaled": len(requests),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    report_sink(
        "obs_overhead",
        "\n".join(
            [
                f"observability overhead — {DATASET} (scale {scale}, 2 shards)",
                f"  ingest: {off['ingest_rate_per_s']:,.0f} → "
                f"{on['ingest_rate_per_s']:,.0f} profiles/s "
                f"({ingest_overhead:+.1%})",
                f"  match p50: {off['match_p50_ms']:.2f} → "
                f"{on['match_p50_ms']:.2f} ms",
                f"  match p99: {off['match_p99_ms']:.2f} → "
                f"{on['match_p99_ms']:.2f} ms ({p99_overhead:+.1%})",
                f"  request events journaled: {len(requests)}",
            ]
        ),
    )

    # Qualitative claim (REPRO_SKIP_PERF=1 downgrades on noisy runners):
    # full observability costs under 10% of ingest throughput and match
    # p99 versus the bare serving path.
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert ingest_overhead < 0.10, (
            f"tracing + event log cost {ingest_overhead:.1%} of ingest "
            "throughput; expected under 10%"
        )
        assert p99_overhead < 0.10, (
            f"tracing + event log cost {p99_overhead:.1%} of match p99; "
            "expected under 10%"
        )
