"""Ablation benches for the design choices called out in DESIGN.md.

* classifier family (logistic regression vs linear SVM vs Gaussian NB) — the
  paper claims robustness to the classification algorithm;
* SVM probability calibration (Platt scaling vs raw-margin squashing);
* BLAST's pruning ratio r (the paper fixes 0.35 from preliminary experiments);
* Block Filtering ratio (the paper fixes 0.8).
"""

import numpy as np

from repro.blocking import prepare_blocks
from repro.core import GeneralizedSupervisedMetaBlocking, SupervisedBLAST
from repro.core.feature_selection import PreparedDataset
from repro.datasets import load_benchmark
from repro.evaluation import ExperimentRunner, evaluate_candidates, format_table
from repro.ml import GaussianNB, LinearSVC, LogisticRegression
from repro.weights import BLAST_FEATURE_SET


def _run_blast(dataset, classifier_factory, pruning="BLAST", seed=0):
    pipeline = GeneralizedSupervisedMetaBlocking(
        feature_set=BLAST_FEATURE_SET,
        pruning=pruning,
        training_size=50,
        classifier_factory=classifier_factory,
        seed=seed,
    )
    runner = ExperimentRunner(repetitions=2, seed=seed)
    return runner.run_pipeline(pipeline, dataset)


def test_ablation_classifier_family(benchmark, abtbuy_prepared, report_sink):
    """Logistic regression, linear SVM and Gaussian NB should behave similarly."""
    factories = {
        "logistic-regression": LogisticRegression,
        "linear-svm": lambda: LinearSVC(random_state=0),
        "gaussian-nb": GaussianNB,
    }

    def run_all():
        return {
            name: _run_blast(abtbuy_prepared, factory) for name, factory in factories.items()
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "classifier": name,
            "recall": outcome.report.recall,
            "precision": outcome.report.precision,
            "f1": outcome.report.f1,
        }
        for name, outcome in outcomes.items()
    ]
    report_sink(
        "ablation_classifier",
        format_table(rows, title="Ablation — classifier family (BLAST on AbtBuy)"),
    )

    f1_values = [row["f1"] for row in rows]
    recalls = [row["recall"] for row in rows]
    assert min(recalls) > 0.6
    assert max(f1_values) - min(f1_values) < 0.25  # robust to the classifier choice


def test_ablation_svm_calibration(benchmark, abtbuy_prepared, report_sink):
    """Platt-calibrated SVM probabilities vs raw-margin logistic squashing."""
    def run_both():
        return {
            "platt-calibrated": _run_blast(
                abtbuy_prepared, lambda: LinearSVC(random_state=0, calibrate=True)
            ),
            "raw-margin": _run_blast(
                abtbuy_prepared, lambda: LinearSVC(random_state=0, calibrate=False)
            ),
        }

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        {
            "calibration": name,
            "recall": outcome.report.recall,
            "precision": outcome.report.precision,
            "f1": outcome.report.f1,
        }
        for name, outcome in outcomes.items()
    ]
    report_sink(
        "ablation_calibration",
        format_table(rows, title="Ablation — SVM probability calibration (BLAST on AbtBuy)"),
    )
    assert all(row["recall"] > 0.5 for row in rows)


def test_ablation_blast_ratio(benchmark, abtbuy_prepared, report_sink):
    """Sweep BLAST's pruning ratio r around the paper's 0.35."""
    ratios = (0.2, 0.35, 0.5, 0.65)

    def run_sweep():
        outcomes = {}
        for ratio in ratios:
            pipeline = GeneralizedSupervisedMetaBlocking(
                feature_set=BLAST_FEATURE_SET,
                pruning=SupervisedBLAST(ratio=ratio),
                training_size=50,
                seed=0,
            )
            runner = ExperimentRunner(repetitions=2, seed=0)
            outcomes[ratio] = runner.run_pipeline(pipeline, abtbuy_prepared, label=f"r={ratio}")
        return outcomes

    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        {
            "ratio": ratio,
            "recall": outcome.report.recall,
            "precision": outcome.report.precision,
            "f1": outcome.report.f1,
        }
        for ratio, outcome in outcomes.items()
    ]
    report_sink(
        "ablation_blast_ratio",
        format_table(rows, title="Ablation — BLAST pruning ratio r (AbtBuy)"),
    )

    # larger r prunes deeper: recall must not increase with r
    recalls = [row["recall"] for row in rows]
    assert all(later <= earlier + 1e-9 for earlier, later in zip(recalls, recalls[1:]))
    # precision must not decrease with r, as long as anything is still retained
    retained = [row for row in rows if row["recall"] > 0]
    precisions = [row["precision"] for row in retained]
    assert all(later >= earlier - 0.02 for earlier, later in zip(precisions, precisions[1:]))


def test_ablation_block_filtering_ratio(benchmark, report_sink):
    """Sweep the Block Filtering ratio around the paper's 0.8."""
    dataset = load_benchmark("AbtBuy", seed=0)
    ratios = (0.6, 0.8, 1.0)

    def run_sweep():
        rows = []
        for ratio in ratios:
            prepared = prepare_blocks(dataset.first, dataset.second, filtering_ratio=ratio)
            report = evaluate_candidates(prepared.candidates, dataset.ground_truth)
            rows.append(
                {
                    "filtering_ratio": ratio,
                    "candidates": len(prepared.candidates),
                    "recall": report.recall,
                    "precision": report.precision,
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report_sink(
        "ablation_block_filtering",
        format_table(rows, title="Ablation — Block Filtering ratio (AbtBuy input blocks)"),
    )

    # lower ratios keep fewer candidates (deeper filtering)...
    candidate_counts = [row["candidates"] for row in rows]
    assert candidate_counts == sorted(candidate_counts)
    # ...while recall stays close to the unfiltered level
    assert min(row["recall"] for row in rows) >= rows[-1]["recall"] - 0.08
