"""Bench S3 — WAL durability: journaling overhead and recovery speed.

Streams a scaled generated benchmark through a :class:`MatchingSession`
three ways — no WAL, ``sync="batch"`` and ``sync="always"`` — and measures
the per-insert cost of journaling.  The ``sync="always"`` log is then
truncated at 25%, 50% and 100% of its record boundaries and each copy is
recovered with :func:`repro.persistence.recover_index`, timing the
snapshot-plus-replay path and asserting the recovered canonical state
equals a fresh index that applied exactly the surviving records.  The full
log is also recovered as a *session* and must reproduce the live retained
set and online threshold exactly.

Reported (and saved to ``benchmarks/results/wal_recovery.json``).
"""

import json
import os
import shutil
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import load_benchmark
from repro.incremental import replay_stream, train_frozen_model
from repro.persistence import (
    WriteAheadLog,
    apply_logged_record,
    construct_index,
    recover_index,
    recover_session,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DATASET = "DblpAcm"
PRUNING = "BLAST"
DELETE_FRACTION = 0.1
TRUNCATION_FRACTIONS = (0.25, 0.5, 1.0)


def _stream_once(dataset, model, wal_path=None, wal_sync="always"):
    replay = replay_stream(
        dataset,
        model,
        pruning=PRUNING,
        delete_fraction=DELETE_FRACTION,
        churn_seed=7,
        wal_path=wal_path,
        wal_sync=wal_sync,
    )
    if wal_path is not None:
        replay.session.close()
    return replay


def _canonical_pairs(index):
    candidates = index.canonical_candidates(index.candidate_set())
    return set(zip(candidates.left.tolist(), candidates.right.tolist()))


def _reference_for_prefix(records):
    """A fresh index holding exactly the logical prefix of the log."""
    meta = records[0]
    assert meta["op"] == "meta"
    index = construct_index(meta)
    for record in records[1:]:
        apply_logged_record(index, record)
    return index


def _truncated_recoveries(wal_dir, work_dir):
    """Recover the log truncated at fractions of its record boundaries."""
    scan = WriteAheadLog(wal_dir).scan()
    full = (wal_dir / "wal.log").read_bytes()
    points = []
    for fraction in TRUNCATION_FRACTIONS:
        last = max(1, int(round(fraction * len(scan.records))))
        cut = scan.records[last - 1].end
        crash_dir = work_dir / f"crash-{int(fraction * 100)}"
        shutil.rmtree(crash_dir, ignore_errors=True)
        crash_dir.mkdir(parents=True)
        (crash_dir / "wal.log").write_bytes(full[:cut])
        for path in WriteAheadLog(wal_dir).snapshot_paths():
            snapshot = WriteAheadLog(wal_dir).load_snapshot(path)
            if snapshot is not None and int(snapshot["log_offset"]) <= cut:
                shutil.copy(path, crash_dir / path.name)
        started = time.perf_counter()
        recovered = recover_index(crash_dir)
        seconds = time.perf_counter() - started
        surviving = [entry.record for entry in scan.records if entry.end <= cut]
        reference = _reference_for_prefix(surviving)
        assert recovered.num_entities == reference.num_entities
        assert _canonical_pairs(recovered) == _canonical_pairs(reference)
        points.append(
            {
                "fraction": fraction,
                "records_replayed": len(surviving),
                "live_entities": int(recovered.num_entities),
                "recover_seconds": float(seconds),
            }
        )
    return points


def test_wal_overhead_and_recovery(benchmark, full_mode, tmp_path, report_sink):
    """Journaling costs a bounded per-insert overhead; recovery is exact."""
    scale = 0.3 if full_mode else 0.1
    dataset = load_benchmark(DATASET, seed=0, scale=scale)
    model = train_frozen_model(dataset, bootstrap_fraction=0.5, pruning=PRUNING, seed=0)

    baseline = benchmark.pedantic(
        _stream_once, args=(dataset, model), rounds=1, iterations=1
    )
    batch = _stream_once(
        dataset, model, wal_path=tmp_path / "wal-batch", wal_sync="batch"
    )
    always = _stream_once(
        dataset, model, wal_path=tmp_path / "wal-always", wal_sync="always"
    )

    expected = baseline.session.retained().retained_id_set()
    assert batch.session.retained().retained_id_set() == expected
    assert always.session.retained().retained_id_set() == expected

    # full-log session recovery restores the exact answer and thresholds
    started = time.perf_counter()
    recovered = recover_session(tmp_path / "wal-always")
    session_recover_seconds = time.perf_counter() - started
    assert recovered.retained().retained_id_set() == expected
    assert recovered.online.threshold == pytest.approx(
        always.session.online.threshold, abs=1e-12
    )
    recovered.close()

    points = _truncated_recoveries(tmp_path / "wal-always", tmp_path / "crashes")

    mean_baseline = float(baseline.insert_seconds.mean())
    mean_batch = float(batch.insert_seconds.mean())
    mean_always = float(always.insert_seconds.mean())
    stream_seconds = float(baseline.insert_seconds.sum())

    payload = {
        "dataset": DATASET,
        "scale": scale,
        "pruning": PRUNING,
        "delete_fraction": DELETE_FRACTION,
        "inserts": baseline.num_inserts,
        "deletes": baseline.num_deletes,
        "live_pairs": int(baseline.session.num_pairs),
        "mean_insert_ms_baseline": mean_baseline * 1e3,
        "mean_insert_ms_wal_batch": mean_batch * 1e3,
        "mean_insert_ms_wal_always": mean_always * 1e3,
        "wal_batch_overhead": mean_batch / max(mean_baseline, 1e-12),
        "wal_always_overhead": mean_always / max(mean_baseline, 1e-12),
        "log_bytes": int((tmp_path / "wal-always" / "wal.log").stat().st_size),
        "stream_seconds": stream_seconds,
        "session_recover_seconds": float(session_recover_seconds),
        "index_recovery": points,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "wal_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"WAL durability — {DATASET} (scale {scale}, {DELETE_FRACTION:.0%} deletes)",
        f"  {payload['inserts']} inserts / {payload['deletes']} deletes, "
        f"{payload['live_pairs']} live pairs, "
        f"{payload['log_bytes'] / 1024:.0f} KiB log",
        f"  per-insert latency: baseline {mean_baseline * 1e3:.3f}ms, "
        f"wal(batch) {mean_batch * 1e3:.3f}ms "
        f"({payload['wal_batch_overhead']:.2f}x), "
        f"wal(always) {mean_always * 1e3:.3f}ms "
        f"({payload['wal_always_overhead']:.2f}x)",
        f"  session recovery (full log): {session_recover_seconds:.3f}s vs "
        f"{stream_seconds:.3f}s live streaming",
        "  index recovery by surviving log fraction:",
    ]
    for point in points:
        lines.append(
            f"    {point['fraction']:>4.0%}: {point['records_replayed']:>5} "
            f"records -> {point['live_entities']} entities in "
            f"{point['recover_seconds']:.3f}s"
        )
    report_sink("wal_recovery", "\n".join(lines))

    # Structural expectations that hold on any machine.
    assert len(points) == len(TRUNCATION_FRACTIONS)
    assert points[-1]["live_entities"] == baseline.session.index.num_entities
    # Qualitative timing claims (wall-clock-sensitive; REPRO_SKIP_PERF=1
    # downgrades them to measurements on noisy shared runners):
    # (1) batch-sync journaling stays within 3x of the un-journaled insert,
    # (2) replaying the logical log beats re-streaming (no re-scoring, no
    #     feature generation in recover_index).
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert payload["wal_batch_overhead"] <= 3.0
        assert points[-1]["recover_seconds"] < stream_seconds
