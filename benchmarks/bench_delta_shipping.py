"""Bench S5 — delta-shipped reads: per-read bytes, snapshot vs delta.

Runs the real daemon twice over the same growing workload — once with
``delta_shipping=off`` (every read ships the complete shard state, the
PR 7 behaviour) and once with ``delta_shipping=on`` (warm reads ship only
what changed) — and measures, at each growth stage, the bytes a warm
single-insert→match cycle ships plus the match latency tails.  The point
of the refactor is that delta per-read bytes stay O(changed) while full
per-read bytes grow O(state): at the largest stage a warm delta read must
ship under 5% of the full-state bytes, with both modes answering
byte-identically.

Saved to ``benchmarks/results/delta_shipping.json``.  Qualitative perf
assertions are downgraded to measurements with ``REPRO_SKIP_PERF=1``.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets import load_benchmark
from repro.incremental import train_frozen_model
from repro.serve import MatchingDaemon, ServeClient

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DATASET = "DblpAcm"
PRUNING = "BLAST"


def _profiles(collection):
    return [
        {"entity_id": p.entity_id, "attributes": dict(p.attributes)}
        for p in collection
    ]


def _start(daemon):
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(120), "daemon did not come up"
    return thread


def _stop(daemon, thread):
    daemon.request_shutdown()
    thread.join(120)
    assert not thread.is_alive(), "daemon did not shut down"


def _run_mode(wal, model, first, second, stages, cycles, delta_shipping):
    """One daemon run: grow through ``stages``, measure warm read cycles.

    Each stage inserts up to the stage target on both sides, issues one
    warm-up match, then runs ``cycles`` single-insert→match cycles and
    reads the shipped-byte counters around them.  The extra profiles the
    cycles insert come after the stage targets in the same stream, so both
    modes serve the identical entity set at every point.
    """
    daemon = MatchingDaemon(
        wal, model, num_shards=2, bilateral=True, delta_shipping=delta_shipping
    )
    thread = _start(daemon)
    measured = []
    try:
        with ServeClient(*daemon.address, timeout=300.0) as client:
            cursor = 0
            for target in stages:
                while cursor < target:
                    client.insert(first[cursor], side=0)
                    client.insert(second[cursor], side=1)
                    cursor += 1
                client.match()  # warm the resident view at this stage
                before = client.stats()["metrics"]["counters"]
                latencies = []
                for _ in range(cycles):
                    client.insert(first[cursor], side=0)
                    cursor += 1
                    started = time.perf_counter()
                    client.match()
                    latencies.append(time.perf_counter() - started)
                after = client.stats()["metrics"]["counters"]
                shipped = after.get("read_bytes_shipped", 0) - before.get(
                    "read_bytes_shipped", 0
                )
                quantiles = np.quantile(latencies, (0.5, 0.99))
                measured.append(
                    {
                        "entities": int(
                            client.stats()["daemon"]["entities"]
                        ),
                        "per_read_bytes": float(shipped / cycles),
                        "delta_reads": after.get("delta_reads", 0)
                        - before.get("delta_reads", 0),
                        "full_reads": after.get("full_reads", 0)
                        - before.get("full_reads", 0),
                        "match_p50_ms": float(quantiles[0] * 1e3),
                        "match_p99_ms": float(quantiles[1] * 1e3),
                    }
                )
            answer = client.match()
    finally:
        _stop(daemon, thread)
    return measured, answer


def test_delta_shipping_bytes(full_mode, tmp_path, report_sink):
    scale = 0.3 if full_mode else 0.12
    cycles = 8 if full_mode else 5
    dataset = load_benchmark(DATASET, seed=0, scale=scale)
    model = train_frozen_model(
        dataset, bootstrap_fraction=0.5, pruning=PRUNING, seed=0
    )
    first = _profiles(dataset.first)
    second = _profiles(dataset.second)
    # keep cycle inserts (cycles per stage, first side only) inside the stream
    usable = min(len(first) - cycles * 3, len(second))
    assert usable >= 24, "dataset scale too small for the staged workload"
    stages = [usable // 4, usable // 2, usable]

    full_runs, full_answer = _run_mode(
        tmp_path / "wal-off", model, first, second, stages, cycles, False
    )
    delta_runs, delta_answer = _run_mode(
        tmp_path / "wal-on", model, first, second, stages, cycles, True
    )

    # both modes must answer byte-identically at every point (spot-checked
    # at the end of the stream); delta shipping is a transport optimisation
    assert delta_answer["retained"] == full_answer["retained"]

    per_stage = []
    for full_run, delta_run in zip(full_runs, delta_runs):
        per_stage.append(
            {
                "entities": full_run["entities"],
                "snapshot_per_read_bytes": full_run["per_read_bytes"],
                "delta_per_read_bytes": delta_run["per_read_bytes"],
                "delta_fraction": delta_run["per_read_bytes"]
                / max(full_run["per_read_bytes"], 1e-9),
                "snapshot_match_p50_ms": full_run["match_p50_ms"],
                "snapshot_match_p99_ms": full_run["match_p99_ms"],
                "delta_match_p50_ms": delta_run["match_p50_ms"],
                "delta_match_p99_ms": delta_run["match_p99_ms"],
            }
        )
    largest = per_stage[-1]
    payload = {
        "dataset": DATASET,
        "scale": scale,
        "pruning": PRUNING,
        "shards": 2,
        "cycles_per_stage": cycles,
        "stages": per_stage,
        "largest_stage_delta_fraction": largest["delta_fraction"],
        "retained_pairs": len(full_answer["retained"]),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "delta_shipping.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [f"delta-shipped reads — {DATASET} (scale {scale}, 2 shards)"]
    for stage in per_stage:
        lines.append(
            f"  {stage['entities']:>5} entities: "
            f"snapshot {stage['snapshot_per_read_bytes']:>12,.0f} B/read, "
            f"delta {stage['delta_per_read_bytes']:>9,.0f} B/read "
            f"({stage['delta_fraction']:.2%}); "
            f"match p50 {stage['snapshot_match_p50_ms']:.1f}→"
            f"{stage['delta_match_p50_ms']:.1f}ms, "
            f"p99 {stage['snapshot_match_p99_ms']:.1f}→"
            f"{stage['delta_match_p99_ms']:.1f}ms"
        )
    report_sink("delta_shipping", "\n".join(lines))

    # Structural expectations that hold on any machine.
    for full_run, delta_run in zip(full_runs, delta_runs):
        assert full_run["delta_reads"] == 0, "off mode must never ship deltas"
        # warm cycles after the stage's first read ship deltas (a respawned
        # worker mid-bench could force an occasional full re-ship)
        assert delta_run["delta_reads"] >= cycles
    # Qualitative claim (REPRO_SKIP_PERF=1 downgrades on noisy runners):
    # after a warm read, a single-insert step ships under 5% of the bytes
    # a full-state read ships at the same state size.
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert largest["delta_fraction"] < 0.05, (
            f"warm delta reads ship {largest['delta_fraction']:.1%} of the "
            "full-state bytes; expected under 5%"
        )
