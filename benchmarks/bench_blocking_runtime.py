"""Bench B1 — block-preparation runtime: loop vs array backend.

Runs the full block-preparation pipeline (Token Blocking -> Block Purging ->
Block Filtering -> candidate extraction) with both blocking backends over the
synthetic Dirty ER scalability series, reporting per-stage seconds and the
end-to-end speedup per dataset.  Results are saved to
``benchmarks/results/blocking_runtime.json``.

Both backends must produce identical candidate sets on every dataset; the
array backend must deliver at least a 5x end-to-end speedup on the largest
dataset (a wall-clock claim, downgraded to a measurement when
``REPRO_SKIP_PERF=1`` — the tier-1 perf-smoke convention for noisy runners).
"""

import json
import os
from pathlib import Path

import numpy as np

from repro.blocking import prepare_blocks
from repro.datasets import load_dirty_dataset
from repro.utils.timing import StageTimer

RESULTS_DIR = Path(__file__).resolve().parent / "results"

STAGES = ("blocking", "purging", "filtering", "candidate-extraction")


def _prepare_timed(collection, backend):
    prepared = prepare_blocks(collection, None, backend=backend)
    return prepared, prepared.timer


def _bench_dataset(name, seed, scale):
    dataset = load_dirty_dataset(name, seed=seed, scale=scale)
    loop_prepared, loop_timer = _prepare_timed(dataset.collection, "loop")
    array_prepared, array_timer = _prepare_timed(dataset.collection, "array")

    # correctness gate: the backends must agree pair-for-pair
    assert np.array_equal(loop_prepared.candidates.left, array_prepared.candidates.left)
    assert np.array_equal(loop_prepared.candidates.right, array_prepared.candidates.right)
    assert len(loop_prepared.blocks) == len(array_prepared.blocks)

    row = {
        "dataset": name,
        "scale": scale,
        "entities": len(dataset.collection),
        "blocks": len(array_prepared.blocks),
        "candidate_pairs": len(array_prepared.candidates),
        "loop": {stage: loop_timer.get(stage) for stage in STAGES},
        "array": {stage: array_timer.get(stage) for stage in STAGES},
        "loop_total_seconds": loop_timer.total,
        "array_total_seconds": array_timer.total,
        "speedup_total": loop_timer.total / max(array_timer.total, 1e-12),
        "speedup_per_stage": {
            stage: loop_timer.get(stage) / max(array_timer.get(stage), 1e-12)
            for stage in STAGES
        },
    }
    return row


def test_block_preparation_loop_vs_array(benchmark, full_mode, report_sink):
    """Array block preparation: identical output, >=5x on the largest dataset."""
    if full_mode:
        dataset_names, scale = ("D10K", "D100K", "D300K"), 0.02
    else:
        dataset_names, scale = ("D10K", "D300K"), 0.01

    rows = [_bench_dataset(name, 0, scale) for name in dataset_names]
    largest = rows[-1]

    # time the array backend once more under pytest-benchmark for the harness
    largest_dataset = load_dirty_dataset(dataset_names[-1], seed=0, scale=scale)
    benchmark.pedantic(
        prepare_blocks,
        args=(largest_dataset.collection, None),
        kwargs=dict(backend="array"),
        rounds=1,
        iterations=1,
    )

    payload = {
        "scale": scale,
        "datasets": rows,
        "largest_dataset": largest["dataset"],
        "largest_speedup_total": largest["speedup_total"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "blocking_runtime.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [f"Block preparation — loop vs array backend (scale {scale})"]
    for row in rows:
        lines.append(
            f"  {row['dataset']:>6} ({row['entities']} entities, "
            f"{row['candidate_pairs']} pairs): loop {row['loop_total_seconds']:.3f}s "
            f"vs array {row['array_total_seconds']:.3f}s "
            f"({row['speedup_total']:.1f}x)"
        )
        for stage in STAGES:
            lines.append(
                f"      {stage:<21} loop {row['loop'][stage]:.3f}s "
                f"array {row['array'][stage]:.3f}s "
                f"({row['speedup_per_stage'][stage]:.1f}x)"
            )
    report_sink("blocking_runtime", "\n".join(lines))

    # structural expectations that hold on any machine
    assert all(row["candidate_pairs"] > 0 for row in rows)
    assert all(row["speedup_total"] > 0.0 for row in rows)
    # the bench's point — wall-clock-sensitive, so skippable on noisy runners
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert largest["speedup_total"] >= 5.0, (
            "array block preparation must be at least 5x faster than the loop "
            f"path on {largest['dataset']}, got {largest['speedup_total']:.1f}x"
        )
