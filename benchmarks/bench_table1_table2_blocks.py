"""Bench E1 — Tables 1 & 2: dataset characteristics and input block quality."""

from repro.evaluation import format_table
from repro.experiments import format_block_quality, paper_table2_reference, run_block_quality


def test_table1_table2_block_quality(benchmark, bench_config, report_sink):
    """Regenerate Tables 1 & 2 and time the blocking pipeline."""
    rows = benchmark.pedantic(
        run_block_quality,
        kwargs=dict(dataset_names=bench_config.dataset_names, seed=bench_config.seed),
        rounds=1,
        iterations=1,
    )
    report = format_block_quality(rows)

    reference = paper_table2_reference()
    comparison_rows = []
    for row in rows:
        paper = reference.get(row.dataset, {})
        comparison_rows.append(
            {
                "dataset": row.dataset,
                "paper_recall": paper.get("recall", float("nan")),
                "measured_recall": row.recall,
                "paper_precision": paper.get("precision", float("nan")),
                "measured_precision": row.precision,
            }
        )
    comparison = format_table(
        comparison_rows,
        columns=[
            "dataset",
            "paper_recall",
            "measured_recall",
            "paper_precision",
            "measured_precision",
        ],
        title="Table 2 — paper vs measured (input block collections)",
    )
    report_sink("table1_table2_blocks", report + "\n\n" + comparison)

    # the defining property of the input blocks: near-perfect recall, tiny precision
    assert all(row.recall > 0.85 for row in rows)
    assert all(row.precision < 0.1 for row in rows)
