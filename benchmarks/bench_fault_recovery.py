"""Bench S5 — fault recovery: worker MTTR, availability, tails under kills.

Runs a real :class:`repro.serve.MatchingDaemon` (fast supervision
timings) over a frozen DblpAcm model, then SIGKILLs shard workers in a
round-robin kill-loop while a writer keeps ingesting and a reader keeps
issuing full ``match`` queries.  Three numbers come out:

* **worker MTTR** — per kill, the time from SIGKILL to the first clean
  (non-degraded) answer from the rebuilt fleet, the respawn + checkpoint
  adoption + tail-replay path end to end;
* **availability** — the fraction of reads during the loop that were
  answered at all (degraded answers count: that is what they are for);
* **read tails** — p50/p99 ``match`` latency across the whole loop,
  kills included.

Saved to ``benchmarks/results/fault_recovery.json``.  Qualitative perf
assertions are downgraded to measurements with ``REPRO_SKIP_PERF=1``.
"""

import json
import os
import signal
import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets import load_benchmark
from repro.incremental import train_frozen_model
from repro.serve import MatchingDaemon, ServeClient, ServeError

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DATASET = "DblpAcm"
PRUNING = "BLAST"
NUM_SHARDS = 2


def _profiles(collection):
    return [
        {"entity_id": p.entity_id, "attributes": dict(p.attributes)}
        for p in collection
    ]


def _start(daemon):
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(120), "daemon did not come up"
    return thread


def _stop(daemon, thread):
    daemon.request_shutdown()
    thread.join(120)
    assert not thread.is_alive(), "daemon did not shut down"


def test_fault_recovery(full_mode, tmp_path, report_sink):
    scale = 0.2 if full_mode else 0.1
    kills = 6 if full_mode else 4
    dataset = load_benchmark(DATASET, seed=0, scale=scale)
    model = train_frozen_model(
        dataset, bootstrap_fraction=0.5, pruning=PRUNING, seed=0
    )
    preload = _profiles(dataset.first)[:120]
    stream = _profiles(dataset.second)

    daemon = MatchingDaemon(
        tmp_path / "wal",
        model,
        num_shards=NUM_SHARDS,
        bilateral=True,
        heartbeat_interval=0.1,
        hang_timeout=1.0,
    )
    thread = _start(daemon)

    with ServeClient(*daemon.address, timeout=300.0) as client:
        for profile in preload:
            client.insert(profile, side=0)
        # a checkpoint here makes every respawn an adoption + short tail
        client.checkpoint()

    # -- the kill loop: writer ingests, reader measures, workers die -------------
    stop_writer = threading.Event()
    acked = []

    def writer():
        with ServeClient(*daemon.address, timeout=300.0) as sink:
            for profile in stream:
                if stop_writer.is_set():
                    break
                sink.insert(profile, side=1)
                acked.append(profile["entity_id"])

    writer_thread = threading.Thread(target=writer)
    writer_thread.start()

    latencies = []
    answered = 0
    failed = 0
    mttr = []
    with ServeClient(*daemon.address, timeout=300.0) as reader:
        for round_index in range(kills):
            shard = round_index % NUM_SHARDS
            restarts_before = daemon._supervisor.restarts
            os.kill(daemon.router.handle(shard).pid, signal.SIGKILL)
            killed_at = time.perf_counter()
            healed = None
            while time.perf_counter() - killed_at < 60:
                started = time.perf_counter()
                try:
                    answer = reader.match()
                except ServeError:
                    failed += 1
                    continue
                latencies.append(time.perf_counter() - started)
                answered += 1
                if (
                    answer.get("degraded") is None
                    and daemon._supervisor.restarts > restarts_before
                ):
                    healed = time.perf_counter() - killed_at
                    break
            assert healed is not None, (
                f"shard {shard} never healed after kill {round_index}"
            )
            mttr.append(healed)
    stop_writer.set()
    writer_thread.join(300)
    assert not writer_thread.is_alive()

    with ServeClient(*daemon.address, timeout=300.0) as client:
        stats = client.stats()
        final = client.match()
    _stop(daemon, thread)

    # no acked write may be lost to the kill loop (workers are replicas;
    # the authority + WAL never died)
    from repro.persistence.recovery import recover_session

    session = recover_session(tmp_path / "wal")
    try:
        for entity_id in acked:
            assert session.index.has_entity(entity_id, side=1), (
                f"acked insert {entity_id!r} lost across the kill loop"
            )
    finally:
        session.close()

    availability = answered / max(answered + failed, 1)
    quantiles = np.quantile(latencies, (0.5, 0.99)) if latencies else (0.0, 0.0)
    payload = {
        "dataset": DATASET,
        "scale": scale,
        "shards": NUM_SHARDS,
        "kills": kills,
        "worker_restarts": int(
            stats["daemon"]["supervision"]["worker_restarts"]
        ),
        "mttr_seconds_mean": float(np.mean(mttr)),
        "mttr_seconds_max": float(np.max(mttr)),
        "reads_answered": answered,
        "reads_failed": failed,
        "availability": float(availability),
        "match_p50_ms": float(quantiles[0] * 1e3),
        "match_p99_ms": float(quantiles[1] * 1e3),
        "acked_during_loop": len(acked),
        "retained_pairs": len(final["retained"]),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fault_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    report_sink(
        "fault_recovery",
        "\n".join(
            [
                f"fault recovery — {DATASET} (scale {scale}, "
                f"{NUM_SHARDS} shards, {kills} kills)",
                f"  worker MTTR: mean {payload['mttr_seconds_mean']:.2f}s, "
                f"max {payload['mttr_seconds_max']:.2f}s "
                f"(respawn + checkpoint adoption + tail replay)",
                f"  availability under kill-loop: {availability:.1%} "
                f"({answered} answered / {failed} failed; degraded reads "
                f"served from the authority)",
                f"  match under kill-loop: p50 {payload['match_p50_ms']:.1f}ms, "
                f"p99 {payload['match_p99_ms']:.1f}ms",
                f"  {len(acked)} writes acked during the loop, none lost "
                f"({payload['worker_restarts']} worker restarts)",
            ]
        ),
    )

    # Structural expectations that hold on any machine.
    assert payload["worker_restarts"] >= kills
    assert len(mttr) == kills
    assert answered > 0
    assert len(acked) > 0
    # Qualitative timing claims (wall-clock-sensitive; REPRO_SKIP_PERF=1
    # downgrades them on noisy shared runners):
    # (1) a killed worker is back behind a clean read within seconds,
    # (2) the service stayed available through every kill.
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert payload["mttr_seconds_mean"] < 10.0
        assert availability >= 0.99
