"""Bench E7 — Figures 11, 13 & 14: the effect of the training-set size."""

import pytest

from repro.experiments import (
    FAST_TRAINING_SIZES,
    PAPER_TRAINING_SIZES,
    format_training_size,
    run_figure13,
    run_training_size_sweep,
    small_training_set_suffices,
)


@pytest.mark.parametrize(
    "figure,algorithm", [("fig11", "BLAST"), ("fig14", "RCNP")], ids=["figure11_blast", "figure14_rcnp"]
)
def test_training_size_sweep(benchmark, small_config, report_sink, full_mode, figure, algorithm):
    """Sweep the number of labelled instances and report Re/Pr/F1 per size."""
    sizes = PAPER_TRAINING_SIZES if full_mode else FAST_TRAINING_SIZES
    points = benchmark.pedantic(
        run_training_size_sweep,
        args=(algorithm, small_config, sizes),
        rounds=1,
        iterations=1,
    )
    title = f"Figure {'11' if algorithm == 'BLAST' else '14'} — training-set size sweep for {algorithm}"
    report_sink(f"{figure}_training_size_{algorithm.lower()}", format_training_size(points, title))

    # the paper's conclusion: 50 labelled instances already suffice
    assert small_training_set_suffices(points, small=50, tolerance=0.15)
    # recall must stay high across the whole sweep
    assert all(point.report.recall > 0.6 for point in points)


def test_figure13_bcl_vs_blast(benchmark, small_config, report_sink):
    """Figure 13: recall/precision of BCl and BLAST as the training set grows."""
    series = benchmark.pedantic(
        run_figure13,
        args=(small_config,),
        kwargs=dict(sizes=(50, 200, 500)),
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(
        format_training_size(points, f"Figure 13 — {name}") for name, points in series.items()
    )
    report_sink("fig13_bcl_vs_blast", text)

    # BLAST's precision dominates BCl's at every training size (same features)
    for blast_point, bcl_point in zip(series["BLAST"], series["BCl"]):
        assert blast_point.report.precision >= bcl_point.report.precision - 0.02
