"""Bench S4 — serving latency: ingest throughput, query tails, recovery.

Starts a real :class:`repro.serve.MatchingDaemon` (in-process event loop,
real shard worker processes, real sockets) over a frozen model trained on
a scaled DblpAcm, then measures the three numbers a deployment cares
about:

* **ingest throughput** — acknowledged single-profile inserts per second
  through one client connection (every insert journaled and scored);
* **match latency under concurrent load** — p50/p99 of full snapshot
  ``match`` queries issued while a writer keeps inserting on a second
  connection (each answer is a consistent pinned-offset view);
* **recovery time** — SIGTERM-equivalent graceful shutdown, then the time
  for ``--recover`` to reach *serving* again, with the recovered retained
  set asserted identical to the pre-shutdown answer.

Saved to ``benchmarks/results/serve_latency.json``.  Qualitative perf
assertions are downgraded to measurements with ``REPRO_SKIP_PERF=1``.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.datamodel import make_profile
from repro.datasets import load_benchmark
from repro.incremental import train_frozen_model
from repro.serve import MatchingDaemon, ServeClient

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DATASET = "DblpAcm"
PRUNING = "BLAST"


def _profiles(collection):
    return [
        {"entity_id": p.entity_id, "attributes": dict(p.attributes)}
        for p in collection
    ]


def _start(daemon):
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.ready.wait(120), "daemon did not come up"
    return thread


def _stop(daemon, thread):
    daemon.request_shutdown()
    thread.join(120)
    assert not thread.is_alive(), "daemon did not shut down"


def test_serve_latency(full_mode, tmp_path, report_sink):
    scale = 0.3 if full_mode else 0.1
    dataset = load_benchmark(DATASET, seed=0, scale=scale)
    model = train_frozen_model(
        dataset, bootstrap_fraction=0.5, pruning=PRUNING, seed=0
    )
    first = _profiles(dataset.first)
    second = _profiles(dataset.second)

    wal = tmp_path / "wal"
    daemon = MatchingDaemon(wal, model, num_shards=2, bilateral=True)
    thread = _start(daemon)

    # -- phase 1: pure ingest throughput (one connection, acked writes) ----------
    with ServeClient(*daemon.address, timeout=300.0) as client:
        started = time.perf_counter()
        for profile in first:
            client.insert(profile, side=0)
        ingest_seconds = time.perf_counter() - started
        ingested = len(first)

    # -- phase 2: match tails under concurrent ingest ----------------------------
    query_count = 60 if full_mode else 30
    latencies = []
    writer_done = threading.Event()

    def writer():
        try:
            with ServeClient(*daemon.address, timeout=300.0) as sink:
                for profile in second:
                    if writer_done.is_set():
                        break
                    sink.insert(profile, side=1)
        finally:
            writer_done.set()

    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    with ServeClient(*daemon.address, timeout=300.0) as client:
        for _ in range(query_count):
            started = time.perf_counter()
            answer = client.match()
            latencies.append(time.perf_counter() - started)
            if writer_done.is_set():
                break
    writer_done.set()
    writer_thread.join(300)
    assert not writer_thread.is_alive()

    with ServeClient(*daemon.address, timeout=300.0) as client:
        before = client.match()
        stats = client.stats()

    # -- phase 3: graceful shutdown + recovery-to-serving time -------------------
    started = time.perf_counter()
    _stop(daemon, thread)
    shutdown_seconds = time.perf_counter() - started

    started = time.perf_counter()
    recovered = MatchingDaemon(wal, recover=True, num_shards=2)
    thread = _start(recovered)
    recover_seconds = time.perf_counter() - started
    try:
        with ServeClient(*recovered.address, timeout=300.0) as client:
            after = client.match()
        # identical retained pairs; probabilities to float tolerance (the
        # compacted rebuild can reorder summations by one ULP)
        assert [pair[:2] for pair in after["retained"]] == [
            pair[:2] for pair in before["retained"]
        ], "recovered daemon must serve the exact pre-shutdown retained set"
        np.testing.assert_allclose(
            [pair[2] for pair in after["retained"]],
            [pair[2] for pair in before["retained"]],
            rtol=0,
            atol=1e-12,
        )
    finally:
        _stop(recovered, thread)

    quantiles = np.quantile(latencies, (0.5, 0.99)) if latencies else (0.0, 0.0)
    counters = stats["metrics"]["counters"]
    shipped_reads = counters.get("delta_reads", 0) + counters.get("full_reads", 0)
    payload = {
        "dataset": DATASET,
        "scale": scale,
        "pruning": PRUNING,
        "shards": 2,
        "ingested": ingested,
        "ingest_seconds": float(ingest_seconds),
        "ingest_per_second": float(ingested / max(ingest_seconds, 1e-9)),
        "concurrent_matches": len(latencies),
        "match_p50_ms": float(quantiles[0] * 1e3),
        "match_p99_ms": float(quantiles[1] * 1e3),
        "live_entities": int(stats["daemon"]["entities"]),
        "live_pairs": int(stats["daemon"]["pairs"]),
        "retained_pairs": len(before["retained"]),
        "read_bytes_shipped": int(counters.get("read_bytes_shipped", 0)),
        "delta_reads": int(counters.get("delta_reads", 0)),
        "full_reads": int(counters.get("full_reads", 0)),
        "delta_hit_rate": float(
            counters.get("delta_reads", 0) / shipped_reads if shipped_reads else 0.0
        ),
        "shutdown_seconds": float(shutdown_seconds),
        "recover_to_serving_seconds": float(recover_seconds),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serve_latency.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    report_sink(
        "serve_latency",
        "\n".join(
            [
                f"serving latency — {DATASET} (scale {scale}, 2 shards)",
                f"  ingest: {ingested} acked inserts in {ingest_seconds:.2f}s "
                f"({payload['ingest_per_second']:.0f}/s, journaled + scored)",
                f"  match under concurrent ingest: "
                f"p50 {payload['match_p50_ms']:.1f}ms, "
                f"p99 {payload['match_p99_ms']:.1f}ms "
                f"over {len(latencies)} queries "
                f"({payload['live_pairs']} live pairs)",
                f"  read shipping: {payload['delta_reads']} delta / "
                f"{payload['full_reads']} full "
                f"({payload['delta_hit_rate']:.1%} delta hit rate), "
                f"{payload['read_bytes_shipped']} bytes shipped",
                f"  graceful shutdown {shutdown_seconds:.2f}s; "
                f"recover to serving {recover_seconds:.2f}s; "
                f"retained set identical across restart "
                f"({payload['retained_pairs']} pairs)",
            ]
        ),
    )

    # Structural expectations that hold on any machine.
    assert payload["ingested"] > 0
    assert payload["live_entities"] > 0
    assert len(latencies) > 0
    # Qualitative timing claims (wall-clock-sensitive; REPRO_SKIP_PERF=1
    # downgrades them on noisy shared runners):
    # (1) acked-write ingest sustains a usable rate,
    # (2) recovering to serving beats re-ingesting the stream.
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert payload["ingest_per_second"] >= 20.0
        assert recover_seconds < ingest_seconds
