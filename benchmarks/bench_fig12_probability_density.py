"""Bench E8 — Figure 12: matching-probability distributions vs training size."""

from repro.experiments import (
    format_probability_density,
    probabilities_shift_upwards,
    run_probability_density,
)


def test_figure12_probability_density(benchmark, small_config, report_sink, full_mode):
    """Histogram the match probabilities of duplicates vs non-duplicates (AbtBuy)."""
    sizes = (20, 50, 100, 200, 350, 500) if full_mode else (50, 200, 500)
    snapshots = benchmark.pedantic(
        run_probability_density,
        args=("AbtBuy", sizes, small_config),
        rounds=1,
        iterations=1,
    )
    report_sink("fig12_probability_density", format_probability_density(snapshots))

    # structural checks on the Figure 12 data
    for snapshot in snapshots:
        assert snapshot.matching_density.shape == snapshot.non_matching_density.shape
        assert 0.0 <= snapshot.average_threshold <= snapshot.maximum_threshold <= 1.0
        # duplicates concentrate on higher probabilities than non-duplicates
        assert snapshot.matching_quartiles[1] >= snapshot.non_matching_quartiles[1]

    # the paper's observation: larger training sets push the duplicate
    # probabilities upwards (never downwards)
    assert probabilities_shift_upwards(snapshots)
