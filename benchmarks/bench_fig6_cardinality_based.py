"""Bench E3 — Figure 6: cardinality-based pruning algorithm selection."""

from repro.evaluation import format_measure_series
from repro.experiments import (
    format_pruning_selection,
    paper_figure6_reference,
    run_figure6,
)


def test_figure6_cardinality_based_algorithms(benchmark, bench_config, report_sink):
    """Compare CEP, CNP and RCNP (original feature set, 500 labels)."""
    result = benchmark.pedantic(run_figure6, args=(bench_config,), rounds=1, iterations=1)
    series = result.series()

    report = format_pruning_selection(result, "Figure 6 — cardinality-based pruning algorithms")
    paper = format_measure_series(
        paper_figure6_reference(), title="Figure 6 — paper-reported averages (approximate)"
    )
    report_sink("fig6_cardinality_based", report + "\n\n" + paper)

    # RCNP is the paper's clear winner: highest precision and F1 of the three.
    assert series["RCNP"]["precision"] >= series["CNP"]["precision"] - 0.02
    assert series["RCNP"]["precision"] >= series["CEP"]["precision"] - 0.02
    assert series["RCNP"]["f1"] >= series["CNP"]["f1"] - 0.02
