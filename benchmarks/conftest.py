"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper: it runs the
corresponding experiment module on (scaled) generated benchmarks, prints the
same rows/series the paper reports, saves them under ``benchmarks/results/``
and times the core computation with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

The benches use fast experiment configurations (a representative subset of
datasets, 1-2 repetitions) so the whole harness completes in a few minutes;
pass ``--full-benchmarks`` to use all 9 datasets and more repetitions.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import ExperimentConfig  # noqa: E402
from repro.experiments.common import prepare_benchmark_dataset  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--full-benchmarks",
        action="store_true",
        default=False,
        help="run the benches on all 9 datasets with paper-scale repetitions",
    )


@pytest.fixture(scope="session")
def full_mode(request) -> bool:
    """Whether the benches should use the full (slow) configuration."""
    return bool(request.config.getoption("--full-benchmarks"))


@pytest.fixture(scope="session")
def bench_config(full_mode) -> ExperimentConfig:
    """The experiment configuration shared by the benches."""
    if full_mode:
        return ExperimentConfig(repetitions=3, training_size=500, seed=0)
    return ExperimentConfig.fast(
        dataset_names=("AbtBuy", "DblpAcm", "AmazonGP", "ImdbTmdb"),
        repetitions=1,
        training_size=500,
    )


@pytest.fixture(scope="session")
def small_config() -> ExperimentConfig:
    """An even smaller configuration for the expensive sweeps."""
    return ExperimentConfig.fast(dataset_names=("AbtBuy", "DblpAcm"), repetitions=1)


@pytest.fixture(scope="session")
def largest_datasets(full_mode):
    """The dataset names standing in for Movies / WalmartAmazon in run-time benches."""
    if full_mode:
        return ("Movies", "WalmartAmazon")
    return ("Movies", "WalmartAmazon")


@pytest.fixture(scope="session")
def report_sink():
    """Write a named report both to stdout and to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _write


@pytest.fixture(scope="session")
def abtbuy_prepared(bench_config):
    """AbtBuy prepared once for the single-dataset benches."""
    return prepare_benchmark_dataset("AbtBuy", seed=bench_config.seed)
