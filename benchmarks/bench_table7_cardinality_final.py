"""Bench E10 — Table 7: per-dataset comparison of the final cardinality-based algorithms."""

import numpy as np

from repro.evaluation import format_table
from repro.experiments import (
    format_final_comparison,
    paper_table7_reference,
    run_table7,
)


def test_table7_cardinality_final(benchmark, bench_config, report_sink):
    """RCNP (50 labels, Formula 2) vs CNP1 (same labels) vs CNP2 ([21] settings)."""
    result = benchmark.pedantic(run_table7, args=(bench_config,), rounds=1, iterations=1)
    reference = paper_table7_reference()

    comparison_rows = []
    for outcome in result.outcomes:
        paper = reference.get(outcome.algorithm, {}).get(outcome.dataset, {})
        comparison_rows.append(
            {
                "dataset": outcome.dataset,
                "algorithm": outcome.algorithm,
                "paper_precision": paper.get("precision", float("nan")),
                "measured_precision": outcome.report.precision,
                "paper_f1": paper.get("f1", float("nan")),
                "measured_f1": outcome.report.f1,
            }
        )
    comparison = format_table(
        comparison_rows,
        columns=[
            "dataset",
            "algorithm",
            "paper_precision",
            "measured_precision",
            "paper_f1",
            "measured_f1",
        ],
        title="Table 7 — paper vs measured",
    )
    report_sink("table7_cardinality_final", format_final_comparison(result) + "\n\n" + comparison)

    grouped = result.by_algorithm()
    mean_precision = {
        name: float(np.mean([outcome.report.precision for outcome in outcomes]))
        for name, outcomes in grouped.items()
    }
    mean_f1 = {
        name: float(np.mean([outcome.report.f1 for outcome in outcomes]))
        for name, outcomes in grouped.items()
    }
    # who wins: RCNP outperforms both CNP baselines on precision and F1
    assert mean_precision["RCNP"] >= mean_precision["CNP1"] - 0.02
    assert mean_precision["RCNP"] >= mean_precision["CNP2"] - 0.02
    assert mean_f1["RCNP"] >= mean_f1["CNP2"] - 0.02
