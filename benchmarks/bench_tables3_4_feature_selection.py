"""Bench E4 — Tables 3 & 4: feature-set selection for BLAST and RCNP.

The paper evaluates all 255 combinations of 8 features on 9 datasets; at
bench scale we cap the combination size (full exhaustive search is available
with ``--full-benchmarks``) and verify the qualitative outcome: the top sets
all contain CF-IBF, their scores are nearly identical, and BLAST's best sets
avoid the expensive LCP feature.
"""

import numpy as np
import pytest

from repro.experiments import (
    format_feature_selection,
    paper_table3_reference,
    paper_table4_reference,
    run_feature_selection,
)


@pytest.mark.parametrize("algorithm", ["BLAST", "RCNP"])
def test_tables3_4_feature_selection(benchmark, small_config, report_sink, full_mode, algorithm):
    """Exhaustively score feature combinations and report the top-10 by F1."""
    max_set_size = None if full_mode else 3

    result = benchmark.pedantic(
        run_feature_selection,
        args=(algorithm, small_config),
        kwargs=dict(max_set_size=max_set_size, top_k=10),
        rounds=1,
        iterations=1,
    )
    table_name = "table3" if algorithm == "BLAST" else "table4"
    reference = paper_table3_reference() if algorithm == "BLAST" else paper_table4_reference()
    header = (
        f"{table_name.upper()} — top-10 feature sets for {algorithm}\n"
        f"(paper averages over 9 datasets: recall={reference['recall']:.3f} "
        f"precision={reference['precision']:.3f} f1={reference['f1']:.3f})\n"
    )
    report_sink(f"{table_name}_feature_selection_{algorithm.lower()}", header + format_feature_selection(result))

    top = result.top_sets
    assert len(top) >= 3
    # the paper's robustness finding: the top sets score nearly identically
    f1_values = [score.f1 for score in top[:5]]
    assert max(f1_values) - min(f1_values) < 0.12
    # CF-IBF appears in every top set of both algorithms in the paper
    cf_ibf_share = np.mean(["CF-IBF" in score.candidate.features for score in top])
    assert cf_ibf_share >= 0.2
