"""Bench E9 — Table 5: per-dataset comparison of the final weight-based algorithms."""

import numpy as np

from repro.evaluation import format_table
from repro.experiments import (
    format_final_comparison,
    paper_table5_reference,
    run_table5,
)


def test_table5_weight_based_final(benchmark, bench_config, report_sink):
    """BLAST (50 labels, Formula 1) vs BCl1 (same labels) vs BCl2 ([21] settings)."""
    result = benchmark.pedantic(run_table5, args=(bench_config,), rounds=1, iterations=1)
    reference = paper_table5_reference()

    comparison_rows = []
    for outcome in result.outcomes:
        paper = reference.get(outcome.algorithm, {}).get(outcome.dataset, {})
        comparison_rows.append(
            {
                "dataset": outcome.dataset,
                "algorithm": outcome.algorithm,
                "paper_recall": paper.get("recall", float("nan")),
                "measured_recall": outcome.report.recall,
                "paper_f1": paper.get("f1", float("nan")),
                "measured_f1": outcome.report.f1,
            }
        )
    comparison = format_table(
        comparison_rows,
        columns=["dataset", "algorithm", "paper_recall", "measured_recall", "paper_f1", "measured_f1"],
        title="Table 5 — paper vs measured",
    )
    report_sink("table5_weight_based_final", format_final_comparison(result) + "\n\n" + comparison)

    grouped = result.by_algorithm()
    mean_f1 = {
        name: float(np.mean([outcome.report.f1 for outcome in outcomes]))
        for name, outcomes in grouped.items()
    }
    mean_recall = {
        name: float(np.mean([outcome.report.recall for outcome in outcomes]))
        for name, outcomes in grouped.items()
    }
    # who wins (Section 5.4.1): BLAST's recall is the highest of the three and
    # it beats BCl1 (same 50 labelled instances) on F1; the paper's F1 edge
    # over BCl2 depends on the original corpora's response to large training
    # sets and is discussed in EXPERIMENTS.md.
    assert mean_recall["BLAST"] >= mean_recall["BCl2"] - 0.02
    assert mean_recall["BLAST"] >= mean_recall["BCl1"] - 0.02
    assert mean_f1["BLAST"] >= mean_f1["BCl1"] - 0.02
