"""Bench P1 — sharded-engine scaling: end-to-end speedup vs worker count.

Runs the full meta-blocking pipeline (block preparation -> feature
generation -> training -> scoring -> pruning) on the scaled D300K Dirty ER
dataset with ``workers`` in {1, 2, 4}, asserting that every worker count
retains the *identical* pair set (the bit-identical contract) and reporting
the end-to-end speedup over the single-process oracle.  Results are saved
to ``benchmarks/results/parallel_scaling.json``.

The speedup assertion (>= 2x at 4 workers) is a wall-clock claim that needs
4 real cores; it is downgraded to a measurement when ``REPRO_SKIP_PERF=1``
(the tier-1 perf-smoke convention for noisy or small runners) and carries
the ``perf`` marker.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import GeneralizedSupervisedMetaBlocking
from repro.datasets import load_dirty_dataset
from repro.weights import RCNP_FEATURE_SET

RESULTS_DIR = Path(__file__).resolve().parent / "results"

WORKER_COUNTS = (1, 2, 4)
#: RCNP exercises every parallel stage: sharded blocking, the co-occurrence
#: pass, parallel LCP (the expensive feature) and sharded CNP-family pruning.
PRUNING, FEATURE_SET = "RCNP", RCNP_FEATURE_SET


def _run(dataset, workers):
    pipeline = GeneralizedSupervisedMetaBlocking(
        feature_set=FEATURE_SET,
        pruning=PRUNING,
        training_size=50,
        seed=0,
        workers=workers,
    )
    started = time.perf_counter()
    result = pipeline.run_on_collections(
        dataset.collection, None, dataset.ground_truth
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


@pytest.mark.perf
def test_parallel_scaling(benchmark, full_mode, report_sink):
    """Sharded engine: identical retained pairs, >=2x end-to-end at 4 workers."""
    scale = 0.02 if full_mode else 0.01
    dataset = load_dirty_dataset("D300K", seed=0, scale=scale)

    rows = []
    oracle = None
    for workers in WORKER_COUNTS:
        result, elapsed = _run(dataset, workers)
        if oracle is None:
            oracle = result
            baseline_seconds = elapsed
        else:
            # correctness gate: every worker count retains the same pairs
            assert np.array_equal(oracle.probabilities, result.probabilities)
            assert np.array_equal(oracle.retained_mask, result.retained_mask)
        rows.append(
            {
                "workers": workers,
                "seconds": elapsed,
                "speedup": baseline_seconds / max(elapsed, 1e-12),
                "retained_pairs": result.retained_count,
                "stage_seconds": result.timer.as_dict(),
            }
        )

    # time the 4-worker run once more under pytest-benchmark for the harness
    benchmark.pedantic(
        _run, args=(dataset, WORKER_COUNTS[-1]), rounds=1, iterations=1
    )

    payload = {
        "dataset": "D300K",
        "scale": scale,
        "entities": len(dataset.collection),
        "candidate_pairs": int(len(oracle.candidates)),
        "pruning": PRUNING,
        "feature_set": list(FEATURE_SET),
        "runs": rows,
        "speedup_at_max_workers": rows[-1]["speedup"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_scaling.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"Parallel scaling — sharded engine on scaled D300K "
        f"({payload['entities']} entities, {payload['candidate_pairs']} pairs, "
        f"{PRUNING})"
    ]
    for row in rows:
        lines.append(
            f"  workers={row['workers']}: {row['seconds']:.3f}s "
            f"({row['speedup']:.2f}x vs workers=1, "
            f"{row['retained_pairs']} pairs retained)"
        )
    report_sink("parallel_scaling", "\n".join(lines))

    # structural expectations that hold on any machine
    assert all(row["retained_pairs"] == rows[0]["retained_pairs"] for row in rows)
    assert all(row["seconds"] > 0 for row in rows)
    # the bench's point — wall-clock-sensitive, so skippable on small runners
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert rows[-1]["speedup"] >= 2.0, (
            f"expected >= 2x end-to-end speedup at {WORKER_COUNTS[-1]} workers "
            f"on the scaled D300K, got {rows[-1]['speedup']:.2f}x"
        )
