"""Bench S1 — incremental streaming inserts vs full batch recompute.

Streams a generated benchmark through a :class:`MatchingSession` (frozen
batch-trained classifier, per-insert delta features) and compares the cost
of serving one insert against re-running the whole batch pipeline on the
collection accumulated so far — the only alternative the batch architecture
offers for online updates.

Reported (and saved to ``benchmarks/results/incremental_vs_batch.json``):

* per-insert latency (mean / p50 / p95) and throughput;
* mean insert latency bucketed by the insert's candidate delta — per-insert
  cost grows with the delta, not with the collection;
* batch-recompute seconds at collection checkpoints vs the mean insert
  latency around each checkpoint — the speedup grows with collection size,
  i.e. per-insert cost is sub-linear in the entities already indexed.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.blocking import prepare_blocks
from repro.core import FeatureVectorGenerator, get_pruning_algorithm
from repro.datamodel import EntityCollection
from repro.datasets import load_benchmark
from repro.incremental import (
    interleave_profiles,
    replay_stream,
    train_frozen_model,
)
from repro.weights import BlockStatistics

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DATASET = "DblpAcm"
PRUNING = "BLAST"


def _batch_recompute_seconds(profiles_with_sides, model):
    """Time one full batch pass (blocking -> features -> score -> prune)."""
    first = EntityCollection(
        [profile for profile, side in profiles_with_sides if side == 0], name="ck-1"
    )
    second = EntityCollection(
        [profile for profile, side in profiles_with_sides if side == 1], name="ck-2"
    )
    started = time.perf_counter()
    prepared = prepare_blocks(first, second, apply_purging=False, apply_filtering=False)
    stats = BlockStatistics(prepared.blocks)
    matrix = FeatureVectorGenerator(model.feature_set, backend="sparse").generate(
        prepared.candidates, stats
    )
    probabilities = model.score(matrix.values)
    if len(prepared.candidates):
        get_pruning_algorithm(PRUNING).prune(
            probabilities, prepared.candidates, prepared.blocks
        )
    return time.perf_counter() - started, len(prepared.candidates)


def _delta_buckets(delta_sizes, insert_seconds, n_buckets=4):
    """Mean insert latency per candidate-delta quartile."""
    populated = delta_sizes > 0
    if populated.sum() < n_buckets:
        return []
    deltas = delta_sizes[populated].astype(np.float64)
    seconds = insert_seconds[populated]
    edges = np.quantile(deltas, np.linspace(0.0, 1.0, n_buckets + 1))
    buckets = []
    for k in range(n_buckets):
        low, high = edges[k], edges[k + 1]
        selected = (
            (deltas >= low) & (deltas <= high)
            if k == n_buckets - 1
            else (deltas >= low) & (deltas < high)
        )
        if not np.any(selected):
            continue
        buckets.append(
            {
                "delta_min": float(deltas[selected].min()),
                "delta_max": float(deltas[selected].max()),
                "mean_insert_ms": float(seconds[selected].mean() * 1e3),
                "inserts": int(selected.sum()),
            }
        )
    return buckets


def test_incremental_insert_vs_batch_recompute(benchmark, full_mode, report_sink):
    """Per-insert cost tracks the candidate delta and beats batch recompute."""
    scale = 0.6 if full_mode else 0.25
    dataset = load_benchmark(DATASET, seed=0, scale=scale)
    model = train_frozen_model(dataset, bootstrap_fraction=0.5, pruning=PRUNING, seed=0)

    replay = benchmark.pedantic(
        replay_stream,
        args=(dataset, model),
        kwargs=dict(pruning=PRUNING),
        rounds=1,
        iterations=1,
    )
    mean, p50, p95 = replay.latency_percentiles()

    stream_order = list(interleave_profiles(dataset.first, dataset.second))
    checkpoints = []
    for fraction in (0.25, 0.5, 0.75, 1.0):
        upto = max(4, int(round(fraction * len(stream_order))))
        batch_seconds, n_pairs = _batch_recompute_seconds(stream_order[:upto], model)
        window = replay.insert_seconds[max(0, upto - 50) : upto]
        checkpoints.append(
            {
                "entities": upto,
                "candidate_pairs": int(n_pairs),
                "batch_recompute_seconds": float(batch_seconds),
                "mean_insert_ms_near_checkpoint": float(window.mean() * 1e3),
                "batch_over_insert_speedup": float(
                    batch_seconds / max(window.mean(), 1e-12)
                ),
            }
        )

    buckets = _delta_buckets(replay.delta_sizes, replay.insert_seconds)
    payload = {
        "dataset": DATASET,
        "scale": scale,
        "pruning": PRUNING,
        "inserts": replay.num_inserts,
        "candidate_pairs": int(replay.session.num_pairs),
        "mean_insert_ms": mean * 1e3,
        "p50_insert_ms": p50 * 1e3,
        "p95_insert_ms": p95 * 1e3,
        "throughput_inserts_per_s": replay.throughput,
        "delta_vs_latency_correlation": float(
            np.corrcoef(replay.delta_sizes, replay.insert_seconds)[0, 1]
        )
        if replay.num_inserts > 2
        else 0.0,
        "delta_buckets": buckets,
        "checkpoints": checkpoints,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "incremental_vs_batch.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"Incremental streaming vs batch recompute — {DATASET} (scale {scale})",
        f"  {replay.num_inserts} inserts, {payload['candidate_pairs']} pairs, "
        f"mean={mean * 1e3:.3f}ms p95={p95 * 1e3:.3f}ms "
        f"({replay.throughput:,.0f} inserts/s)",
        "  per-insert latency by candidate-delta quartile:",
    ]
    for bucket in buckets:
        lines.append(
            f"    delta {bucket['delta_min']:>6.0f}..{bucket['delta_max']:>6.0f}: "
            f"{bucket['mean_insert_ms']:.3f}ms over {bucket['inserts']} inserts"
        )
    lines.append("  batch recompute vs insert latency at checkpoints:")
    for checkpoint in checkpoints:
        lines.append(
            f"    {checkpoint['entities']:>5} entities: batch "
            f"{checkpoint['batch_recompute_seconds']:.3f}s vs insert "
            f"{checkpoint['mean_insert_ms_near_checkpoint']:.3f}ms "
            f"({checkpoint['batch_over_insert_speedup']:,.0f}x)"
        )
    report_sink("incremental_vs_batch", "\n".join(lines))

    # Structural expectations that hold on any machine.
    assert len(buckets) >= 2
    speedups = [c["batch_over_insert_speedup"] for c in checkpoints]
    assert all(s > 0.0 for s in speedups)
    # Qualitative timing claims (the bench's point, but wall-clock-sensitive;
    # REPRO_SKIP_PERF=1 downgrades them to measurements on noisy shared
    # runners, matching the tier-1 perf-smoke convention):
    # (1) per-insert cost grows with the insert's candidate delta, and
    # (2) it is sub-linear in collection size — serving an insert beats a
    #     full batch recompute, increasingly so as the collection grows.
    if not os.environ.get("REPRO_SKIP_PERF"):
        assert buckets[-1]["mean_insert_ms"] > buckets[0]["mean_insert_ms"]
        assert all(s > 1.0 for s in speedups)
        assert speedups[-1] > speedups[0]
