"""Bench E2 — Figure 5: weight-based pruning algorithm selection."""

from repro.evaluation import format_measure_series
from repro.experiments import (
    format_pruning_selection,
    paper_figure5_reference,
    run_figure5,
)


def test_figure5_weight_based_algorithms(benchmark, bench_config, report_sink):
    """Compare BCl, WEP, WNP, RWNP and BLAST (original feature set, 500 labels)."""
    result = benchmark.pedantic(run_figure5, args=(bench_config,), rounds=1, iterations=1)
    series = result.series()

    report = format_pruning_selection(result, "Figure 5 — weight-based pruning algorithms")
    paper = format_measure_series(
        paper_figure5_reference(), title="Figure 5 — paper-reported averages (approximate)"
    )
    report_sink("fig5_weight_based", report + "\n\n" + paper)

    # Shape checks mirroring the paper's findings:
    # the new algorithms trade recall for clearly better precision than BCl ...
    assert series["WEP"]["precision"] >= series["BCl"]["precision"]
    assert series["RWNP"]["precision"] >= series["BCl"]["precision"]
    # ... with RWNP/WEP the deepest pruners and WNP/BLAST the recall-friendly ones
    assert series["RWNP"]["recall"] <= series["WNP"]["recall"] + 0.02
    assert series["BLAST"]["recall"] >= series["RWNP"]["recall"] - 0.02
