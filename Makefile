# Convenience targets wrapping the project's canonical commands.
#
#   make test              - the tier-1 verification suite (fails fast)
#   make test-equivalence  - backend-equivalence + golden regression tests only
#   make test-fast         - tier-1 suite without the perf smoke tests
#   make bench-smoke       - quick feature-runtime bench incl. backend speedup
#   make bench-stream      - incremental streaming vs batch recompute bench
#   make bench-churn       - dynamic churn bench (delete latency, bulk loads)
#   make bench-blocking    - block-preparation bench (loop vs array backend)
#   make bench-parallel    - sharded-engine scaling bench (speedup vs workers)
#   make bench-wal         - WAL durability bench (journal overhead, recovery)
#   make bench-serve       - serving bench (ingest rate, match tails, recovery)
#   make bench-delta       - delta-shipping bench (per-read bytes, snapshot vs delta)
#   make bench-faults      - fault-recovery bench (worker MTTR, availability)
#   make bench-obs         - observability overhead bench (tracing+events on vs off)
#   make test-chaos        - seeded chaos suite (kill-loop against the daemon)
#   make bench             - the full pytest-benchmark harness

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-equivalence test-fast test-chaos bench-smoke bench-stream bench-churn bench-blocking bench-parallel bench-wal bench-serve bench-delta bench-faults bench-obs bench

test:
	$(PYTEST) -x -q

test-equivalence:
	$(PYTEST) -q tests/weights/test_backend_equivalence.py tests/weights/test_golden_features.py

test-fast:
	REPRO_SKIP_PERF=1 $(PYTEST) -x -q

bench-smoke:
	$(PYTEST) -q benchmarks/bench_fig7_fig9_feature_runtime.py

bench-stream:
	$(PYTEST) -q benchmarks/bench_incremental_vs_batch.py

bench-churn:
	$(PYTEST) -q benchmarks/bench_dynamic_churn.py

bench-blocking:
	$(PYTEST) -q benchmarks/bench_blocking_runtime.py

bench-parallel:
	$(PYTEST) -q benchmarks/bench_parallel_scaling.py

bench-wal:
	$(PYTEST) -q benchmarks/bench_wal_recovery.py

bench-serve:
	$(PYTEST) -q benchmarks/bench_serve.py

bench-delta:
	$(PYTEST) -q benchmarks/bench_delta_shipping.py

bench-faults:
	$(PYTEST) -q benchmarks/bench_fault_recovery.py

bench-obs:
	$(PYTEST) -q benchmarks/bench_obs_overhead.py

test-chaos:
	$(PYTEST) -q -m chaos tests/faults/

bench:
	$(PYTEST) -q benchmarks/ -o python_files='bench_*.py' --benchmark-only
