"""Setup shim for environments without the `wheel` package (offline editable installs)."""
from setuptools import setup

setup()
