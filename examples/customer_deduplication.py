"""Customer-database deduplication (Dirty ER) — the paper's motivating scenario.

The paper is motivated by the deduplication of a legacy customer database
(~7.5M electricity supplies with name, address and mostly-empty optional
fields).  This example reproduces that workflow at laptop scale with the
Dirty ER generator: a single "dirty" collection containing corrupted copies
of customer records, deduplicated end to end with schema-agnostic blocking
plus Generalized Supervised Meta-blocking, while keeping human labelling to
just 50 pairs.

Run with::

    python examples/customer_deduplication.py
"""

from repro import (
    GeneralizedSupervisedMetaBlocking,
    evaluate_candidates,
    evaluate_result,
    load_dirty_dataset,
    prepare_blocks,
)
from repro.core import SupervisedRCNP
from repro.ml import LogisticRegression
from repro.weights import RCNP_FEATURE_SET


def main() -> None:
    # A Dirty ER dataset: one collection, ~30 % of the records are corrupted
    # copies (typos, missing values) of other records in the same collection.
    dataset = load_dirty_dataset("D50K", seed=3, scale=0.05)
    collection = dataset.collection
    print(f"Customer registry: {len(collection)} records, {len(dataset.ground_truth)} duplicate pairs")

    # Schema-agnostic blocking: no blocking key needs to be designed, every
    # token of every attribute is a signature.
    prepared = prepare_blocks(collection, None)
    before = evaluate_candidates(prepared.candidates, dataset.ground_truth)
    print(
        f"Token Blocking + Purging + Filtering -> {len(prepared.candidates)} candidate pairs "
        f"(recall={before.recall:.3f}, precision={before.precision:.5f})"
    )

    # A deduplication back-office wants a short, high-precision list of pairs
    # to review, so we use the cardinality-based RCNP with the Formula 2
    # features and only 50 labelled pairs (25 matches + 25 non-matches).
    pipeline = GeneralizedSupervisedMetaBlocking(
        feature_set=RCNP_FEATURE_SET,
        pruning=SupervisedRCNP(),
        classifier_factory=LogisticRegression,
        training_size=50,
        seed=1,
    )
    result = pipeline.run(prepared.blocks, prepared.candidates, dataset.ground_truth)
    after = evaluate_result(result, dataset.ground_truth)

    print(f"Review list: {result.retained_count} pairs "
          f"({100 * result.retained_count / len(prepared.candidates):.1f}% of the candidates)")
    print(f"  recall={after.recall:.3f}  precision={after.precision:.3f}  f1={after.f1:.3f}")

    # Show a few of the highest-probability pairs the reviewer would see first.
    import numpy as np

    order = np.argsort(-result.probabilities)
    shown = 0
    print("\nTop suggested duplicate pairs:")
    for position in order:
        if not result.retained_mask[position]:
            continue
        pair = result.candidates.pair_at(int(position))
        left = collection[pair.left]
        right = collection[pair.right]
        is_match = dataset.ground_truth.is_match(pair.left, pair.right)
        print(
            f"  p={result.probabilities[position]:.2f}  "
            f"[{left.entity_id}] {left.text()[:40]!r}  <->  "
            f"[{right.entity_id}] {right.text()[:40]!r}  match={is_match}"
        )
        shown += 1
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
