"""Scalability study — a scaled-down version of the paper's Section 5.5.

Runs the four final configurations (BCl, CNP with the [21] settings; BLAST,
RCNP with the new feature sets and 50 labelled pairs) over the synthetic
Dirty ER series D10K–D300K (generated at a laptop-friendly scale) and prints
the Figure 17 effectiveness rows, the Figure 18 speedups and the Table 6
logistic-regression models.

Run with::

    python examples/scalability_study.py
"""

from repro.experiments import (
    ExperimentConfig,
    format_scalability,
    format_speedups,
    format_table6,
    run_scalability,
    run_table6,
)


def main() -> None:
    config = ExperimentConfig(repetitions=1, seed=0)

    print("Running the scalability matrix (4 algorithms x 3 dataset sizes)...\n")
    result = run_scalability(config, dataset_names=("D10K", "D50K", "D100K"), scale=0.02)
    print(format_scalability(result))
    print()
    print(format_speedups(result))

    print("\nFitting BLAST's logistic-regression models on D100K (Table 6)...\n")
    snapshots = run_table6("D100K", iterations=3, config=config, scale=0.01)
    print(format_table6(snapshots))
    print(
        "\nNote how the coefficients vary across iterations: each iteration draws a"
        "\ndifferent 25+25 labelled sample, which is the variance source the paper"
        "\ndiscusses in Section 5.5."
    )


if __name__ == "__main__":
    main()
