"""Feature-selection study — a scaled-down version of the paper's Section 5.3.

Scores feature-set combinations (capped at 4 features so the example finishes
in about a minute) for BLAST and RCNP on two benchmark profiles and prints
the Table 3/4-style top-10 ranking, highlighting the sets the paper selects
(Formula 1 for BLAST, Formula 2 for RCNP).

Run with::

    python examples/feature_selection_study.py
"""

from repro.core import FeatureSelectionStudy, enumerate_feature_sets
from repro.evaluation import format_table
from repro.experiments import ExperimentConfig, prepare_benchmark_dataset
from repro.weights import BLAST_FEATURE_SET, RCNP_FEATURE_SET


def main() -> None:
    config = ExperimentConfig.fast(dataset_names=("AbtBuy", "DblpAcm"), repetitions=1)
    datasets = [
        prepare_benchmark_dataset(name, seed=config.seed) for name in config.dataset_names
    ]
    print(f"Datasets: {[dataset.name for dataset in datasets]}")

    candidates = [
        candidate
        for candidate in enumerate_feature_sets()
        if len(candidate.features) <= 4
    ]
    print(f"Scoring {len(candidates)} feature combinations (size <= 4) per algorithm...\n")

    for algorithm, paper_choice in (("BLAST", BLAST_FEATURE_SET), ("RCNP", RCNP_FEATURE_SET)):
        study = FeatureSelectionStudy(
            datasets=datasets,
            pruning=algorithm,
            training_size=config.training_size,
            repetitions=1,
            seed=0,
        )
        top = study.run(candidates, top_k=10)
        rows = []
        for score in top:
            row = score.as_row()
            row["paper_choice"] = "<-- paper" if set(score.candidate.features) == set(paper_choice) else ""
            rows.append(row)
        print(
            format_table(
                rows,
                columns=["id", "feature_set", "recall", "precision", "f1", "runtime_seconds", "paper_choice"],
                title=f"Top-10 feature sets for {algorithm} (cf. Table {'3' if algorithm == 'BLAST' else '4'})",
            )
        )
        print()


if __name__ == "__main__":
    main()
