"""Product matching across two catalogues (Clean-Clean ER), comparing algorithms.

Matches a noisy product feed (the AbtBuy-profile benchmark) against a second
catalogue and compares the main configurations of the paper on the same
blocks:

* the Supervised Meta-blocking baseline (BCl with the original feature set);
* unsupervised WNP on RACCB weights (no labels at all);
* Generalized Supervised Meta-blocking with BLAST (recall-oriented) and
  RCNP (precision-oriented).

Run with::

    python examples/product_matching_pipeline.py
"""

from repro import (
    GeneralizedSupervisedMetaBlocking,
    evaluate_candidates,
    evaluate_result,
    evaluate_retained_mask,
    load_benchmark,
    prepare_blocks,
)
from repro.evaluation import format_table
from repro.metablocking import UnsupervisedWNP, build_blocking_graph
from repro.weights import BLAST_FEATURE_SET, ORIGINAL_FEATURE_SET, RCNP_FEATURE_SET


def main() -> None:
    dataset = load_benchmark("AbtBuy", seed=11)
    print(f"Catalogue A: {len(dataset.first)} products, catalogue B: {len(dataset.second)} products")
    print(f"Known matches: {len(dataset.ground_truth)}")

    prepared = prepare_blocks(dataset.first, dataset.second)
    baseline = evaluate_candidates(prepared.candidates, dataset.ground_truth)

    rows = [
        {
            "configuration": "input blocks (no meta-blocking)",
            "pairs": len(prepared.candidates),
            "recall": baseline.recall,
            "precision": baseline.precision,
            "f1": baseline.f1,
        }
    ]

    # Unsupervised meta-blocking: RACCB-weighted blocking graph + WNP.
    graph = build_blocking_graph(
        prepared.blocks, scheme="RACCB", candidates=prepared.candidates
    )
    mask = UnsupervisedWNP().prune(graph, prepared.blocks)
    labels = dataset.ground_truth.labels_for(prepared.candidates)
    unsupervised = evaluate_retained_mask(mask, labels, len(dataset.ground_truth))
    rows.append(
        {
            "configuration": "unsupervised WNP (RACCB weights)",
            "pairs": int(mask.sum()),
            "recall": unsupervised.recall,
            "precision": unsupervised.precision,
            "f1": unsupervised.f1,
        }
    )

    # Supervised configurations, all trained on the same 50 labelled pairs.
    configurations = {
        "BCl — Supervised Meta-blocking [21]": dict(
            feature_set=ORIGINAL_FEATURE_SET, pruning="BCl"
        ),
        "BLAST — Generalized (weight-based)": dict(
            feature_set=BLAST_FEATURE_SET, pruning="BLAST"
        ),
        "RCNP — Generalized (cardinality-based)": dict(
            feature_set=RCNP_FEATURE_SET, pruning="RCNP"
        ),
    }
    for label, keyword_arguments in configurations.items():
        pipeline = GeneralizedSupervisedMetaBlocking(
            training_size=50, seed=5, **keyword_arguments
        )
        result = pipeline.run(prepared.blocks, prepared.candidates, dataset.ground_truth)
        report = evaluate_result(result, dataset.ground_truth)
        rows.append(
            {
                "configuration": label,
                "pairs": result.retained_count,
                "recall": report.recall,
                "precision": report.precision,
                "f1": report.f1,
            }
        )

    print()
    print(
        format_table(
            rows,
            columns=["configuration", "pairs", "recall", "precision", "f1"],
            title="Product matching on AbtBuy — candidate pairs handed to the matcher",
        )
    )
    print(
        "\nBLAST keeps recall high for a matcher that can recover precision later;"
        "\nRCNP hands over the shortest, most precise list of pairs."
    )


if __name__ == "__main__":
    main()
