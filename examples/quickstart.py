"""Quickstart — Generalized Supervised Meta-blocking in ~40 lines.

Generates the DblpAcm benchmark (a synthetic stand-in for the bibliographic
corpus used in the paper), builds the paper's input block collection (Token
Blocking + Block Purging + Block Filtering), runs the BLAST pipeline with 50
labelled pairs and reports how much precision improved at what recall cost.

Run with::

    python examples/quickstart.py
"""

from repro import (
    GeneralizedSupervisedMetaBlocking,
    evaluate_candidates,
    evaluate_result,
    load_benchmark,
    prepare_blocks,
)


def main() -> None:
    # 1. Load (generate) a Clean-Clean ER benchmark with its ground truth.
    dataset = load_benchmark("DblpAcm", seed=7)
    print(f"Dataset {dataset.name}: {dataset.summary()}")

    # 2. Build the redundancy-positive block collection the paper starts from.
    prepared = prepare_blocks(dataset.first, dataset.second)
    before = evaluate_candidates(prepared.candidates, dataset.ground_truth)
    print(
        f"Input blocks: {len(prepared.blocks)} blocks, {len(prepared.candidates)} candidate pairs"
    )
    print(
        f"  recall={before.recall:.3f}  precision={before.precision:.5f}  f1={before.f1:.5f}"
    )

    # 3. Run Generalized Supervised Meta-blocking: BLAST pruning over the
    #    probabilities of a classifier trained on just 50 labelled pairs.
    pipeline = GeneralizedSupervisedMetaBlocking(
        pruning="BLAST",        # weight-based pruning (recall-friendly)
        training_size=50,       # 25 matching + 25 non-matching labelled pairs
        seed=0,
    )
    result = pipeline.run(prepared.blocks, prepared.candidates, dataset.ground_truth)
    after = evaluate_result(result, dataset.ground_truth)

    # 4. Report the improvement.
    print(f"Retained {result.retained_count} of {len(prepared.candidates)} candidate pairs")
    print(
        f"  recall={after.recall:.3f}  precision={after.precision:.3f}  f1={after.f1:.3f}"
        f"  (run-time {result.runtime_seconds:.2f}s)"
    )
    print(
        f"Precision improved {after.precision / max(before.precision, 1e-12):.0f}x "
        f"while keeping {100 * after.recall / max(before.recall, 1e-12):.1f}% of the recall."
    )


if __name__ == "__main__":
    main()
