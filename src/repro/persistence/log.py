"""Write-ahead log with length+CRC32 record framing and atomic snapshots.

The log follows the three WAL rules of embedded write-ahead-logging engines
(append-before-apply, fsync-on-commit, replay-to-last-complete-record):

* **Append before apply.**  :class:`MutableBlockIndex` appends a logical
  record describing a mutation *before* touching any aggregate, and only
  after the mutation's arguments were validated — so the log never holds an
  operation that would fail on replay.
* **Fsync on commit.**  In the default ``sync="always"`` mode every append
  is flushed and fsynced before it returns; ``sync="batch"`` flushes to the
  OS per append and fsyncs only on :meth:`WriteAheadLog.sync`/close,
  trading the tail of the log for throughput.
* **Replay to the last complete record.**  Every record is framed as
  ``uint32 payload length + uint32 CRC32 + payload``; :meth:`WriteAheadLog.scan`
  reads records until the first incomplete or corrupt frame and reports the
  byte offset of the last good one.  A crash mid-append therefore loses at
  most the torn tail record — never the prefix.

Records are logical operations (entity id, side, signature lists) encoded
as canonical JSON, not physical page images: every index mutation is a
deterministic function of the operation sequence, so replaying the logical
log reproduces the uninterrupted run's canonical view exactly.

Snapshots live next to the log as ``snapshot-NNNNNN.snap`` files, written
atomically (temp file + fsync + rename + directory fsync) with their own
magic + length + CRC framing.  Each snapshot embeds the log offset it
covers, so recovery replays only the log tail behind the newest snapshot.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .. import faults
from ..obs import events
from ..obs.trace import hook_span

#: first bytes of every log file; a file not starting with it is not a WAL
LOG_MAGIC = b"RPROWAL1"
#: first bytes of every snapshot file
SNAPSHOT_MAGIC = b"RPROSNP1"

#: log record frame: payload length (uint32) + CRC32 of the payload (uint32)
_RECORD_HEADER = struct.Struct("<II")
#: snapshot frame: payload length (uint64) + CRC32 of the payload (uint32)
_SNAPSHOT_HEADER = struct.Struct("<QI")

#: hard cap on one record's payload; a corrupted length field must not make
#: the scanner attempt a multi-gigabyte read
MAX_RECORD_BYTES = 1 << 30


class WalBrokenError(OSError):
    """The writer left bad bytes on the log tail and refuses further appends.

    Raised after an append failure that could not be undone in place (or an
    injected torn/corrupt tail): the file may end in a partial or invalid
    frame, so appending behind it would bury the damage inside the log.  A
    broken log is still *readable* — :meth:`WriteAheadLog.scan` drops the
    bad tail — and recovery reopens it with ``truncate_at`` as usual.
    """


def encode_record(record: Dict[str, Any]) -> bytes:
    """Frame one logical record: header (length + CRC32) and JSON payload."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError("WAL record exceeds the maximum payload size")
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class WalRecord:
    """One complete log record plus its byte extent in the file."""

    #: byte offset of the record's header
    start: int
    #: byte offset just past the record's payload
    end: int
    #: the decoded logical operation
    record: Dict[str, Any]


@dataclass(frozen=True)
class WalScan:
    """The result of reading a log file up to its last complete record."""

    #: every complete, CRC-valid record in file order
    records: List[WalRecord]
    #: byte offset just past the last complete record
    valid_length: int
    #: total file size; larger than ``valid_length`` when the tail is torn
    file_length: int

    @property
    def truncated(self) -> bool:
        """Whether a torn or corrupt tail was dropped."""
        return self.file_length > self.valid_length


class WriteAheadLog:
    """A directory holding one append-only log plus its snapshots.

    Parameters
    ----------
    path:
        Directory for ``wal.log`` and ``snapshot-*.snap`` (created if
        missing).
    sync:
        ``"always"`` (default) fsyncs every append — the commit rule;
        ``"batch"`` flushes per append and fsyncs only on :meth:`sync` /
        :meth:`close`.
    """

    def __init__(self, path: Union[str, Path], sync: str = "always") -> None:
        if sync not in ("always", "batch"):
            raise ValueError("sync must be 'always' or 'batch'")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.log_path = self.path / "wal.log"
        self.sync_mode = sync
        self._file = None
        self._offset = self._current_size()
        self._broken = False

    def _current_size(self) -> int:
        try:
            return self.log_path.stat().st_size
        except FileNotFoundError:
            return 0

    # -- writer lifecycle --------------------------------------------------------
    def open(self, truncate_at: Optional[int] = None) -> "WriteAheadLog":
        """Open the log for appending; create it (with magic) when missing.

        ``truncate_at`` discards everything past that byte offset first —
        recovery passes the scan's ``valid_length`` so a torn tail is
        physically dropped before new records are appended behind it.
        """
        if self._file is not None:
            return self
        if self.log_path.exists():
            handle = open(self.log_path, "r+b")
            size = os.fstat(handle.fileno()).st_size
            if size < len(LOG_MAGIC):
                handle.seek(0)
                handle.write(LOG_MAGIC)
                handle.truncate(len(LOG_MAGIC))
                size = len(LOG_MAGIC)
            if truncate_at is not None and truncate_at < size:
                dropped = size - max(truncate_at, len(LOG_MAGIC))
                size = max(truncate_at, len(LOG_MAGIC))
                handle.truncate(size)
                events.emit("wal_truncated", offset=size, dropped_bytes=dropped)
            handle.seek(0, os.SEEK_END)
            handle.flush()
            os.fsync(handle.fileno())
        else:
            handle = open(self.log_path, "w+b")
            handle.write(LOG_MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
            size = len(LOG_MAGIC)
        self._file = handle
        self._offset = size
        return self

    @property
    def log_offset(self) -> int:
        """The current append offset (== the log's valid size)."""
        if self._file is not None:
            return self._offset
        return self._current_size()

    @property
    def is_fresh(self) -> bool:
        """Whether no record has ever been appended (magic only, or empty)."""
        return self.log_offset <= len(LOG_MAGIC)

    def is_empty(self) -> bool:
        """Whether the directory holds neither records nor snapshots."""
        return self.is_fresh and not self.snapshot_paths()

    @property
    def broken(self) -> bool:
        """Whether the writer is failed (see :class:`WalBrokenError`)."""
        return self._broken

    def append_record(self, record: Dict[str, Any]) -> int:
        """Append one logical record; returns the offset just past it.

        Under ``sync="always"`` the record is durable when this returns.

        A failed write/flush/fsync truncates the file back to the last
        committed offset before re-raising, so the append either happened
        entirely or not at all; when even the truncate fails the log is
        marked broken and every further append raises
        :class:`WalBrokenError`.
        """
        if self._broken:
            raise WalBrokenError(
                f"{self.log_path} writer failed mid-append and was not "
                "repaired; recover the directory to continue"
            )
        if self._file is None:
            self.open()
        blob = encode_record(record)
        damage = faults.on_wal_append()
        if damage is not None:
            self._inject_tail_damage(blob, damage)
        try:
            # attributed to the active request trace, when one is active on
            # this thread (the daemon's mutation thread activates it)
            with hook_span("wal-append", bytes=len(blob)):
                self._file.write(blob)
                self._file.flush()
                if self.sync_mode == "always":
                    faults.on_wal_fsync()
                    os.fsync(self._file.fileno())
        except OSError:
            self._undo_partial_append()
            raise
        self._offset += len(blob)
        events.emit("wal_append", offset=self._offset, bytes=len(blob))
        return self._offset

    def _inject_tail_damage(self, blob: bytes, damage: str) -> None:
        """Write an injected torn or bit-flipped tail, mark broken, raise."""
        if damage == "torn":
            bad = blob[: max(1, len(blob) // 2)]
        else:
            flipped = bytearray(blob)
            flipped[-1] ^= 0xFF
            bad = bytes(flipped)
        self._file.write(bad)
        self._file.flush()
        self._broken = True
        events.emit("wal_broken", cause=f"injected {damage} tail", offset=self._offset)
        raise faults.InjectedFaultError(f"injected {damage} WAL tail")

    def _undo_partial_append(self) -> None:
        """Restore the append-or-nothing invariant after a failed append.

        Whatever prefix of the record reached the file is truncated away;
        the committed offset is untouched, so the writer keeps working.  If
        the truncate itself fails the tail state is unknown and the log is
        marked broken.
        """
        try:
            self._file.seek(self._offset)
            self._file.truncate()
            self._file.flush()
            self._file.seek(0, os.SEEK_END)
        except OSError:
            self._broken = True
            events.emit(
                "wal_broken", cause="undo of a partial append failed",
                offset=self._offset,
            )

    def sync(self) -> None:
        """Flush and fsync pending appends (a no-op when nothing is open)."""
        if self._file is not None:
            self._file.flush()
            faults.on_wal_fsync()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        """Fsync and close the writer; the log can be reopened later."""
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------------------
    def scan(self) -> WalScan:
        """Read every complete record, dropping a torn or corrupt tail.

        The scan stops at the first frame that is incomplete (header or
        payload cut short), fails its CRC, or does not decode as JSON — the
        replay-to-last-complete-record rule.  It never raises on torn data;
        a missing or empty file scans empty, and only a wrong magic is an
        error.
        """
        try:
            self.sync()
        except OSError:
            # a failed writer must not block reading what did commit
            pass
        try:
            data = self.log_path.read_bytes()
        except FileNotFoundError:
            return WalScan(records=[], valid_length=0, file_length=0)
        if len(data) < len(LOG_MAGIC) or data[: len(LOG_MAGIC)] != LOG_MAGIC:
            if len(data) == 0:
                return WalScan(records=[], valid_length=0, file_length=0)
            raise ValueError(f"{self.log_path} is not a repro write-ahead log")
        position = len(LOG_MAGIC)
        records: List[WalRecord] = []
        header_size = _RECORD_HEADER.size
        while True:
            if position + header_size > len(data):
                break
            length, crc = _RECORD_HEADER.unpack_from(data, position)
            if length > MAX_RECORD_BYTES:
                break
            end = position + header_size + length
            if end > len(data):
                break
            payload = data[position + header_size : end]
            if zlib.crc32(payload) != crc:
                break
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            records.append(WalRecord(start=position, end=end, record=decoded))
            position = end
        return WalScan(records=records, valid_length=position, file_length=len(data))

    # -- snapshots ---------------------------------------------------------------
    def snapshot_paths(self) -> List[Path]:
        """Snapshot files in ascending sequence order."""
        return sorted(self.path.glob("snapshot-*.snap"))

    def write_snapshot(self, state: Dict[str, Any]) -> Path:
        """Write ``state`` as the next snapshot, atomically.

        The payload is pickled and framed (magic + length + CRC32); the file
        is fsynced, renamed into place, and the directory fsynced, so a
        crash leaves either the complete snapshot or none — never a partial
        file under the final name.
        """
        existing = self.snapshot_paths()
        sequence = 1 + max(
            (self._snapshot_sequence(path) for path in existing), default=0
        )
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        blob = (
            SNAPSHOT_MAGIC
            + _SNAPSHOT_HEADER.pack(len(payload), zlib.crc32(payload))
            + payload
        )
        final = self.path / f"snapshot-{sequence:06d}.snap"
        temporary = self.path / f"snapshot-{sequence:06d}.tmp"
        with hook_span("wal-snapshot", sequence=sequence, bytes=len(blob)):
            with open(temporary, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, final)
            self._fsync_directory()
        events.emit(
            "wal_snapshot",
            sequence=sequence,
            bytes=len(blob),
            log_offset=int(state.get("log_offset", -1)),
        )
        return final

    @staticmethod
    def _snapshot_sequence(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _fsync_directory(self) -> None:
        descriptor = os.open(self.path, os.O_RDONLY)
        try:
            os.fsync(descriptor)
        finally:
            os.close(descriptor)

    def load_snapshot(self, path: Path) -> Optional[Dict[str, Any]]:
        """Decode one snapshot file; ``None`` when incomplete or corrupt."""
        try:
            data = path.read_bytes()
        except OSError:
            return None
        prefix = len(SNAPSHOT_MAGIC)
        if data[:prefix] != SNAPSHOT_MAGIC:
            return None
        if len(data) < prefix + _SNAPSHOT_HEADER.size:
            return None
        length, crc = _SNAPSHOT_HEADER.unpack_from(data, prefix)
        payload = data[prefix + _SNAPSHOT_HEADER.size :]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            return None

    def latest_snapshot(self) -> Optional[Dict[str, Any]]:
        """The newest snapshot that decodes and CRC-validates, if any.

        A corrupt newest snapshot (crash while the previous process wrote
        it outside the atomic protocol, bit rot) falls back to the next
        older one rather than failing recovery.
        """
        for path in reversed(self.snapshot_paths()):
            state = self.load_snapshot(path)
            if state is not None:
                return state
        return None
