"""Crash recovery: latest complete snapshot + logical log tail replay.

``recover_index(path)`` / ``recover_session(path)`` restore the durable
state a WAL directory holds, with the hard guarantee that recovery from a
log truncated at **any** byte offset yields an index whose canonical view
(canonical candidates, snapshot blocks, aggregates) equals the
uninterrupted run's state after the operations whose records survived —
torn tail records are detected by the length+CRC framing and dropped.

The driver:

1. scans the log to its last complete record (:meth:`WriteAheadLog.scan`);
2. loads the newest decodable snapshot, if any, and rebuilds the index
   from its stored live entities (the compaction path);
3. replays the log records behind the snapshot's embedded offset through
   the index's internal ``_apply_*`` entry points — signatures come from
   the records, nothing is re-tokenized;
4. when resuming, physically truncates the torn tail and re-attaches the
   log so new mutations append behind the recovered state.

If a snapshot covers more of the log than survived (possible under
``sync="batch"``, where snapshots fsync but the log tail may not have),
the snapshot wins: it is a durable, consistent state strictly newer than
the log prefix, and the replay loop naturally finds no records behind its
offset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..obs import events
from .log import WalScan, WriteAheadLog
from .snapshot import build_index_from_state, construct_index


def apply_logged_record(index, record: Dict[str, Any]) -> None:
    """Apply one logical WAL record to an index (plain or sharded).

    Insert-type records carry the signatures extracted when the operation
    was first performed; replay feeds them to the index's ``_apply_*``
    entry points directly, so no blocking method runs during recovery.
    """
    op = record["op"]
    if op == "meta":
        return
    if op == "add":
        index._apply_insert(record["id"], record["side"], record["sig"])
    elif op == "bulk":
        index._apply_bulk(
            [(entity_id, signatures) for entity_id, signatures in record["entities"]],
            record["side"],
        )
    elif op == "remove":
        index.remove_entity(record["id"], side=record["side"])
    elif op == "update":
        index._apply_update(record["id"], record["side"], record["sig"])
    else:
        raise ValueError(f"unknown WAL record op {op!r}")


def _base_state(
    scan: WalScan, snapshot: Optional[Dict[str, Any]], blocking, executor
) -> Tuple[Any, int]:
    """The index to start replay from, and the log offset replay starts at."""
    if snapshot is not None:
        index = build_index_from_state(
            snapshot["index"], blocking=blocking, executor=executor
        )
        return index, int(snapshot["log_offset"])
    for entry in scan.records:
        if entry.record.get("op") == "meta":
            index = construct_index(
                entry.record, blocking=blocking, executor=executor
            )
            return index, entry.end
    raise ValueError(
        "the WAL holds neither a snapshot nor a meta record; nothing to recover"
    )


def recover_index(
    path: Union[str, Path],
    blocking=None,
    executor=None,
    resume: bool = False,
    sync: str = "always",
):
    """Recover a :class:`MutableBlockIndex`/:class:`ShardedMutableBlockIndex`.

    Parameters
    ----------
    path:
        The WAL directory (``wal.log`` + ``snapshot-*.snap``).
    blocking:
        Optional blocking-method override for the rebuilt index (snapshots
        store the original; recovery from a log with no snapshot defaults
        to token blocking).
    executor:
        Optional :class:`repro.parallel.ParallelExecutor` for a sharded
        rebuild.
    resume:
        When ``True``, truncate any torn tail and re-attach the log so the
        recovered index keeps journaling new mutations.
    sync:
        Sync mode for the re-attached log (``resume=True`` only).
    """
    wal = WriteAheadLog(path, sync=sync)
    if not wal.log_path.exists():
        raise FileNotFoundError(f"no write-ahead log at {wal.log_path}")
    scan = wal.scan()
    snapshot = wal.latest_snapshot()
    index, start = _base_state(scan, snapshot, blocking, executor)
    replayed = 0
    for entry in scan.records:
        if entry.start >= start:
            apply_logged_record(index, entry.record)
            replayed += 1
    events.emit(
        "wal_recovery",
        kind="index",
        snapshot="present" if snapshot is not None else "absent",
        replayed_records=replayed,
        truncated_tail=bool(scan.truncated),
        offset=int(scan.valid_length),
    )
    if resume:
        wal.open(truncate_at=scan.valid_length)
        index.attach_wal(wal)
    return index


def recover_session(path: Union[str, Path], sync: str = "always"):
    """Recover a :class:`MatchingSession` with identical online thresholds.

    Loads the newest session snapshot (a session opened with ``wal_path=``
    writes one immediately, so there is always a frozen model to restore),
    rebuilds the index from it, restores the insert-time probabilities and
    the online policy's position-independent state, replays the log tail
    *through the session* (re-scoring each replayed mutation with the
    frozen model — deterministic), then truncates any torn tail and
    resumes journaling.
    """
    from ..incremental.session import MatchingSession

    wal = WriteAheadLog(path, sync=sync)
    if not wal.log_path.exists():
        raise FileNotFoundError(f"no write-ahead log at {wal.log_path}")
    scan = wal.scan()
    snapshot = wal.latest_snapshot()
    if snapshot is None or snapshot.get("session") is None:
        raise ValueError(
            "no session snapshot in the WAL directory; this log was written "
            "by a bare index — use recover_index() instead"
        )
    stored = snapshot["session"]
    index = build_index_from_state(snapshot["index"])
    session = MatchingSession._from_parts(
        model=stored["model"],
        index=index,
        pruning=stored["pruning"],
        online=stored["policy"],
        top_k=stored.get("top_k", 1000),
        snapshot_every=stored.get("snapshot_every"),
    )
    session._insert_probabilities.extend(stored["probabilities"])
    pair_keys = stored["pair_keys"]
    import numpy as np

    session.online.restore_state(
        stored["policy_state"],
        lambda key: int(np.searchsorted(pair_keys, int(key))),
    )
    start = int(snapshot["log_offset"])
    replayed = 0
    for entry in scan.records:
        if entry.start >= start:
            session._replay_record(entry.record)
            replayed += 1
    events.emit(
        "wal_recovery",
        kind="session",
        snapshot="present",
        replayed_records=replayed,
        truncated_tail=bool(scan.truncated),
        offset=int(scan.valid_length),
    )
    wal.open(truncate_at=scan.valid_length)
    index.attach_wal(wal)
    session.wal = wal
    session._generation = index.generation
    session._ops_since_snapshot = 0
    return session
