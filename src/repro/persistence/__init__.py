"""WAL-backed durability for the streaming index (paper Section 6 outlook).

``repro.persistence`` journals every :class:`~repro.incremental.MutableBlockIndex`
mutation to a write-ahead log (length+CRC32 framed logical records,
append-before-apply, fsync-on-commit), snapshots the compacted live state
periodically, and recovers by loading the newest complete snapshot and
replaying the log tail to the last complete record — so a crash at any
byte offset loses at most the torn tail record and never the prefix.

See :class:`WriteAheadLog` for the format, :func:`recover_index` /
:func:`recover_session` for the drivers, and the README's "Durability &
recovery" section for the guarantees.
"""

from .log import (
    LOG_MAGIC,
    SNAPSHOT_MAGIC,
    WalRecord,
    WalScan,
    WriteAheadLog,
    encode_record,
)
from .recovery import apply_logged_record, recover_index, recover_session
from .snapshot import (
    build_index_from_state,
    canonical_pair_keys,
    construct_index,
    dump_index_state,
    session_snapshot_state,
    write_index_snapshot,
)

__all__ = [
    "LOG_MAGIC",
    "SNAPSHOT_MAGIC",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "encode_record",
    "apply_logged_record",
    "recover_index",
    "recover_session",
    "build_index_from_state",
    "canonical_pair_keys",
    "construct_index",
    "dump_index_state",
    "session_snapshot_state",
    "write_index_snapshot",
]
