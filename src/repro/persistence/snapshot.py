"""Snapshot state codecs for the streaming index and matching session.

A snapshot is the compacted logical state of an index: its *live* entities
per side, each with the stored signatures (block keys) of its CSR row —
exactly what :meth:`MutableBlockIndex.compact` replays through the bulk
loader.  Rebuilding from a snapshot therefore goes through the same
``_apply_bulk`` path compaction uses, which guarantees the canonical view
(canonical candidates, snapshot blocks, aggregates) of the rebuilt index
equals the original's.

The rebuild has one further property this module (and the session codec)
leans on: a per-side bulk load assigns raw node ids equal to the canonical
ids, and registers the candidate pairs sorted by packed pair key.  Stored
per-pair state (insert-time probabilities, online top-K membership) is
therefore serialized keyed by *canonical packed pair key* — position-
independent — and lands back on the right registry positions by rank in
the sorted key array.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..incremental.index import MutableBlockIndex, pack_pair_keys
from ..incremental.sharded import ShardedMutableBlockIndex
from .log import WriteAheadLog

#: snapshot/meta record state format version
STATE_FORMAT = 1


def dump_slot_layout(index) -> Optional[Dict[str, Any]]:
    """The raw node-slot layout of a :class:`MutableBlockIndex`.

    ``sides`` dumps only *live* entities in per-side arrival order; the slot
    layout records which raw node id each of those entries occupies, plus
    the total slot count — enough to rebuild an index in the **same node
    space** as the dumping one (live slots re-inserted at their original
    ids, dead slots re-registered as tombstones).  That is what lets a
    shard replica adopt a mid-run checkpoint of a live authority, whose
    tombstoned slots are never reused, without diverging from the node ids
    the authority keeps assigning (see ``ShardReplica``).

    Sharded indexes have no single raw node space to dump; they return
    ``None`` (replicas never adopt from them).
    """
    if isinstance(index, ShardedMutableBlockIndex):
        return None
    sides = index._sides.view()
    return {
        "num_slots": int(sides.size),
        "nodes": {
            side: np.flatnonzero(sides == side).tolist()
            for side in ((0, 1) if index.bilateral else (0,))
        },
    }


def dump_index_state(index) -> Dict[str, Any]:
    """The logical state of an index: topology plus live entities per side."""
    sharded = isinstance(index, ShardedMutableBlockIndex)
    return {
        "kind": "sharded" if sharded else "index",
        "bilateral": index.bilateral,
        "name": index.name,
        "num_shards": index.num_shards if sharded else None,
        "blocking": index.blocking,
        "sides": index._dump_live_entities(),
    }


def construct_index(
    state: Dict[str, Any], blocking=None, executor=None
):
    """An empty index matching a state/meta dict's topology.

    ``state`` may be a snapshot's ``"index"`` dict or a WAL meta record;
    both carry ``kind``/``bilateral``/``num_shards``.  ``blocking``
    overrides the stored extractor (meta records, being JSON, never store
    one — the default token blocking is used).
    """
    if blocking is None:
        blocking = state.get("blocking")
    name = state.get("name") or "stream"
    if state["kind"] == "sharded":
        return ShardedMutableBlockIndex(
            blocking=blocking,
            bilateral=state["bilateral"],
            num_shards=int(state["num_shards"]),
            name=name,
            executor=executor,
        )
    if state["kind"] != "index":
        raise ValueError(f"unknown index kind {state['kind']!r} in WAL state")
    return MutableBlockIndex(
        blocking=blocking, bilateral=state["bilateral"], name=name
    )


def build_index_from_state(
    state: Dict[str, Any], blocking=None, executor=None
):
    """Rebuild an index from a snapshot state dict.

    Live entities are bulk-loaded per side (side 0 first) from their stored
    signatures — the compaction path — so the rebuilt index's canonical
    view equals the dumped one, with raw node ids equal to canonical ids
    and the pair registry sorted by packed key.
    """
    index = construct_index(state, blocking=blocking, executor=executor)
    for side in sorted(state["sides"]):
        entries = state["sides"][side]
        if entries:
            index._apply_bulk(entries, int(side))
    return index


def write_index_snapshot(index, wal: WriteAheadLog):
    """Snapshot an index's live state into the WAL directory.

    Embeds the current log offset, so recovery replays only records behind
    it.  Call between mutations (never mid-operation); with ``sync="batch"``
    the offset may run ahead of the fsynced log tail — recovery then
    prefers the (durable, consistent) snapshot.
    """
    return wal.write_snapshot(
        {
            "format": STATE_FORMAT,
            "log_offset": wal.log_offset,
            "index": dump_index_state(index),
            "slots": dump_slot_layout(index),
            "session": None,
        }
    )


# -- session state -----------------------------------------------------------------

def canonical_pair_keys(index) -> Tuple[np.ndarray, np.ndarray]:
    """Registry positions of the live pairs and their canonical packed keys.

    The keys are computed over canonical node ids, so they are invariant
    under compaction and snapshot rebuilds — the stable identity per-pair
    session state is serialized under.
    """
    alive = index._pair_alive.view()
    positions = np.flatnonzero(alive)
    canonical = index.canonical_node_ids()
    left = canonical[index._pair_left.view()[positions]]
    right = canonical[index._pair_right.view()[positions]]
    keys = pack_pair_keys(np.minimum(left, right), np.maximum(left, right))
    return positions, keys


def session_snapshot_state(session) -> Dict[str, Any]:
    """The full durable state of a :class:`MatchingSession`.

    Index state plus the frozen model, the batch pruning algorithm, the
    online policy (object + position-independent state) and the insert-time
    probabilities keyed by canonical pair key (stored sorted by key, which
    is exactly the rebuilt registry order).
    """
    index = session.index
    positions, keys = canonical_pair_keys(index)
    order = np.argsort(keys)
    probabilities = session._insert_probabilities.view()[positions][order].copy()
    key_of = dict(zip(positions.tolist(), keys.tolist()))
    return {
        "format": STATE_FORMAT,
        "log_offset": session.wal.log_offset,
        "index": dump_index_state(index),
        "slots": dump_slot_layout(index),
        "session": {
            "model": session.model,
            "pruning": session.pruning,
            "policy": session.online,
            "policy_state": session.online.export_state(
                lambda position: key_of[int(position)]
            ),
            "probabilities": probabilities,
            "pair_keys": keys[order].copy(),
            "top_k": session._top_k,
            "snapshot_every": session._snapshot_every,
        },
    }
