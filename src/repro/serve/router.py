"""Pinned read views over the shard workers' states.

A ``match`` or ``top_k`` query pins a WAL offset, asks every shard worker
for its read state *at exactly that offset*, and assembles the states into
a :class:`~repro.incremental.ShardedMutableBlockIndex` whose shards are
lightweight :class:`ShardStateStub` objects duck-typing the
:class:`~repro.incremental.MutableBlockIndex` read surface.  Everything
downstream — the merged pair union, the shard-major CSR concatenation,
:class:`~repro.incremental.sharded.ShardedStatistics`, canonical
renumbering, snapshot blocks — is the PR 5 merge contract reused verbatim,
so a pinned read computes **exactly** what an offline
:class:`~repro.incremental.MatchingSession` computes after replaying the
same log prefix (the sharded/unsharded equivalence already proven by
``tests/incremental/test_sharded_index.py``).

Entity-id resolution is delegated to a caller-provided function: node ids
are append-only in the authority index (slots are tombstoned, never
reused), so the daemon's live ``entity_id(node)`` is correct for any node
that exists at *any* pinned offset ≤ the current one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pruning import SupervisedPruningAlgorithm
from ..datamodel import Block, BlockCollection, CandidateSet, EntityIndexSpace
from ..incremental.delta import DeltaFeatureGenerator
from ..incremental.index import pack_pair_keys
from ..incremental.sharded import ShardedMutableBlockIndex
from ..weights.sparse import EntityBlockCSR
from .workers import ShardWorkerHandle, WorkerError


class _ArrayCell:
    """Duck-types ``_Growable`` for read access: ``.view()`` over a plain array."""

    __slots__ = ("_array",)

    def __init__(self, array: np.ndarray) -> None:
        self._array = array

    def view(self) -> np.ndarray:
        return self._array

    def __len__(self) -> int:
        return self._array.size

    def __getitem__(self, key):
        return self._array[key]


class ShardStateStub:
    """One shard's shipped read state behind the index read surface.

    Implements exactly the attributes and methods the sharded merge layer
    touches on its shards: the ``_Growable``-shaped aggregate arrays, the
    alive-filtered pair registry (``_pair_alive`` is all-True because the
    worker pre-filters), :meth:`csr`, :meth:`snapshot_blocks` and the
    node-registry helpers.
    """

    def __init__(
        self,
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, Any],
        resolve_entity_id: Callable[[int], str],
    ) -> None:
        self.bilateral = bool(meta["bilateral"])
        self.name = meta["name"]
        self.num_blocks = int(meta["num_blocks"])
        self.num_nonempty_blocks = int(meta["num_nonempty_blocks"])
        self.total_cardinality = int(meta["total_cardinality"])
        self._side_counts = list(meta["side_counts"])
        self._block_keys = list(meta["block_keys"])
        self._indptr_array = arrays["indptr"]
        self._indices_array = arrays["indices"]
        self._inverse_block_cardinalities = _ArrayCell(arrays["inv_block_cardinality"])
        self._inverse_block_sizes = _ArrayCell(arrays["inv_block_size"])
        self._blocks_per_entity = _ArrayCell(arrays["blocks_per_entity"])
        self._entity_cardinality = _ArrayCell(arrays["entity_cardinality"])
        self._entity_inv_cardinality = _ArrayCell(arrays["entity_inv_cardinality"])
        self._entity_inv_size = _ArrayCell(arrays["entity_inv_size"])
        self._pair_left = _ArrayCell(arrays["pair_left"])
        self._pair_right = _ArrayCell(arrays["pair_right"])
        self._pair_alive = _ArrayCell(
            np.ones(arrays["pair_left"].size, dtype=np.bool_)
        )
        self._sides_array = arrays["sides"]
        self._members_first = arrays["members_first"]
        self._first_counts = arrays["first_counts"]
        self._members_second = arrays["members_second"]
        self._second_counts = arrays["second_counts"]
        self._resolve = resolve_entity_id
        self._canonical: Optional[np.ndarray] = None

    # -- registry surface --------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return self._sides_array.size

    @property
    def num_entities(self) -> int:
        return int(self._side_counts[0] + self._side_counts[1])

    @property
    def num_pairs(self) -> int:
        return self._pair_left.view().size

    def sides(self) -> np.ndarray:
        return self._sides_array

    def side_of(self, node: int) -> int:
        return int(self._sides_array[node])

    def is_live(self, node: int) -> bool:
        return int(self._sides_array[node]) >= 0

    def entity_id(self, node: int) -> str:
        return self._resolve(int(node))

    def index_space(self) -> EntityIndexSpace:
        if self.bilateral:
            return EntityIndexSpace(self._side_counts[0], self._side_counts[1])
        return EntityIndexSpace(self._side_counts[0])

    def canonical_node_ids(self) -> np.ndarray:
        if self._canonical is None:
            sides = self._sides_array
            canonical = np.full(sides.size, -1, dtype=np.int64)
            first_nodes = np.flatnonzero(sides == 0)
            canonical[first_nodes] = np.arange(first_nodes.size, dtype=np.int64)
            second_nodes = np.flatnonzero(sides == 1)
            canonical[second_nodes] = first_nodes.size + np.arange(
                second_nodes.size, dtype=np.int64
            )
            self._canonical = canonical
        return self._canonical

    def canonical_candidates(self, candidates: CandidateSet) -> CandidateSet:
        canonical = self.canonical_node_ids()
        left = canonical[candidates.left]
        right = canonical[candidates.right]
        if left.size and (np.any(left < 0) or np.any(right < 0)):
            raise ValueError("candidate set references removed entities")
        return CandidateSet(
            np.minimum(left, right), np.maximum(left, right), self.index_space()
        )

    # -- block surface -----------------------------------------------------------
    def csr(self) -> EntityBlockCSR:
        return EntityBlockCSR(
            indptr=self._indptr_array,
            indices=self._indices_array,
            num_blocks=self.num_blocks,
        )

    def snapshot_blocks(self) -> BlockCollection:
        canonical = self.canonical_node_ids()
        blocks: List[Block] = []
        first_position = 0
        second_position = 0
        for offset, key in enumerate(self._block_keys):
            first_end = first_position + int(self._first_counts[offset])
            second_end = second_position + int(self._second_counts[offset])
            blocks.append(
                Block(
                    key=key,
                    entities_first=sorted(
                        int(canonical[node])
                        for node in self._members_first[first_position:first_end]
                    ),
                    entities_second=sorted(
                        int(canonical[node])
                        for node in self._members_second[second_position:second_end]
                    ),
                )
            )
            first_position = first_end
            second_position = second_end
        return BlockCollection(blocks, self.index_space(), name=self.name)


def build_pinned_view(
    states: Sequence[Dict[str, Any]],
    resolve_entity_id: Callable[[int], str],
    name: str = "serve-pinned",
) -> ShardedMutableBlockIndex:
    """Assemble shard states into a read-only sharded index view.

    The view is a real :class:`ShardedMutableBlockIndex` (built without
    ``__init__``) whose shards are :class:`ShardStateStub` objects — every
    merged read path (``candidate_set``, ``statistics``,
    ``canonical_candidates``, ``snapshot_blocks``) runs the PR 5 merge code
    unchanged.  All states must be pinned at the same WAL offset.
    """
    if not states:
        raise ValueError("at least one shard state is required")
    offsets = {int(state["meta"]["offset"]) for state in states}
    if len(offsets) != 1:
        raise ValueError(f"shard states pin different offsets: {sorted(offsets)}")
    view = ShardedMutableBlockIndex.__new__(ShardedMutableBlockIndex)
    view.blocking = None
    view.bilateral = bool(states[0]["meta"]["bilateral"])
    view.num_shards = len(states)
    view.name = name
    view.executor = None
    view.shards = [
        ShardStateStub(state["arrays"], state["meta"], resolve_entity_id)
        for state in states
    ]
    view._mutations = 0
    view._pairs_cache = None
    view._wal = None
    return view


# -- query evaluation over a pinned view -----------------------------------------

def _oriented_pair(view, i: int, j: int) -> Tuple[str, str]:
    """Order a retained pair (first side, second side) when bilateral."""
    if view.bilateral and view.side_of(i) == 1:
        i, j = j, i
    return (view.entity_id(i), view.entity_id(j))


def match_answer(
    view: ShardedMutableBlockIndex,
    model,
    pruning: SupervisedPruningAlgorithm,
) -> Dict[str, Any]:
    """The exact retained set at the view's pinned offset.

    Mirrors :meth:`MatchingSession.retained` — features over every live
    pair, frozen-model scoring, canonical renumbering, batch pruning —
    against the pinned view instead of the live index.  The retained list
    is sorted by entity-id pair, so the response is byte-identical however
    the pairs were distributed over shards.
    """
    features = DeltaFeatureGenerator(view, model.feature_set)
    candidates, matrix = features.generate_all()
    probabilities = model.score(matrix.values)
    if len(candidates) == 0:
        mask = np.zeros(0, dtype=bool)
    else:
        mask = pruning.prune(
            probabilities,
            view.canonical_candidates(candidates),
            view.snapshot_blocks(),
        )
    retained = sorted(
        [*_oriented_pair(view, int(i), int(j)), float(probability)]
        for i, j, probability in zip(
            candidates.left[mask], candidates.right[mask], probabilities[mask]
        )
    )
    return {"num_candidates": len(candidates), "retained": retained}


def top_k_answer(
    view: ShardedMutableBlockIndex, model, node: int, k: int
) -> List[Dict[str, Any]]:
    """The ``k`` most likely matches of one entity at the pinned offset.

    Scores only the pairs containing ``node`` (the delta feature path makes
    point queries cheap); ties are broken deterministically by packed
    candidate key.
    """
    candidates = view.candidate_set()
    mask = (candidates.left == node) | (candidates.right == node)
    left = candidates.left[mask]
    right = candidates.right[mask]
    if left.size == 0:
        return []
    subset = CandidateSet(left, right, view.index_space())
    features = DeltaFeatureGenerator(view, model.feature_set)
    probabilities = model.score(features.generate(subset).values)
    keys = pack_pair_keys(left, right)
    order = np.lexsort((keys, -probabilities))[: max(0, int(k))]
    matches = []
    for position in order.tolist():
        counterpart = int(right[position] if left[position] == node else left[position])
        matches.append(
            {
                "entity_id": view.entity_id(counterpart),
                "side": view.side_of(counterpart),
                "probability": float(probabilities[position]),
            }
        )
    return matches


class ShardRouter:
    """The daemon's fleet of shard workers plus the pinned-view assembly.

    The fleet is mutable: :meth:`respawn` replaces one shard's worker with
    a freshly spawned one (checkpoint adoption makes the replacement cheap)
    while reads keep flowing through the others.  Handle swaps happen under
    the router lock; request traffic holds each handle's own lock, so a
    swapped-out worker is never written to mid-request.
    """

    def __init__(
        self,
        wal_dir,
        num_shards: int,
        resolve_entity_id: Callable[[int], str],
        start_method: Optional[str] = None,
        bootstrap=None,
        adopt_floor: Optional[int] = None,
        allow_from_zero: bool = True,
        adopt_min_gap: Optional[int] = None,
    ) -> None:
        import threading

        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.wal_dir = wal_dir
        self.num_shards = num_shards
        self._resolve = resolve_entity_id
        self._start_method = start_method
        #: the snapshot the authority was rebuilt from, if it recovered —
        #: replicas bootstrap from the same file to share its node space
        self._bootstrap = bootstrap
        self._adopt_floor = adopt_floor
        self._allow_from_zero = allow_from_zero
        self._adopt_min_gap = adopt_min_gap
        self._lock = threading.Lock()
        self._handles: List[ShardWorkerHandle] = []

    def _spawn(self, shard: int) -> ShardWorkerHandle:
        return ShardWorkerHandle(
            self.wal_dir,
            shard,
            self.num_shards,
            self._start_method,
            bootstrap=self._bootstrap,
            adopt_floor=self._adopt_floor,
            allow_from_zero=self._allow_from_zero,
            adopt_min_gap=self._adopt_min_gap,
        )

    def start(self) -> "ShardRouter":
        """Spawn one worker per shard (idempotent)."""
        with self._lock:
            if not self._handles:
                self._handles = [
                    self._spawn(shard) for shard in range(self.num_shards)
                ]
        return self

    def handles(self) -> List[ShardWorkerHandle]:
        """A stable copy of the current fleet (handles may be swapped out
        concurrently — holders must tolerate a dead handle)."""
        with self._lock:
            return list(self._handles)

    def handle(self, shard: int) -> ShardWorkerHandle:
        with self._lock:
            if not self._handles:
                raise WorkerError("the shard router is not running")
            return self._handles[shard]

    def respawn(
        self, shard: int, expected: Optional[ShardWorkerHandle] = None
    ) -> Optional[ShardWorkerHandle]:
        """Replace ``shard``'s worker with a freshly spawned one.

        Spawns the replacement *first*, swaps it in under the router lock
        (guarded by ``expected`` identity so two detectors of the same
        failure produce one respawn), then SIGKILLs the old process — the
        kill also unblocks anyone waiting on the old pipe with a
        :class:`WorkerError`.  Returns the replacement, or ``None`` when
        the swap did not happen (router stopped, or ``expected`` was
        already replaced by someone else).
        """
        fresh = self._spawn(shard)
        with self._lock:
            swapped = bool(self._handles) and (
                expected is None or self._handles[shard] is expected
            )
            if swapped:
                current = self._handles[shard]
                self._handles[shard] = fresh
        if not swapped:
            fresh.kill()
            return None
        current.kill()
        return fresh

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _fan_out(self, command) -> List[Any]:
        """Send a command to every worker first, then collect — workers
        compute concurrently.

        Every handle's lock is held for the duration (``busy_since`` set for
        the supervisor's hang detection).  On a partial failure the workers
        already sent to still owe replies; they are drained so their pipes
        stay in sync — a drain blocked on a wedged worker resolves when the
        supervisor kills it (EOF → :class:`WorkerError`).
        """
        import time

        with self._lock:
            handles = list(self._handles)
        for handle in handles:
            handle.lock.acquire()
        now = time.monotonic()
        for handle in handles:
            handle.busy_since = now
        owed: List[ShardWorkerHandle] = []
        try:
            for handle in handles:
                handle.send(command)
                owed.append(handle)
            results = []
            while owed:
                handle = owed.pop(0)
                results.append(handle.collect())
            return results
        except Exception:
            for handle in owed:
                try:
                    handle.collect()
                except Exception:  # noqa: BLE001 - resync is best-effort
                    pass
            raise
        finally:
            for handle in handles:
                handle.busy_since = None
                handle.lock.release()

    def pinned_view(
        self, offset: int, lookup: Optional[Tuple[int, str]] = None
    ) -> Tuple[ShardedMutableBlockIndex, int]:
        """A read view pinned at ``offset`` plus the optional node lookup."""
        payloads = self._fan_out(("read", int(offset), lookup))
        states = [ShardWorkerHandle.materialize(payload) for payload in payloads]
        view = build_pinned_view(states, self._resolve)
        return view, int(states[0]["meta"]["lookup_node"])

    def shard_stats(self, offset: int) -> List[Dict[str, Any]]:
        """Per-shard counters at ``offset`` (tolerant: a dead or rebuilding
        worker reports an ``error`` entry instead of failing the call)."""
        stats: List[Dict[str, Any]] = []
        for shard in range(self.num_shards):
            try:
                stats.append(self.handle(shard).request(("stats", int(offset))))
            except Exception as error:  # noqa: BLE001 - per-shard tolerance
                stats.append({"shard": shard, "error": str(error)})
        return stats

    def ping(self) -> List[Dict[str, Any]]:
        return self._fan_out(("ping",))

    def stop(self) -> None:
        """Stop every worker (idempotent)."""
        with self._lock:
            handles, self._handles = self._handles, []
        for handle in handles:
            handle.stop()
