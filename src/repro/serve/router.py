"""Pinned read views over the shard workers' states.

A ``match`` or ``top_k`` query pins a WAL offset, asks every shard worker
for its read state *at exactly that offset*, and assembles the states into
a :class:`~repro.incremental.ShardedMutableBlockIndex` whose shards are
lightweight :class:`ShardStateStub` objects duck-typing the
:class:`~repro.incremental.MutableBlockIndex` read surface.  Everything
downstream — the merged pair union, the shard-major CSR concatenation,
:class:`~repro.incremental.sharded.ShardedStatistics`, canonical
renumbering, snapshot blocks — is the PR 5 merge contract reused verbatim,
so a pinned read computes **exactly** what an offline
:class:`~repro.incremental.MatchingSession` computes after replaying the
same log prefix (the sharded/unsharded equivalence already proven by
``tests/incremental/test_sharded_index.py``).

Entity-id resolution is delegated to a caller-provided function: node ids
are append-only in the authority index (slots are tombstoned, never
reused), so the daemon's live ``entity_id(node)`` is correct for any node
that exists at *any* pinned offset ≤ the current one.

Shipping is incremental: the router keeps one **resident**
:class:`ShardStateStub` per shard and hands each worker a
``{"lineage", "epoch"}`` handshake describing the state it already holds;
the worker replies with a delta (applied to the resident stub in place) or
a full state (first contact, respawned worker, checkpoint adoption or
compaction — anything that breaks the lineage).  Only the cheap merged
wrapper is rebuilt per query.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pruning import SupervisedPruningAlgorithm
from ..obs.trace import current_trace
from ..datamodel import Block, BlockCollection, CandidateSet, EntityIndexSpace
from ..incremental.delta import DeltaFeatureGenerator
from ..incremental.index import _Growable, pack_pair_keys
from ..incremental.sharded import ShardedMutableBlockIndex
from ..weights.sparse import EntityBlockCSR
from .workers import ShardWorkerHandle, WorkerError

_EMPTY_MEMBERS = np.empty(0, dtype=np.int64)


def _grown(array: np.ndarray) -> _Growable:
    cell = _Growable(array.dtype, capacity=max(1, int(array.size)))
    cell.extend(array)
    return cell


def _split_flat(flat: np.ndarray, counts: np.ndarray) -> List[np.ndarray]:
    """Split a flattened member array back into per-block arrays."""
    if counts.size == 0:
        return []
    return np.split(
        np.ascontiguousarray(flat), np.cumsum(counts)[:-1].tolist()
    )


class ShardStateStub:
    """One shard's shipped read state behind the index read surface.

    Implements exactly the attributes and methods the sharded merge layer
    touches on its shards: the ``_Growable``-shaped aggregate arrays, the
    full pair registry with its alive mask, :meth:`csr`,
    :meth:`snapshot_blocks` and the node-registry helpers.

    Unlike its PR 7 ancestor the stub is *persistent*: :meth:`apply_full`
    (re)builds it from a full ship and :meth:`apply_delta` advances it in
    place — appended slot/CSR/pair tails, scattered per-entity and
    per-block aggregates, tombstones, member-list replacements — so a warm
    read costs O(changed), not O(state).  ``_members`` may retain entries
    for blocks that have since stopped spawning comparisons; every reader
    filters on ``block_cardinality > 0`` first.
    """

    def __init__(self, resolve_entity_id: Callable[[int], str]) -> None:
        self._resolve = resolve_entity_id
        self._canonical: Optional[np.ndarray] = None
        #: block id -> (first-side members, second-side members)
        self._members: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def _refresh_scalars(self, meta: Dict[str, Any]) -> None:
        self.num_blocks = int(meta["num_blocks"])
        self.num_nonempty_blocks = int(meta["num_nonempty_blocks"])
        self.total_cardinality = int(meta["total_cardinality"])
        self._side_counts = list(meta["side_counts"])
        if len(self._block_keys) != self.num_blocks:
            raise WorkerError(
                f"shard state desynchronized: {len(self._block_keys)} block "
                f"keys held but the shipped state reports {self.num_blocks}"
            )
        if len(self._sides) != int(meta["num_slots"]):
            raise WorkerError(
                f"shard state desynchronized: {len(self._sides)} node slots "
                f"held but the shipped state reports {meta['num_slots']}"
            )

    def apply_full(self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> None:
        """(Re)build the stub from a complete shipped state."""
        self.bilateral = bool(meta["bilateral"])
        self.name = meta["name"]
        self._block_keys = list(meta["block_keys"])
        self._indptr = _grown(arrays["indptr"])
        self._indices = _grown(arrays["indices"])
        self._sides = _grown(arrays["sides"])
        self._block_cardinalities = _grown(arrays["block_cardinality"])
        self._inverse_block_cardinalities = _grown(arrays["inv_block_cardinality"])
        self._inverse_block_sizes = _grown(arrays["inv_block_size"])
        self._blocks_per_entity = _grown(arrays["blocks_per_entity"])
        self._entity_cardinality = _grown(arrays["entity_cardinality"])
        self._entity_inv_cardinality = _grown(arrays["entity_inv_cardinality"])
        self._entity_inv_size = _grown(arrays["entity_inv_size"])
        self._pair_left = _grown(arrays["pair_left"])
        self._pair_right = _grown(arrays["pair_right"])
        self._pair_alive = _grown(arrays["pair_alive"])
        self._num_live = int(np.count_nonzero(arrays["pair_alive"]))
        self._members = dict(
            zip(
                arrays["member_blocks"].tolist(),
                zip(
                    _split_flat(arrays["members_first"], arrays["first_counts"]),
                    _split_flat(arrays["members_second"], arrays["second_counts"]),
                ),
            )
        )
        self._canonical = None
        self._refresh_scalars(meta)

    def apply_delta(self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> None:
        """Advance the stub in place by one shipped delta."""
        self._canonical = None
        # new node slots: sides tail + zeroed per-entity aggregates (the
        # dirty-entity scatter below fills in the real values)
        sides_tail = arrays["sides_tail"]
        if sides_tail.size:
            self._sides.extend(sides_tail)
            zeros = np.zeros(sides_tail.size)
            for cell in (
                self._blocks_per_entity,
                self._entity_cardinality,
                self._entity_inv_cardinality,
                self._entity_inv_size,
            ):
                cell.extend(zeros)
        tombstoned = arrays["tombstoned_nodes"]
        if tombstoned.size:
            self._sides[tombstoned] = np.int8(-1)
        dirty_entities = arrays["dirty_entities"]
        if dirty_entities.size:
            self._blocks_per_entity[dirty_entities] = arrays["dirty_blocks_per_entity"]
            self._entity_cardinality[dirty_entities] = arrays[
                "dirty_entity_cardinality"
            ]
            self._entity_inv_cardinality[dirty_entities] = arrays[
                "dirty_entity_inv_cardinality"
            ]
            self._entity_inv_size[dirty_entities] = arrays["dirty_entity_inv_size"]
        # new blocks: keys + neutral aggregates, then the dirty scatter
        new_keys = list(meta["new_block_keys"])
        if new_keys:
            self._block_keys.extend(new_keys)
            self._block_cardinalities.extend(
                np.zeros(len(new_keys), dtype=np.int64)
            )
            self._inverse_block_cardinalities.extend(np.ones(len(new_keys)))
            self._inverse_block_sizes.extend(np.ones(len(new_keys)))
        dirty_blocks = arrays["dirty_blocks"]
        if dirty_blocks.size:
            self._block_cardinalities[dirty_blocks] = arrays["dirty_block_cardinality"]
            self._inverse_block_cardinalities[dirty_blocks] = arrays[
                "dirty_inv_block_cardinality"
            ]
            self._inverse_block_sizes[dirty_blocks] = arrays["dirty_inv_block_size"]
        # CSR tails (rows are append-only, removals never rewrite them)
        if arrays["indices_tail"].size:
            self._indices.extend(arrays["indices_tail"])
        if arrays["indptr_tail"].size:
            self._indptr.extend(arrays["indptr_tail"])
        # pair registry: appended tail + tombstoned positions
        tail = arrays["pair_left_tail"]
        if tail.size:
            alive_tail = arrays["pair_alive_tail"]
            self._pair_left.extend(tail)
            self._pair_right.extend(arrays["pair_right_tail"])
            self._pair_alive.extend(alive_tail)
            self._num_live += int(np.count_nonzero(alive_tail))
        dead = arrays["dead_pair_positions"]
        if dead.size:
            self._pair_alive[dead] = False
            self._num_live -= int(dead.size)
        # member-list replacement for every dirty block
        firsts = _split_flat(arrays["members_first"], arrays["first_counts"])
        seconds = _split_flat(arrays["members_second"], arrays["second_counts"])
        for position, block_id in enumerate(arrays["member_blocks"].tolist()):
            self._members[block_id] = (firsts[position], seconds[position])
        self._refresh_scalars(meta)

    # -- registry surface --------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return len(self._sides)

    @property
    def num_entities(self) -> int:
        return int(self._side_counts[0] + self._side_counts[1])

    @property
    def num_pairs(self) -> int:
        return self._num_live

    def sides(self) -> np.ndarray:
        return self._sides.view()

    def side_of(self, node: int) -> int:
        return int(self._sides[node])

    def is_live(self, node: int) -> bool:
        return int(self._sides[node]) >= 0

    def entity_id(self, node: int) -> str:
        return self._resolve(int(node))

    def index_space(self) -> EntityIndexSpace:
        if self.bilateral:
            return EntityIndexSpace(self._side_counts[0], self._side_counts[1])
        return EntityIndexSpace(self._side_counts[0])

    def canonical_node_ids(self) -> np.ndarray:
        if self._canonical is None:
            sides = self._sides.view()
            canonical = np.full(sides.size, -1, dtype=np.int64)
            first_nodes = np.flatnonzero(sides == 0)
            canonical[first_nodes] = np.arange(first_nodes.size, dtype=np.int64)
            second_nodes = np.flatnonzero(sides == 1)
            canonical[second_nodes] = first_nodes.size + np.arange(
                second_nodes.size, dtype=np.int64
            )
            self._canonical = canonical
        return self._canonical

    def canonical_candidates(self, candidates: CandidateSet) -> CandidateSet:
        canonical = self.canonical_node_ids()
        left = canonical[candidates.left]
        right = canonical[candidates.right]
        if left.size and (np.any(left < 0) or np.any(right < 0)):
            raise ValueError("candidate set references removed entities")
        return CandidateSet(
            np.minimum(left, right), np.maximum(left, right), self.index_space()
        )

    # -- block surface -----------------------------------------------------------
    def csr(self) -> EntityBlockCSR:
        return EntityBlockCSR(
            indptr=self._indptr.view(),
            indices=self._indices.view(),
            num_blocks=self.num_blocks,
        )

    def snapshot_blocks(self) -> BlockCollection:
        canonical = self.canonical_node_ids()
        blocks: List[Block] = []
        spawning = np.flatnonzero(self._block_cardinalities.view() > 0)
        for block_id in spawning.tolist():
            first, second = self._members.get(
                block_id, (_EMPTY_MEMBERS, _EMPTY_MEMBERS)
            )
            blocks.append(
                Block(
                    key=self._block_keys[block_id],
                    entities_first=sorted(
                        int(canonical[node]) for node in first.tolist()
                    ),
                    entities_second=sorted(
                        int(canonical[node]) for node in second.tolist()
                    ),
                )
            )
        return BlockCollection(blocks, self.index_space(), name=self.name)


class _ResidentShard:
    """One shard's resident stub plus the handshake that advances it."""

    __slots__ = ("stub", "lineage", "epoch")

    def __init__(self, stub: ShardStateStub, lineage: str, epoch: int) -> None:
        self.stub = stub
        self.lineage = lineage
        self.epoch = epoch


def merged_stub_view(
    stubs: Sequence[ShardStateStub], name: str = "serve-pinned"
) -> ShardedMutableBlockIndex:
    """The cheap merged wrapper over per-shard stubs.

    A real :class:`ShardedMutableBlockIndex` (built without ``__init__``)
    so every merged read path — pair union, shard-major CSR concatenation,
    :class:`~repro.incremental.sharded.ShardedStatistics`, canonical
    renumbering, snapshot blocks — runs the PR 5 merge code unchanged.
    Built fresh per query (it caches merged pairs), over stubs that may be
    long-lived residents.
    """
    view = ShardedMutableBlockIndex.__new__(ShardedMutableBlockIndex)
    view.blocking = None
    view.bilateral = bool(stubs[0].bilateral)
    view.num_shards = len(stubs)
    view.name = name
    view.executor = None
    view.shards = list(stubs)
    view._mutations = 0
    view._pairs_cache = None
    view._wal = None
    return view


def build_pinned_view(
    states: Sequence[Dict[str, Any]],
    resolve_entity_id: Callable[[int], str],
    name: str = "serve-pinned",
) -> ShardedMutableBlockIndex:
    """Assemble *full* shard states into a read-only sharded index view.

    The from-scratch assembly (and the oracle the resident delta-maintained
    path is property-tested against): every state must be a ``kind ==
    "full"`` ship, all pinned at the same WAL offset.
    """
    if not states:
        raise ValueError("at least one shard state is required")
    offsets = {int(state["meta"]["offset"]) for state in states}
    if len(offsets) != 1:
        raise ValueError(f"shard states pin different offsets: {sorted(offsets)}")
    stubs = []
    for state in states:
        if state.get("kind", state["meta"].get("kind", "full")) != "full":
            raise ValueError("build_pinned_view requires full shard states")
        stub = ShardStateStub(resolve_entity_id)
        stub.apply_full(state["arrays"], state["meta"])
        stubs.append(stub)
    return merged_stub_view(stubs, name=name)


# -- query evaluation over a pinned view -----------------------------------------

def _oriented_pair(view, i: int, j: int) -> Tuple[str, str]:
    """Order a retained pair (first side, second side) when bilateral."""
    if view.bilateral and view.side_of(i) == 1:
        i, j = j, i
    return (view.entity_id(i), view.entity_id(j))


def match_answer(
    view: ShardedMutableBlockIndex,
    model,
    pruning: SupervisedPruningAlgorithm,
) -> Dict[str, Any]:
    """The exact retained set at the view's pinned offset.

    Mirrors :meth:`MatchingSession.retained` — features over every live
    pair, frozen-model scoring, canonical renumbering, batch pruning —
    against the pinned view instead of the live index.  The retained list
    is sorted by entity-id pair, so the response is byte-identical however
    the pairs were distributed over shards.
    """
    features = DeltaFeatureGenerator(view, model.feature_set)
    candidates, matrix = features.generate_all()
    probabilities = model.score(matrix.values)
    if len(candidates) == 0:
        mask = np.zeros(0, dtype=bool)
    else:
        mask = pruning.prune(
            probabilities,
            view.canonical_candidates(candidates),
            view.snapshot_blocks(),
        )
    retained = sorted(
        [*_oriented_pair(view, int(i), int(j)), float(probability)]
        for i, j, probability in zip(
            candidates.left[mask], candidates.right[mask], probabilities[mask]
        )
    )
    return {"num_candidates": len(candidates), "retained": retained}


def top_k_answer(
    view: ShardedMutableBlockIndex, model, node: int, k: int
) -> List[Dict[str, Any]]:
    """The ``k`` most likely matches of one entity at the pinned offset.

    Scores only the pairs containing ``node`` (the delta feature path makes
    point queries cheap); ties are broken deterministically by packed
    candidate key.
    """
    candidates = view.candidate_set()
    mask = (candidates.left == node) | (candidates.right == node)
    left = candidates.left[mask]
    right = candidates.right[mask]
    if left.size == 0:
        return []
    subset = CandidateSet(left, right, view.index_space())
    features = DeltaFeatureGenerator(view, model.feature_set)
    probabilities = model.score(features.generate(subset).values)
    keys = pack_pair_keys(left, right)
    order = np.lexsort((keys, -probabilities))[: max(0, int(k))]
    matches = []
    for position in order.tolist():
        counterpart = int(right[position] if left[position] == node else left[position])
        matches.append(
            {
                "entity_id": view.entity_id(counterpart),
                "side": view.side_of(counterpart),
                "probability": float(probabilities[position]),
            }
        )
    return matches


class ShardRouter:
    """The daemon's fleet of shard workers plus the pinned-view assembly.

    The fleet is mutable: :meth:`respawn` replaces one shard's worker with
    a freshly spawned one (checkpoint adoption makes the replacement cheap)
    while reads keep flowing through the others.  Handle swaps happen under
    the router lock; request traffic holds each handle's own lock, so a
    swapped-out worker is never written to mid-request.

    Reads are delta-shipped: the router keeps one resident
    :class:`ShardStateStub` per shard and passes each worker the
    ``{"lineage", "epoch"}`` base it holds, so a warm read ships only what
    changed since the previous one.  A respawn invalidates the shard's
    resident entry; even if an in-flight read resurrects a stale entry the
    replacement worker's fresh lineage token forces the next read to ship
    full state, so the resident view can never silently diverge.
    """

    def __init__(
        self,
        wal_dir,
        num_shards: int,
        resolve_entity_id: Callable[[int], str],
        start_method: Optional[str] = None,
        bootstrap=None,
        adopt_floor: Optional[int] = None,
        allow_from_zero: bool = True,
        adopt_min_gap: Optional[int] = None,
        metrics=None,
        delta_shipping: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.wal_dir = wal_dir
        self.num_shards = num_shards
        self._resolve = resolve_entity_id
        self._start_method = start_method
        #: the snapshot the authority was rebuilt from, if it recovered —
        #: replicas bootstrap from the same file to share its node space
        self._bootstrap = bootstrap
        self._adopt_floor = adopt_floor
        self._allow_from_zero = allow_from_zero
        self._adopt_min_gap = adopt_min_gap
        self.metrics = metrics
        self.delta_shipping = bool(delta_shipping)
        self._lock = threading.Lock()
        self._handles: List[ShardWorkerHandle] = []
        #: reads are serialized (the daemon already runs them on a single
        #: reader thread; the lock makes the resident state safe regardless)
        self._read_lock = threading.Lock()
        self._resident: List[Optional[_ResidentShard]] = [None] * num_shards
        #: the daemon's mutation serial counter, for replica-lag gauges
        #: (assigned after construction; ``None`` disables lag tracking)
        self.serial_source: Optional[Callable[[], int]] = None
        #: per-shard mutation serial at the last successful state ship
        self.shipped_serials: Dict[int, int] = {}
        #: per-shard resident shared-memory bytes, as last reported by each
        #: worker's :class:`~repro.serve.workers.ExportSlots`
        self.worker_shm_bytes: Dict[int, int] = {}

    def _spawn(self, shard: int) -> ShardWorkerHandle:
        return ShardWorkerHandle(
            self.wal_dir,
            shard,
            self.num_shards,
            self._start_method,
            bootstrap=self._bootstrap,
            adopt_floor=self._adopt_floor,
            allow_from_zero=self._allow_from_zero,
            adopt_min_gap=self._adopt_min_gap,
        )

    def start(self) -> "ShardRouter":
        """Spawn one worker per shard (idempotent)."""
        with self._lock:
            if not self._handles:
                self._handles = [
                    self._spawn(shard) for shard in range(self.num_shards)
                ]
        return self

    def handles(self) -> List[ShardWorkerHandle]:
        """A stable copy of the current fleet (handles may be swapped out
        concurrently — holders must tolerate a dead handle)."""
        with self._lock:
            return list(self._handles)

    def handle(self, shard: int) -> ShardWorkerHandle:
        with self._lock:
            if not self._handles:
                raise WorkerError("the shard router is not running")
            return self._handles[shard]

    def respawn(
        self, shard: int, expected: Optional[ShardWorkerHandle] = None
    ) -> Optional[ShardWorkerHandle]:
        """Replace ``shard``'s worker with a freshly spawned one.

        Spawns the replacement *first*, swaps it in under the router lock
        (guarded by ``expected`` identity so two detectors of the same
        failure produce one respawn), then SIGKILLs the old process — the
        kill also unblocks anyone waiting on the old pipe with a
        :class:`WorkerError`.  Returns the replacement, or ``None`` when
        the swap did not happen (router stopped, or ``expected`` was
        already replaced by someone else).
        """
        fresh = self._spawn(shard)
        with self._lock:
            swapped = bool(self._handles) and (
                expected is None or self._handles[shard] is expected
            )
            if swapped:
                current = self._handles[shard]
                self._handles[shard] = fresh
                # the replacement holds no shipped base; drop the resident
                # view so the next read full-ships from the new worker
                self._resident[shard] = None
                # the old worker's export slots die with it
                self.worker_shm_bytes.pop(shard, None)
        if not swapped:
            fresh.kill()
            return None
        current.kill()
        return fresh

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _fan_out(self, command) -> List[Any]:
        """Send a command to every worker first, then collect — workers
        compute concurrently.

        ``command`` is one tuple broadcast to the whole fleet, or a list of
        per-shard tuples (positional; must match the fleet size).

        Every handle's lock is held for the duration (``busy_since`` set for
        the supervisor's hang detection).  On a partial failure the workers
        already sent to still owe replies; they are drained so their pipes
        stay in sync — a drain blocked on a wedged worker resolves when the
        supervisor kills it (EOF → :class:`WorkerError`).
        """
        per_handle = command if isinstance(command, list) else None
        with self._lock:
            handles = list(self._handles)
        if per_handle is not None and len(per_handle) != len(handles):
            raise WorkerError(
                f"{len(per_handle)} per-shard commands for {len(handles)} workers"
            )
        for handle in handles:
            handle.lock.acquire()
        now = time.monotonic()
        for handle in handles:
            handle.busy_since = now
        owed: List[ShardWorkerHandle] = []
        try:
            for position, handle in enumerate(handles):
                handle.send(
                    per_handle[position] if per_handle is not None else command
                )
                owed.append(handle)
            results = []
            while owed:
                handle = owed.pop(0)
                results.append(handle.collect())
            return results
        except Exception:
            for handle in owed:
                try:
                    handle.collect()
                except Exception:  # noqa: BLE001 - resync is best-effort
                    pass
            raise
        finally:
            for handle in handles:
                handle.busy_since = None
                handle.lock.release()

    def pinned_view(
        self, offset: int, lookup: Optional[Tuple[int, str]] = None
    ) -> Tuple[ShardedMutableBlockIndex, int]:
        """A read view pinned at ``offset`` plus the optional node lookup.

        Ships deltas against the resident per-shard stubs when the workers
        still hold the lineage the router last received from them; any
        mismatch (first contact, respawn, checkpoint adoption, compaction,
        ``delta_shipping`` off) degrades to a full ship for that shard.
        """
        with self._read_lock:
            trace = current_trace()
            traced = trace is not None and trace.enabled
            serial = (
                self.serial_source() if self.serial_source is not None else None
            )
            with self._lock:
                resident = list(self._resident)
            commands = []
            for shard in range(self.num_shards):
                entry = resident[shard] if self.delta_shipping else None
                base = (
                    {"lineage": entry.lineage, "epoch": entry.epoch}
                    if entry is not None
                    else None
                )
                commands.append(
                    (
                        "read",
                        int(offset),
                        lookup,
                        base,
                        trace.trace_id if traced else None,
                    )
                )
            with (
                trace.span("fan-out", shards=self.num_shards, offset=int(offset))
                if traced
                else nullcontext()
            ):
                payloads = self._fan_out(commands)
                states = [
                    ShardWorkerHandle.materialize(payload) for payload in payloads
                ]
                if traced:
                    # the workers measured their replay/export phases locally;
                    # graft the shipped span lists under this fan-out span
                    for state in states:
                        worker_spans = state["meta"].get("spans")
                        if worker_spans:
                            trace.graft(
                                f"shard{state['meta'].get('shard')}", worker_spans
                            )
            offsets = {int(state["meta"]["offset"]) for state in states}
            if len(offsets) != 1:
                raise WorkerError(
                    f"shard states pin different offsets: {sorted(offsets)}"
                )
            started = time.perf_counter()
            full_reads = delta_reads = 0
            bytes_full = bytes_delta = 0
            for shard, state in enumerate(states):
                meta = state["meta"]
                shm_bytes = meta.get("export_slot_bytes")
                if shm_bytes is not None:
                    self.worker_shm_bytes[shard] = int(shm_bytes)
                nbytes = sum(int(a.nbytes) for a in state["arrays"].values())
                if state["kind"] == "delta":
                    entry = resident[shard]
                    if (
                        entry is None
                        or entry.lineage != meta["lineage"]
                        or entry.epoch != int(meta["base_epoch"])
                    ):
                        raise WorkerError(
                            f"shard {shard} shipped a delta against a base "
                            "the router does not hold"
                        )
                    entry.stub.apply_delta(state["arrays"], meta)
                    entry.epoch = int(meta["epoch"])
                    delta_reads += 1
                    bytes_delta += nbytes
                else:
                    stub = ShardStateStub(self._resolve)
                    stub.apply_full(state["arrays"], meta)
                    resident[shard] = _ResidentShard(
                        stub, str(meta["lineage"]), int(meta["epoch"])
                    )
                    full_reads += 1
                    bytes_full += nbytes
            with self._lock:
                self._resident = resident
            if serial is not None:
                # every shard shipped state consistent with this pin, so the
                # whole fleet is caught up to the serial captured at pin time
                for shard in range(self.num_shards):
                    self.shipped_serials[shard] = serial
            if traced:
                trace.add_span(
                    "view-apply",
                    (time.perf_counter() - started) * 1e3,
                    full=full_reads,
                    delta=delta_reads,
                    bytes=bytes_full + bytes_delta,
                )
            if self.metrics is not None:
                self.metrics.increment("read_bytes_shipped", bytes_full + bytes_delta)
                self.metrics.increment("read_bytes_full", bytes_full)
                self.metrics.increment("read_bytes_delta", bytes_delta)
                self.metrics.increment("full_reads", full_reads)
                self.metrics.increment("delta_reads", delta_reads)
                self.metrics.record(
                    "view_apply", time.perf_counter() - started, True
                )
            view = merged_stub_view([entry.stub for entry in resident])
            return view, int(states[0]["meta"]["lookup_node"])

    def shard_stats(self, offset: int) -> List[Dict[str, Any]]:
        """Per-shard counters at ``offset`` (tolerant: a dead or rebuilding
        worker reports an ``error`` entry instead of failing the call)."""
        stats: List[Dict[str, Any]] = []
        for shard in range(self.num_shards):
            try:
                stats.append(self.handle(shard).request(("stats", int(offset))))
            except Exception as error:  # noqa: BLE001 - per-shard tolerance
                stats.append({"shard": shard, "error": str(error)})
        return stats

    def ping(self) -> List[Dict[str, Any]]:
        return self._fan_out(("ping",))

    def stop(self) -> None:
        """Stop every worker (idempotent)."""
        with self._lock:
            handles, self._handles = self._handles, []
            self._resident = [None] * self.num_shards
        for handle in handles:
            handle.stop()
