"""``repro.serve``: a persistent matching service over a WAL-backed session.

The serving subsystem turns the streaming :class:`~repro.incremental.MatchingSession`
into a long-lived daemon: K shard-affine worker processes replicate the
session's write-ahead log (one signature shard each, the PR 5 routing
contract) and answer ``match``/``top_k`` queries at *pinned* WAL offsets, so
every response is snapshot-consistent under concurrent ingest.  The wire
protocol is length-prefixed JSON with CRC32 framing — the WAL's record
discipline applied to a socket.

Modules
-------
``protocol``
    Message framing (async + sync), request/response envelopes.
``daemon``
    :class:`MatchingDaemon` — the asyncio front end and its dispatch threads.
``workers``
    :class:`ShardReplica` + the worker process body and parent-side handle.
``router``
    Pinned read views assembled from per-shard states; ``match``/``top_k``
    answer kernels.
``client``
    :class:`ServeClient` — the blocking stdlib client.
``metrics``
    Latency histograms, gauges and the ``stats`` rendering (backed by the
    unified :class:`repro.obs.MetricsRegistry`; the ``metrics`` protocol op
    exposes the same registry in Prometheus text exposition).
``supervision``
    :class:`WorkerSupervisor` — heartbeat, hang detection, respawn with
    checkpoint adoption.
"""

from .client import ServeClient, ServeError
from .daemon import (
    DeadlineExceededError,
    MatchingDaemon,
    OverloadedError,
    UnavailableError,
    WalFailedError,
)
from .metrics import LatencyHistogram, ServerMetrics, render_prometheus, render_stats
from .protocol import (
    ERROR_DEADLINE,
    ERROR_OVERLOADED,
    ERROR_UNAVAILABLE,
    ERROR_WAL,
    IDEMPOTENT_OPS,
    OPERATIONS,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    profile_from_wire,
    profile_to_wire,
)
from .router import ShardRouter, build_pinned_view, match_answer, top_k_answer
from .supervision import WorkerSupervisor
from .workers import (
    ShardReplica,
    ShardWorkerHandle,
    WalFollowError,
    WalRecordFollower,
    WorkerError,
)

__all__ = [
    "DeadlineExceededError",
    "MatchingDaemon",
    "OverloadedError",
    "ServeClient",
    "ServeError",
    "ShardReplica",
    "ShardRouter",
    "ShardWorkerHandle",
    "UnavailableError",
    "WalFailedError",
    "WalFollowError",
    "WalRecordFollower",
    "WorkerError",
    "WorkerSupervisor",
    "LatencyHistogram",
    "ServerMetrics",
    "render_prometheus",
    "render_stats",
    "ERROR_DEADLINE",
    "ERROR_OVERLOADED",
    "ERROR_UNAVAILABLE",
    "ERROR_WAL",
    "IDEMPOTENT_OPS",
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_message",
    "profile_from_wire",
    "profile_to_wire",
    "build_pinned_view",
    "match_answer",
    "top_k_answer",
]
