"""``repro.serve``: a persistent matching service over a WAL-backed session.

The serving subsystem turns the streaming :class:`~repro.incremental.MatchingSession`
into a long-lived daemon: K shard-affine worker processes replicate the
session's write-ahead log (one signature shard each, the PR 5 routing
contract) and answer ``match``/``top_k`` queries at *pinned* WAL offsets, so
every response is snapshot-consistent under concurrent ingest.  The wire
protocol is length-prefixed JSON with CRC32 framing — the WAL's record
discipline applied to a socket.

Modules
-------
``protocol``
    Message framing (async + sync), request/response envelopes.
``daemon``
    :class:`MatchingDaemon` — the asyncio front end and its dispatch threads.
``workers``
    :class:`ShardReplica` + the worker process body and parent-side handle.
``router``
    Pinned read views assembled from per-shard states; ``match``/``top_k``
    answer kernels.
``client``
    :class:`ServeClient` — the blocking stdlib client.
``metrics``
    Latency histograms, gauges and the ``stats`` rendering.
"""

from .client import ServeClient, ServeError
from .daemon import MatchingDaemon
from .metrics import LatencyHistogram, ServerMetrics, render_stats
from .protocol import (
    OPERATIONS,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    profile_from_wire,
    profile_to_wire,
)
from .router import ShardRouter, build_pinned_view, match_answer, top_k_answer
from .workers import (
    ShardReplica,
    ShardWorkerHandle,
    WalFollowError,
    WalRecordFollower,
    WorkerError,
)

__all__ = [
    "MatchingDaemon",
    "ServeClient",
    "ServeError",
    "ShardReplica",
    "ShardRouter",
    "ShardWorkerHandle",
    "WalFollowError",
    "WalRecordFollower",
    "WorkerError",
    "LatencyHistogram",
    "ServerMetrics",
    "render_stats",
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_message",
    "profile_from_wire",
    "profile_to_wire",
    "build_pinned_view",
    "match_answer",
    "top_k_answer",
]
