"""Shard-affine worker processes for the matching service.

Each worker owns one *signature shard* of the daemon's index: a
:class:`ShardReplica` holds a :class:`~repro.incremental.MutableBlockIndex`
restricted to the signatures that hash to its shard
(:func:`repro.parallel.shard_of_signature` — the PR 5 routing contract), and
keeps it current by tailing the daemon's write-ahead log directly with a
:class:`WalRecordFollower`.  The WAL **is** the replication transport: the
daemon appends (and flushes) every mutation before publishing its offset,
so a worker told to catch up to a pinned offset can always read exactly the
bytes behind it — replay-to-offset is what makes reads snapshot-consistent.

Workers ship their shard's read-state arrays back through the same
shared-memory discipline as :class:`repro.parallel.ParallelExecutor`
(:mod:`repro.parallel.shm`): each worker keeps a registry of named export
slots (one reusable segment per state array, grown geometrically), writes
the current arrays into them and sends only handles plus small metadata
over its pipe.  The parent attaches, copies, and assembles the per-shard
states into a pinned read view (:mod:`repro.serve.router`).
"""

from __future__ import annotations

import json
import time
import traceback
import uuid
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..incremental.index import MutableBlockIndex, UnknownEntityError
from ..obs import events
from ..parallel.planner import shard_of_signature
from ..parallel.shm import SharedArray, SharedArrayHandle, attach_view, detach_view
from ..persistence.log import LOG_MAGIC, MAX_RECORD_BYTES, _RECORD_HEADER

_logger = events.get_logger(__name__)


class WalFollowError(RuntimeError):
    """The log cannot be followed to the requested offset."""


class WorkerError(RuntimeError):
    """A shard worker failed while serving a command."""


class WalRecordFollower:
    """Incremental reader of a live ``wal.log``.

    Tracks a byte position and parses complete frames from it up to a
    target offset.  The target must be a record boundary the writer has
    already flushed — which every offset published by
    :meth:`WriteAheadLog.append_record` is, because the record bytes are
    written and flushed *before* the offset becomes observable.
    """

    def __init__(self, log_path) -> None:
        self.log_path = Path(log_path)
        self._file = None
        #: byte position just past the last record handed out
        self.position = 0
        #: records parsed and handed out (replayed through the replica)
        self.records_delivered = 0
        #: bytes vouched for by snapshots and never parsed (checkpoint
        #: adoption's accounting: skipped + parsed == position - magic)
        self.bytes_skipped = 0

    def _ensure_open(self) -> None:
        if self._file is not None:
            return
        self._file = open(self.log_path, "rb")
        magic = self._file.read(len(LOG_MAGIC))
        if magic != LOG_MAGIC:
            self._file.close()
            self._file = None
            raise WalFollowError(f"{self.log_path} is not a repro write-ahead log")
        self.position = len(LOG_MAGIC)

    def seek_to(self, offset: int) -> None:
        """Skip directly to ``offset`` without parsing the bytes behind it.

        Used when a snapshot vouches for everything before ``offset`` — the
        replica's bootstrap state already reflects those records.
        """
        self._ensure_open()
        if offset < self.position:
            raise WalFollowError(
                f"cannot seek back to {offset} from {self.position}; "
                "replicas never rewind"
            )
        self.bytes_skipped += offset - self.position
        self.position = offset

    def advance_to(self, target: int) -> List[Dict[str, Any]]:
        """Parse and return every record between the current position and
        ``target`` (exclusive of nothing: the range must end exactly on a
        record boundary)."""
        self._ensure_open()
        if target < self.position:
            raise WalFollowError(
                f"pinned offset {target} is behind the replica's position "
                f"{self.position}; replicas never rewind"
            )
        if target == self.position:
            return []
        faults.on_follower_read()
        self._file.seek(self.position)
        data = self._file.read(target - self.position)
        if len(data) != target - self.position:
            raise WalFollowError(
                f"log holds {self.position + len(data)} bytes but offset "
                f"{target} was pinned; the writer publishes offsets only "
                "after flushing, so this log is not the pinning daemon's"
            )
        records: List[Dict[str, Any]] = []
        cursor = 0
        header_size = _RECORD_HEADER.size
        while cursor < len(data):
            if cursor + header_size > len(data):
                raise WalFollowError(f"offset {target} is not a record boundary")
            length, crc = _RECORD_HEADER.unpack_from(data, cursor)
            end = cursor + header_size + length
            if length > MAX_RECORD_BYTES or end > len(data):
                raise WalFollowError(f"offset {target} is not a record boundary")
            payload = data[cursor + header_size : end]
            if zlib.crc32(payload) != crc:
                raise WalFollowError(
                    f"corrupt record at byte {self.position + cursor}"
                )
            records.append(json.loads(payload.decode("utf-8")))
            cursor = end
        self.position = target
        self.records_delivered += len(records)
        return records

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class ShardReplica:
    """Shard ``k``'s live index, fed by the write-ahead log.

    Applies every logged operation with its signatures filtered to the
    shard (empty rows still register the entity — the PR 5 contract that
    keeps node ids identical across shards), through the same ``_apply_*``
    entry points recovery replays through.
    """

    def __init__(
        self,
        wal_dir,
        shard: int,
        num_shards: int,
        bootstrap=None,
        adopt_floor: Optional[int] = None,
        allow_from_zero: bool = True,
        adopt_min_gap: Optional[int] = None,
    ) -> None:
        self.wal_dir = Path(wal_dir)
        self.shard = shard
        self.num_shards = num_shards
        self.follower = WalRecordFollower(self.wal_dir / "wal.log")
        self.index: Optional[MutableBlockIndex] = None
        self.bilateral = False
        #: optional snapshot file to bootstrap from — REQUIRED when the
        #: daemon recovered: recovery rebuilds the authority index from a
        #: snapshot (compacted, renumbered node ids), so a replica must
        #: start from the *same* snapshot to live in the same node space
        self.bootstrap = Path(bootstrap) if bootstrap is not None else None
        #: oldest snapshot sequence whose node space matches the live
        #: authority's — snapshots written by *earlier* daemon incarnations
        #: (pre-compaction node spaces) must never be adopted
        self.adopt_floor = adopt_floor
        #: whether a from-byte-zero replay is valid when no snapshot is
        #: adoptable (False for recovered daemons: the log's early records
        #: predate the compaction the authority was rebuilt from)
        self.allow_from_zero = allow_from_zero
        #: re-adopt mid-run when a catch-up would replay more than this many
        #: bytes (``None`` disables; respawned workers rely on the initial
        #: adoption in :meth:`catch_up` instead)
        self.adopt_min_gap = adopt_min_gap
        #: sequence number of the snapshot this replica adopted, if any
        self.adopted_sequence: Optional[int] = None
        #: delta-shipping lineage token: a delta is only valid against a
        #: base shipped by this very replica object.  Respawned workers get
        #: a fresh token, so a router holding a dead worker's state always
        #: receives a full re-ship (an epoch number alone could collide —
        #: a fresh replica deterministically replaying the same log reaches
        #: the same epochs)
        self.lineage = uuid.uuid4().hex
        #: read-state ship counters (full vs delta), for the stats endpoint
        self.ships_full = 0
        self.ships_delta = 0

    @property
    def offset(self) -> int:
        """The log offset the replica's state reflects."""
        return self.follower.position

    def _filter(self, signatures: Sequence[str]) -> List[str]:
        return [
            signature
            for signature in signatures
            if shard_of_signature(signature, self.num_shards) == self.shard
        ]

    def catch_up(self, offset: int) -> None:
        """Replay the log through this shard up to exactly ``offset``.

        A cold replica first bootstraps: from its pinned ``bootstrap``
        snapshot when the daemon recovered, else by *adopting* the newest
        eligible checkpoint at or behind ``offset`` and replaying only the
        tail — the O(tail) bootstrap.  A warm replica re-adopts when the
        gap to ``offset`` exceeds ``adopt_min_gap`` (a worker that fell far
        behind jumps forward instead of replaying history).
        """
        if self.index is None:
            if self.bootstrap is not None:
                self._load_bootstrap()
            else:
                self._adopt(target=offset, require=not self.allow_from_zero)
        elif (
            self.adopt_min_gap is not None
            and offset - self.follower.position > self.adopt_min_gap
        ):
            self._adopt(target=offset)
        for record in self.follower.advance_to(offset):
            self.apply(record)

    def prime(self) -> None:
        """Best-effort warm start: adopt the newest eligible checkpoint.

        Called once at worker spawn, before any pinned offset arrives, so
        the first read request only replays the tail past the snapshot.
        Reads pinned *before* this worker was spawned never reach it (the
        router swaps workers in only after spawn), so any snapshot existing
        now is at or behind every offset this worker will be asked for.
        """
        if self.index is None and self.bootstrap is None:
            self._adopt(target=None)

    def _adopt(self, target: Optional[int], require: bool = False) -> bool:
        """Jump to the newest eligible checkpoint at or behind ``target``.

        Eligible means: sequence at or past ``adopt_floor`` (same node
        space as the live authority), carries a slot layout, decodes and
        CRC-validates, offset within ``target`` (when given) and not behind
        the replica (replicas never rewind).  Returns whether a snapshot
        was adopted; with ``require`` an empty result is an error rather
        than an implicit from-zero replay.
        """
        from ..persistence.log import WriteAheadLog

        wal = WriteAheadLog(self.wal_dir)
        for path in reversed(wal.snapshot_paths()):
            sequence = wal._snapshot_sequence(path)
            if self.adopt_floor is not None and sequence < self.adopt_floor:
                break
            state = wal.load_snapshot(path)
            if state is None or state.get("slots") is None:
                continue
            offset = int(state["log_offset"])
            if target is not None and offset > target:
                continue
            if offset < self.follower.position or (
                self.index is not None and offset <= self.follower.position
            ):
                break
            self._adopt_state(state)
            self.adopted_sequence = sequence
            events.emit(
                "checkpoint_adoption",
                shard=self.shard,
                sequence=int(sequence),
                snapshot_offset=int(state["log_offset"]),
                lineage=self.lineage,
            )
            return True
        if require:
            raise WalFollowError(
                f"shard {self.shard} has no adoptable snapshot "
                f"(floor {self.adopt_floor}) and from-zero replay is disabled"
            )
        return False

    def _adopt_state(self, state: Dict[str, Any]) -> None:
        """Rebuild the shard from a checkpoint of the *live* authority.

        Unlike :meth:`_load_bootstrap` (whose snapshot the authority was
        itself rebuilt from, putting both in canonical node order), an
        adopted checkpoint describes an authority that kept its original
        node space — tombstoned slots included.  The embedded slot layout
        says which raw node id each live entity occupies; replaying slots
        in id order through ``_apply_insert`` / ``_register_tombstone``
        reproduces that node space exactly, so every later WAL record
        resolves to the same node here as on the authority.
        """
        index_state = state["index"]
        slots = state["slots"]
        self.bilateral = bool(index_state["bilateral"])
        index = MutableBlockIndex(
            bilateral=self.bilateral,
            name=f"{index_state.get('name') or 'serve'}#shard{self.shard}",
        )
        entry_of_node: Dict[int, Tuple[str, int, Sequence[str]]] = {}
        for side in sorted(index_state["sides"]):
            nodes = slots["nodes"][side]
            entries = index_state["sides"][side]
            for node, (entity_id, signatures) in zip(nodes, entries):
                entry_of_node[int(node)] = (entity_id, int(side), signatures)
        for node in range(int(slots["num_slots"])):
            entry = entry_of_node.get(node)
            if entry is None:
                index._register_tombstone()
            else:
                entity_id, side, signatures = entry
                index._apply_insert(entity_id, side, self._filter(signatures))
        self.index = index
        self.follower.seek_to(int(state["log_offset"]))

    def _load_bootstrap(self) -> None:
        """Rebuild the shard from a snapshot, exactly as recovery rebuilds
        the authority: per-side bulk load of the live entities (signatures
        shard-filtered), then tail the log from the snapshot's offset.

        The rebuild assigns the same node ids the authority's
        :func:`~repro.persistence.snapshot.build_index_from_state` call
        assigned — every shard registers every entity, so registration
        order (and with it the node numbering) is snapshot order on both
        sides of the pipe.
        """
        from ..persistence.log import WriteAheadLog

        state = WriteAheadLog(self.wal_dir).load_snapshot(self.bootstrap)
        if state is None:
            raise WalFollowError(
                f"bootstrap snapshot {self.bootstrap} is missing or corrupt"
            )
        index_state = state["index"]
        self.bilateral = bool(index_state["bilateral"])
        self.index = MutableBlockIndex(
            bilateral=self.bilateral,
            name=f"{index_state.get('name') or 'serve'}#shard{self.shard}",
        )
        for side in sorted(index_state["sides"]):
            entries = [
                (entity_id, self._filter(signatures))
                for entity_id, signatures in index_state["sides"][side]
            ]
            if entries:
                self.index._apply_bulk(entries, int(side))
        self.follower.seek_to(int(state["log_offset"]))

    def apply(self, record: Dict[str, Any]) -> None:
        """Apply one logical WAL record, shard-filtered."""
        op = record["op"]
        if op == "meta":
            self.bilateral = bool(record.get("bilateral", False))
            self.index = MutableBlockIndex(
                bilateral=self.bilateral,
                name=f"{record.get('name', 'serve')}#shard{self.shard}",
            )
            return
        if self.index is None:
            raise WalFollowError("the log carries operations before its meta record")
        if op == "add":
            self.index._apply_insert(
                record["id"], record["side"], self._filter(record["sig"])
            )
        elif op == "bulk":
            self.index._apply_bulk(
                [
                    (entity_id, self._filter(signatures))
                    for entity_id, signatures in record["entities"]
                ],
                record["side"],
            )
        elif op == "remove":
            self.index.remove_entity(record["id"], side=record["side"])
        elif op == "update":
            self.index._apply_update(
                record["id"], record["side"], self._filter(record["sig"])
            )
        else:
            raise WalFollowError(f"unknown WAL record op {op!r}")
        faults.on_record_applied()

    # -- read-state extraction ---------------------------------------------------
    def read_state(
        self,
        lookup: Optional[Tuple[int, str]] = None,
        base: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The shard's read surface: a full state or a delta against ``base``.

        ``base`` is the router's handshake — ``{"lineage", "epoch"}``
        describing the state it already holds.  When the lineage matches
        this replica and the delta tracker's base matches the epoch, only
        what changed since is shipped (``kind == "delta"``); otherwise —
        first contact, respawned worker, index replaced by checkpoint
        adoption or compaction — the complete state is shipped
        (``kind == "full"``) and delta tracking is (re-)armed.

        ``lookup`` optionally resolves ``(side, entity_id)`` to its node id
        at this state (every shard holds the full entity registry, so any
        shard can answer); unknown entities resolve to -1.
        """
        index = self.index
        if index is None:
            raise WalFollowError(
                "the replica has not reached the log's meta record yet"
            )
        lookup_node = -1
        if lookup is not None:
            side, entity_id = lookup
            try:
                lookup_node = index.node_of(entity_id, side=int(side))
            except UnknownEntityError:
                lookup_node = -1
        shipped = None
        if base is not None and base.get("lineage") == self.lineage:
            shipped = index.export_delta(base.get("epoch"))
        if shipped is None:
            shipped = index.export_state()
            index.enable_delta_tracking()
            self.ships_full += 1
        else:
            self.ships_delta += 1
        meta = dict(shipped["meta"])
        meta.update(
            shard=self.shard,
            offset=self.offset,
            lookup_node=int(lookup_node),
            lineage=self.lineage,
            records_replayed=self.follower.records_delivered,
            bytes_skipped=self.follower.bytes_skipped,
            adopted_snapshot=self.adopted_sequence,
        )
        return {"kind": meta["kind"], "arrays": shipped["arrays"], "meta": meta}

    def shard_stats(self) -> Dict[str, Any]:
        """Small per-shard counters for the ``stats`` endpoint."""
        index = self.index
        accounting = {
            "records_replayed": self.follower.records_delivered,
            "bytes_skipped": self.follower.bytes_skipped,
            "adopted_snapshot": self.adopted_sequence,
            "ships_full": self.ships_full,
            "ships_delta": self.ships_delta,
        }
        if index is None:
            return {"shard": self.shard, "offset": self.offset, "blocks": 0,
                    "spawning_blocks": 0, "pairs": 0, "entities": 0,
                    "slots": 0, **accounting}
        return {
            "shard": self.shard,
            "offset": self.offset,
            "blocks": index.num_blocks,
            "spawning_blocks": index.num_nonempty_blocks,
            "pairs": index.num_pairs,
            "entities": index.num_entities,
            "slots": index.num_slots,
            **accounting,
        }

    def close(self) -> None:
        self.follower.close()


class ExportSlots:
    """A worker's persistent registry of named shared-memory export slots.

    One reusable segment per state array: grown geometrically when an
    export outgrows its capacity (the old segment is unlinked *eagerly* and
    its name recorded so the parent can drop its cached attachment too),
    written in place otherwise.  Only handles sized to the *actual* array
    length cross the pipe — the parent never sees the slack capacity.
    """

    def __init__(self) -> None:
        self._slots: Dict[str, SharedArray] = {}
        self._retired: List[str] = []

    def export(self, name: str, array: np.ndarray) -> SharedArrayHandle:
        array = np.ascontiguousarray(array)
        slot = self._slots.get(name)
        if (
            slot is None
            or slot.array.dtype != array.dtype
            or slot.array.size < array.size
        ):
            if slot is not None:
                # free the superseded segment now, not at worker exit; the
                # parent learns the name via drain_retired and detaches
                self._retired.append(slot.handle.name)
                slot.close()
            capacity = max(1, 2 * array.size)
            slot = SharedArray(shape=(capacity,), dtype=array.dtype)
            self._slots[name] = slot
        slot.array[: array.size] = array
        return SharedArrayHandle(
            name=slot.handle.name, shape=(array.size,), dtype=array.dtype.str
        )

    def drain_retired(self) -> List[str]:
        """Names of segments unlinked since the last drain (ship with the
        reply so the parent can evict stale attachments)."""
        retired, self._retired = self._retired, []
        return retired

    @property
    def total_bytes(self) -> int:
        """Resident shared-memory bytes held across all export slots.

        Counts the full *capacity* of each segment (what the OS holds),
        not just the live prefixes — shipped per read so the daemon's
        ``resident_shm_bytes`` gauge reflects the fleet's true footprint.
        """
        return sum(int(slot.array.nbytes) for slot in self._slots.values())

    def close(self) -> None:
        for slot in self._slots.values():
            slot.close()
        self._slots.clear()


def shard_worker_main(
    connection,
    wal_dir: str,
    shard: int,
    num_shards: int,
    bootstrap=None,
    adopt_floor: Optional[int] = None,
    allow_from_zero: bool = True,
    adopt_min_gap: Optional[int] = None,
) -> None:
    """A shard worker's process body: serve commands until told to stop.

    Commands arrive as tuples on the pipe:

    * ``("ping",)`` — liveness check;
    * ``("read", offset, lookup, base[, trace_id])`` — catch up to the
      pinned offset and ship the shard's read state (arrays as
      shared-memory handles): a delta against ``base`` when the handshake
      matches, full otherwise.  When a trace id rides along, the reply's
      meta carries per-phase ``spans`` so replay/export time is attributed
      to the originating request;
    * ``("stats", offset)`` — catch up and return small counters;
    * ``("stop",)`` — clean up and exit.

    Every reply is ``("ok", payload)`` or ``("error", type, message, trace)``;
    a failed command never kills the worker loop.
    """
    faults.set_scope(shard)
    events.set_role(f"shard{shard}")
    replica = ShardReplica(
        wal_dir,
        shard,
        num_shards,
        bootstrap=bootstrap,
        adopt_floor=adopt_floor,
        allow_from_zero=allow_from_zero,
        adopt_min_gap=adopt_min_gap,
    )
    events.emit("worker_spawn", shard=shard, lineage=replica.lineage)
    try:
        # warm start is best-effort: a failed adoption is retried (or
        # surfaced) on the first real catch_up, never fatal at spawn
        replica.prime()
    except Exception:  # noqa: BLE001 - see above
        _logger.warning(
            "shard %d warm start failed; retrying on first read",
            shard,
            exc_info=True,
        )
    exports = ExportSlots()
    try:
        while True:
            try:
                command = connection.recv()
            except (EOFError, OSError):
                break
            name = command[0]
            try:
                if name == "ping":
                    if faults.on_heartbeat():
                        continue  # injected wedge: swallow the ping
                    connection.send(("ok", {"shard": shard, "offset": replica.offset}))
                elif name == "read":
                    _, offset, lookup, base = command[:4]
                    trace_id = command[4] if len(command) > 4 else None
                    spans: Optional[List[Dict[str, Any]]] = (
                        [] if trace_id is not None else None
                    )
                    records_before = replica.follower.records_delivered
                    started = time.perf_counter()
                    replica.catch_up(int(offset))
                    if spans is not None:
                        spans.append(
                            {
                                "name": "catch-up",
                                "ms": (time.perf_counter() - started) * 1e3,
                                "records": replica.follower.records_delivered
                                - records_before,
                            }
                        )
                        started = time.perf_counter()
                    state = replica.read_state(lookup, base=base)
                    handles = {
                        key: exports.export(key, array)
                        for key, array in state["arrays"].items()
                    }
                    if spans is not None:
                        spans.append(
                            {
                                "name": "export",
                                "ms": (time.perf_counter() - started) * 1e3,
                                "kind": state["kind"],
                            }
                        )
                        state["meta"]["spans"] = spans
                    state["meta"]["export_slot_bytes"] = exports.total_bytes
                    connection.send(
                        (
                            "ok",
                            {
                                "kind": state["kind"],
                                "handles": handles,
                                "meta": state["meta"],
                                "retired": exports.drain_retired(),
                            },
                        )
                    )
                elif name == "stats":
                    _, offset = command
                    replica.catch_up(int(offset))
                    connection.send(("ok", replica.shard_stats()))
                elif name == "stop":
                    connection.send(("ok", None))
                    break
                else:
                    connection.send(
                        ("error", "protocol", f"unknown worker command {name!r}", "")
                    )
            except Exception as error:  # noqa: BLE001 - forwarded to the parent
                events.emit(
                    "worker_command_error",
                    shard=shard,
                    command=str(name),
                    error=type(error).__name__,
                    message=str(error),
                )
                connection.send(
                    (
                        "error",
                        type(error).__name__,
                        str(error),
                        traceback.format_exc(),
                    )
                )
    finally:
        exports.close()
        replica.close()
        try:
            connection.close()
        except OSError:
            pass


class ShardWorkerHandle:
    """Parent-side handle on one long-lived shard worker process.

    The handle carries the supervision surface: a per-handle lock (held
    around every request, try-acquired by the supervisor to probe idle
    workers), ``busy_since`` (when the current request started, for hang
    detection on busy workers), ``spawned_at`` (so freshly spawned workers
    get a bootstrap grace period), :meth:`ping_within` and :meth:`kill`.
    A handle whose heartbeat times out must be killed, never reused — its
    eventual late reply would desynchronize the pipe.
    """

    def __init__(
        self,
        wal_dir,
        shard: int,
        num_shards: int,
        start_method: Optional[str] = None,
        bootstrap=None,
        adopt_floor: Optional[int] = None,
        allow_from_zero: bool = True,
        adopt_min_gap: Optional[int] = None,
    ) -> None:
        import multiprocessing
        import threading
        import time

        from ..parallel.executor import _preferred_start_method

        self.shard = shard
        self.lock = threading.Lock()
        #: monotonic time the in-flight request started, ``None`` when idle
        self.busy_since: Optional[float] = None
        self.spawned_at = time.monotonic()
        context = multiprocessing.get_context(
            start_method or _preferred_start_method()
        )
        self._connection, child = context.Pipe(duplex=True)
        self._process = context.Process(
            target=shard_worker_main,
            args=(
                child,
                str(wal_dir),
                shard,
                num_shards,
                str(bootstrap) if bootstrap is not None else None,
                adopt_floor,
                allow_from_zero,
                adopt_min_gap,
            ),
            name=f"repro-serve-shard-{shard}",
            daemon=True,
        )
        self._process.start()
        child.close()

    # -- dispatch (send and collect split so the router can fan out) -------------
    def send(self, command: Tuple) -> None:
        try:
            self._connection.send(command)
        except (OSError, BrokenPipeError, ValueError) as error:
            raise WorkerError(
                f"shard worker {self.shard} is unreachable: {error}"
            ) from None

    def collect(self) -> Any:
        try:
            reply = self._connection.recv()
        except (EOFError, OSError) as error:
            raise WorkerError(
                f"shard worker {self.shard} died mid-request: {error}"
            ) from None
        if reply[0] == "ok":
            return reply[1]
        _, error_type, message, trace = reply
        raise WorkerError(
            f"shard worker {self.shard} failed: {error_type}: {message}\n{trace}"
        )

    def request(self, command: Tuple) -> Any:
        import time

        with self.lock:
            self.busy_since = time.monotonic()
            try:
                self.send(command)
                return self.collect()
            finally:
                self.busy_since = None

    def ping_within(self, timeout: float) -> bool:
        """Heartbeat: send a ping and wait up to ``timeout`` for the reply.

        Caller must hold :attr:`lock`.  A ``False`` return means the worker
        is dead or wedged — and the pipe may now hold a late reply, so the
        worker MUST be killed and replaced, never pinged again.
        """
        try:
            self._connection.send(("ping",))
            if not self._connection.poll(timeout):
                return False
            reply = self._connection.recv()
        except (EOFError, OSError, BrokenPipeError, ValueError):
            return False
        return bool(reply) and reply[0] == "ok"

    def kill(self, timeout: float = 5.0) -> None:
        """SIGKILL the worker and reap it; safe on an already-dead process."""
        try:
            self._process.kill()
        except (OSError, ValueError):
            pass
        self._process.join(timeout)
        try:
            self._connection.close()
        except OSError:
            pass

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    @staticmethod
    def materialize(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Copy a ``read`` reply's shared-memory arrays into local memory.

        The copy is required: the worker reuses its export slots on the
        next request, so the attached views are only valid until then.
        After copying, this process's cached attachments are dropped —
        both the slots just read and any segment the worker retired when a
        slot outgrew its capacity — so the attach cache cannot accumulate
        mappings of unlinked segments across reads (the leak regression
        test in ``tests/serve/test_delta_shipping.py`` pins this down).
        """
        arrays = {}
        try:
            for key, handle in payload["handles"].items():
                arrays[key] = np.array(attach_view(handle), copy=True)
        finally:
            for handle in payload["handles"].values():
                detach_view(handle.name)
            for name in payload.get("retired", ()):
                detach_view(name)
        return {
            "kind": payload.get("kind", "full"),
            "arrays": arrays,
            "meta": payload["meta"],
        }

    def read_state(
        self,
        offset: int,
        lookup: Optional[Tuple[int, str]] = None,
        base: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.materialize(
            self.request(("read", int(offset), lookup, base, trace_id))
        )

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it does not."""
        if self._process.is_alive():
            try:
                self._connection.send(("stop",))
                self._connection.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
        self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - unclean fallback
            self._process.terminate()
            self._process.join(timeout)
        self._connection.close()

    @property
    def alive(self) -> bool:
        return self._process.is_alive()
