"""Worker supervision: heartbeat, hang detection, respawn.

A :class:`WorkerSupervisor` runs one daemon thread over the router's
fleet.  Each cycle it classifies every shard worker:

* **dead** — the process pid is gone.  Respawned immediately, no grace.
* **idle** — the handle's lock is free.  The supervisor takes the lock and
  heartbeats (:meth:`ShardWorkerHandle.ping_within`).  One missed
  heartbeat is fatal: after a timed-out ping the pipe may hold a late
  reply, so the worker cannot be trusted again — it is killed and
  replaced.
* **busy** — a request is in flight (``busy_since`` set).  The worker is
  healthy as long as the request is younger than ``hang_timeout``; past
  it, the worker is presumed wedged and respawned.  The SIGKILL doubles as
  the unblocking mechanism: whoever is waiting on the old pipe gets EOF
  and a :class:`~repro.serve.workers.WorkerError`.

Freshly spawned workers get ``spawn_grace`` seconds before heartbeat and
hang checks apply (checkpoint adoption keeps bootstrap short, but the
first catch-up may still replay a tail) — only the dead-pid check runs
during the grace period.

Respawn goes through :meth:`ShardRouter.respawn`, which spawns the
replacement before swapping, so the shard's downtime is one swap, and
passes the old handle as ``expected`` so a concurrent detector of the same
failure cannot double-respawn.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional

from ..obs import events
from .router import ShardRouter
from .workers import ShardWorkerHandle


def _pid_alive(pid: Optional[int]) -> bool:
    if pid is None:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


class WorkerSupervisor:
    """Heartbeats the shard fleet and replaces crashed or wedged workers."""

    def __init__(
        self,
        router: ShardRouter,
        metrics=None,
        *,
        heartbeat_interval: float = 1.0,
        hang_timeout: float = 5.0,
        spawn_grace: float = 10.0,
        on_restart: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        self.router = router
        self.metrics = metrics
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = hang_timeout
        self.spawn_grace = spawn_grace
        self.on_restart = on_restart
        self.restarts = 0
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "WorkerSupervisor":
        if self._thread is None:
            self._stopping.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        self._wake.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=max(5.0, 2 * self.hang_timeout))

    def kick(self) -> None:
        """Request an immediate check cycle (called when a read fails on a
        worker error — the failure is the strongest liveness signal)."""
        self._wake.set()

    def _run(self) -> None:
        while not self._stopping.is_set():
            try:
                self.check_once()
            except Exception:  # noqa: BLE001 - supervision must never die
                pass
            self._wake.wait(self.heartbeat_interval)
            self._wake.clear()

    # -- one supervision cycle ---------------------------------------------------
    def check_once(self) -> int:
        """Classify every worker once; returns the number respawned."""
        respawned = 0
        for handle in self.router.handles():
            if self._stopping.is_set():
                break
            if self._check_handle(handle):
                respawned += 1
        return respawned

    def _check_handle(self, handle: ShardWorkerHandle) -> bool:
        now = time.monotonic()
        if not _pid_alive(handle.pid) or not handle.alive:
            self._respawn(handle, "dead")
            return True
        if now - handle.spawned_at < self.spawn_grace:
            return False
        if handle.lock.acquire(blocking=False):
            try:
                busy = handle.busy_since is not None
                if not busy and not handle.ping_within(self.hang_timeout):
                    self._respawn(handle, "missed heartbeat")
                    return True
            finally:
                handle.lock.release()
            return False
        busy_since = handle.busy_since
        if busy_since is not None and now - busy_since > self.hang_timeout:
            self._respawn(handle, "hung request")
            return True
        return False

    def _respawn(self, handle: ShardWorkerHandle, reason: str) -> None:
        old_pid = handle.pid
        if reason == "missed heartbeat":
            events.emit("heartbeat_miss", shard=handle.shard, pid=old_pid)
        elif reason == "hung request":
            events.emit("worker_hang", shard=handle.shard, pid=old_pid)
        elif reason == "dead":
            events.emit("worker_dead", shard=handle.shard, pid=old_pid)
        replacement = self.router.respawn(handle.shard, expected=handle)
        if replacement is None:
            return  # router stopped, or another detector already replaced it
        self.restarts += 1
        events.emit(
            "worker_respawn",
            shard=handle.shard,
            reason=reason,
            old_pid=old_pid,
            new_pid=replacement.pid,
        )
        if self.metrics is not None:
            self.metrics.increment("worker_restarts")
        if self.on_restart is not None:
            try:
                self.on_restart(handle.shard, reason)
            except Exception:  # noqa: BLE001 - observer must not break supervision
                pass
