"""Length-prefixed JSON message framing for the matching service.

The wire format mirrors the write-ahead log's record discipline
(:mod:`repro.persistence.log`): every message is framed as

``uint32 payload length + uint32 CRC32(payload) + payload``

where the payload is canonical JSON (sorted keys, no whitespace) encoded as
UTF-8.  HTTP-free and stdlib-only by design: the daemon speaks it over
``asyncio`` streams, the synchronous client over a plain socket file.  The
CRC turns a desynchronised or corrupted stream into an immediate
:class:`ProtocolError` instead of a silently misparsed request.

Requests are objects ``{"op": <name>, "id": <n>, "args": {...}}`` plus an
optional ``"trace": <hex id>`` naming the request in the observability
layer (a client that omits it gets one minted server-side); responses
echo the id and the trace id: ``{"id": <n>, "ok": true, "trace": ...,
"result": ...}`` or ``{"id": <n>, "ok": false, "trace": ...,
"error": {"type": ..., "message": ...}}``.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, Optional

from ..datamodel import EntityProfile

#: message frame: payload length (uint32) + CRC32 of the payload (uint32) —
#: the WAL's record header, reused verbatim
FRAME_HEADER = struct.Struct("<II")

#: hard cap on one message's payload; a corrupted length field must not make
#: a peer attempt a multi-gigabyte read
MAX_MESSAGE_BYTES = 64 << 20

#: protocol revision announced by ``ping`` — 2 added the optional ``trace``
#: envelope field and the ``metrics`` op; version-1 clients (no trace field)
#: remain fully accepted and get server-minted trace ids
PROTOCOL_VERSION = 2

#: every operation the daemon serves
OPERATIONS = (
    "ping",
    "insert",
    "insert_bulk",
    "remove",
    "update",
    "match",
    "top_k",
    "checkpoint",
    "stats",
    "metrics",
    "shutdown",
)

#: operations a client may safely re-send after an ambiguous failure (a
#: send that may or may not have been processed) — reads plus checkpoint,
#: which is idempotent by construction (re-checkpointing the same state
#: just writes another equivalent snapshot)
IDEMPOTENT_OPS = frozenset({"ping", "stats", "metrics", "match", "top_k", "checkpoint"})

#: typed error envelopes of the fault-tolerance layer
#: — the request queue is full; retry after backoff
ERROR_OVERLOADED = "overloaded"
#: — the request's deadline passed before (for mutations: strictly before)
#:   the operation was applied
ERROR_DEADLINE = "deadline"
#: — a shard worker is rebuilding and degraded reads are disabled
ERROR_UNAVAILABLE = "unavailable"
#: — the write-ahead log failed; the daemon refuses further mutations
ERROR_WAL = "wal_failed"


class ProtocolError(RuntimeError):
    """The byte stream does not frame a valid message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """Frame one message: header (length + CRC32) plus canonical JSON."""
    payload = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError("message exceeds the maximum payload size")
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes, crc: int) -> Dict[str, Any]:
    """Validate and decode one frame's payload."""
    if zlib.crc32(payload) != crc:
        raise ProtocolError("message payload failed its CRC check")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"message payload is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message payload must be a JSON object")
    return message


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the {MAX_MESSAGE_BYTES} cap"
        )


# -- asyncio side (daemon) -------------------------------------------------------

async def read_message(reader) -> Optional[Dict[str, Any]]:
    """Read one framed message from an asyncio stream.

    Returns ``None`` on a clean EOF (connection closed *between* frames); a
    connection cut mid-frame raises :class:`ProtocolError`.
    """
    import asyncio

    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from None
    length, crc = FRAME_HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(payload, crc)


async def write_message(writer, message: Dict[str, Any]) -> None:
    """Write one framed message to an asyncio stream and drain it."""
    writer.write(encode_message(message))
    await writer.drain()


# -- synchronous side (client) ---------------------------------------------------

def read_message_from(stream) -> Optional[Dict[str, Any]]:
    """Read one framed message from a binary file-like object (blocking).

    Returns ``None`` on a clean EOF at a frame boundary.
    """
    header = _read_exactly(stream, FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    length, crc = FRAME_HEADER.unpack(header)
    _check_length(length)
    payload = _read_exactly(stream, length, allow_eof=False)
    return decode_payload(payload, crc)


def write_message_to(stream, message: Dict[str, Any]) -> None:
    """Write one framed message to a binary file-like object and flush."""
    stream.write(encode_message(message))
    stream.flush()


def _read_exactly(stream, count: int, allow_eof: bool) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- payload helpers -------------------------------------------------------------

def profile_to_wire(profile: EntityProfile) -> Dict[str, Any]:
    """An :class:`EntityProfile` as a JSON-encodable object."""
    return {
        "entity_id": profile.entity_id,
        "attributes": dict(profile.attributes),
    }


def profile_from_wire(data: Dict[str, Any]) -> EntityProfile:
    """Rebuild an :class:`EntityProfile` from its wire form."""
    if not isinstance(data, dict) or "entity_id" not in data:
        raise ProtocolError("profile objects need an 'entity_id' field")
    attributes = data.get("attributes") or {}
    if not isinstance(attributes, dict):
        raise ProtocolError("profile 'attributes' must be an object")
    return EntityProfile(
        entity_id=str(data["entity_id"]),
        attributes={str(key): str(value) for key, value in attributes.items()},
    )


def error_response(
    request_id: Any, error_type: str, message: str, trace: Optional[str] = None
) -> Dict[str, Any]:
    """A failure response envelope (echoing the request's trace id)."""
    response: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }
    if trace is not None:
        response["trace"] = trace
    return response


def ok_response(
    request_id: Any, result: Any, trace: Optional[str] = None
) -> Dict[str, Any]:
    """A success response envelope (echoing the request's trace id)."""
    response: Dict[str, Any] = {"id": request_id, "ok": True, "result": result}
    if trace is not None:
        response["trace"] = trace
    return response
