"""The ``repro serve`` daemon: concurrent ingest + snapshot-consistent reads.

Architecture (the REPL → executor → storage-engine layering, serving
edition):

* the **authority** state is one WAL-backed
  :class:`~repro.incremental.MatchingSession`; every mutation
  (``insert``/``insert_bulk``/``remove``/``update``/``checkpoint``) runs on
  a single dedicated mutation thread (the index is not thread-safe, and one
  writer keeps the WAL append order the commit order) while the asyncio
  loop keeps accepting connections;
* **reads** (``match``/``top_k``/``stats``) pin the WAL offset at query
  start and are served from K long-lived shard worker processes
  (:mod:`repro.serve.workers`), each owning one signature shard replicated
  by tailing the same WAL.  The router assembles the per-shard states at
  the pinned offset into a merged read view (:mod:`repro.serve.router`), so
  every response equals the canonical view as of its offset — writes
  arriving *during* the query change nothing the query sees;
* reads run on their own single dispatch thread, which makes the offsets
  handed to the workers monotone (replicas never rewind).

Durability: mutations are journaled before they are applied (the session's
WAL discipline), and a SIGTERM/SIGINT drains in-flight requests, writes a
final checkpoint, fsyncs and exits cleanly — ``repro serve --recover``
resumes the identical retained set.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any, Dict, Optional, Tuple

from .. import __version__
from ..incremental.index import DuplicateEntityError, UnknownEntityError
from ..incremental.session import MatchingSession
from ..obs import events
from ..obs.registry import process_rss_bytes
from ..obs.trace import RequestTrace, activate, hook_span, mint_trace_id
from ..persistence.log import WalBrokenError
from .metrics import ServerMetrics, render_prometheus
from .protocol import (
    ERROR_DEADLINE,
    ERROR_OVERLOADED,
    ERROR_UNAVAILABLE,
    ERROR_WAL,
    OPERATIONS,
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    ok_response,
    profile_from_wire,
    read_message,
    write_message,
)
from .router import ShardRouter, match_answer, top_k_answer
from .supervision import WorkerSupervisor
from .workers import WalFollowError, WorkerError

#: operations serialized on the mutation thread
MUTATION_OPS = frozenset({"insert", "insert_bulk", "remove", "update", "checkpoint"})
#: operations served from the pinned shard-worker views
READ_OPS = frozenset({"match", "top_k", "stats"})


class OverloadedError(RuntimeError):
    """The target queue is at capacity; the request was shed unprocessed."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before the operation was applied."""


class UnavailableError(RuntimeError):
    """A shard worker is down/rebuilding and degraded reads are disabled."""


class WalFailedError(RuntimeError):
    """The write-ahead log failed; the mutation was neither logged nor applied."""


def _newest_valid_snapshot(wal_path):
    """The snapshot path :func:`recover_session` will load, or ``None``.

    Mirrors :meth:`WriteAheadLog.latest_snapshot`'s selection (newest file
    that decodes and CRC-validates) but returns the *path*, which the shard
    workers need to bootstrap from the identical state.
    """
    from ..persistence.log import WriteAheadLog

    wal = WriteAheadLog(wal_path)
    for path in reversed(wal.snapshot_paths()):
        if wal.load_snapshot(path) is not None:
            return path
    return None


class MatchingDaemon:
    """A persistent matching service over one WAL directory.

    Parameters
    ----------
    wal_path:
        The WAL directory — the daemon's entire durable state.
    model:
        The frozen classifier for a fresh daemon (ignored with
        ``recover=True``, where the model comes from the snapshot).
    recover:
        Resume the state persisted in ``wal_path`` instead of starting
        empty.
    num_shards:
        Shard worker count K.
    tokenize_workers:
        Worker count for the long-lived :class:`ParallelExecutor` that fans
        out ``insert_bulk`` tokenization (1 = tokenize inline).
    drain_timeout:
        Seconds to wait for in-flight requests on shutdown before
        cancelling their connections.
    announce:
        Print a one-line JSON ``{"event": "serving", ...}`` banner once the
        socket is bound (the CLI and the end-to-end tests parse it).
    """

    def __init__(
        self,
        wal_path,
        model=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        num_shards: int = 2,
        bilateral: bool = True,
        pruning: str = "BLAST",
        online: str = "wep",
        top_k: int = 1000,
        snapshot_every: Optional[int] = None,
        wal_sync: str = "always",
        recover: bool = False,
        tokenize_workers=1,
        start_method: Optional[str] = None,
        drain_timeout: float = 10.0,
        announce: bool = False,
        degraded_reads: bool = True,
        heartbeat_interval: float = 1.0,
        hang_timeout: float = 5.0,
        spawn_grace: float = 10.0,
        max_pending_mutations: int = 256,
        max_pending_reads: int = 256,
        adopt_min_gap: Optional[int] = None,
        delta_shipping: bool = True,
        event_log=None,
        slow_request_ms: Optional[float] = None,
        tracing: bool = True,
    ) -> None:
        from ..persistence.log import WriteAheadLog

        # the event sink is configured before the session is built, so WAL
        # recovery/snapshot events land in this daemon's log; an explicit
        # ``None`` falls back to ``REPRO_EVENT_LOG``, and configuring also
        # exports (or clears) that variable so shard workers inherit exactly
        # this daemon's sink, never a previous one's
        if event_log is None:
            event_log = os.environ.get(events.EVENT_LOG_ENV) or None
        events.configure(event_log, role="daemon")
        self.event_log = event_log
        self.slow_request_ms = slow_request_ms
        self.tracing = bool(tracing)
        self._logger = events.get_logger(__name__)
        allow_from_zero = True
        if recover:
            self.session = MatchingSession.recover(wal_path, sync=wal_sync)
            # recovery rebuilt the authority from a snapshot, compacting and
            # renumbering node ids — the log's earlier records describe the
            # *previous* node space and must never be replayed by a replica.
            # Write a floor checkpoint of the recovered state (slot layout
            # included): workers adopt it (or anything newer) and replay
            # only the tail past it, in the authority's node space.
            floor_path = self.session.checkpoint()
            adopt_floor = WriteAheadLog._snapshot_sequence(floor_path)
            allow_from_zero = False
        else:
            if model is None:
                raise ValueError("a fresh daemon needs a frozen model")
            self.session = MatchingSession(
                model,
                bilateral=bilateral,
                pruning=pruning,
                online=online,
                top_k=top_k,
                wal_path=wal_path,
                snapshot_every=snapshot_every,
                wal_sync=wal_sync,
            )
            # a fresh session requires an empty WAL directory and writes
            # snapshot 1 immediately, so every snapshot is adoptable and a
            # from-zero replay is equally valid
            adopt_floor = 1
        self.wal_path = wal_path
        self.host = host
        self.port = port
        self.num_shards = num_shards
        self.drain_timeout = drain_timeout
        self.announce = announce
        self.degraded_reads = degraded_reads
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = hang_timeout
        self.spawn_grace = spawn_grace
        self.max_pending_mutations = max_pending_mutations
        self.max_pending_reads = max_pending_reads
        self.delta_shipping = delta_shipping
        self.metrics = ServerMetrics()
        # one serial per applied mutation; the router samples it at pin time
        # (``serial_source``), which makes per-shard replica lag measurable
        # in *records* rather than WAL bytes
        self._mutation_serial = 0
        # entity ids by node come from the authority index's append-only
        # registry: node slots are never reused, so the live resolver is
        # correct for every node visible at any pinned offset
        self.router = ShardRouter(
            wal_path,
            num_shards,
            self.session.index.entity_id,
            start_method=start_method,
            adopt_floor=adopt_floor,
            allow_from_zero=allow_from_zero,
            adopt_min_gap=adopt_min_gap,
            metrics=self.metrics,
            delta_shipping=delta_shipping,
        )
        self.router.serial_source = lambda: self._mutation_serial
        self._register_gauges()
        from ..parallel import ParallelExecutor, resolve_workers

        workers = resolve_workers(tokenize_workers)
        self._executor = ParallelExecutor(workers) if workers > 1 else None
        self.address: Optional[Tuple[str, int]] = None
        self.ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._mutator: Optional[ThreadPoolExecutor] = None
        self._reader: Optional[ThreadPoolExecutor] = None
        self._signals_installed = False
        self._supervisor: Optional[WorkerSupervisor] = None
        # queue depths live on the asyncio loop thread only — plain ints
        # are race-free there, and they bound what run_in_executor enqueues
        self._pending_mutations = 0
        self._pending_reads = 0

    # -- observability -----------------------------------------------------------
    def _register_gauges(self) -> None:
        """Process gauges sampled at every ``metrics``/``stats`` snapshot."""
        self.metrics.register_gauge("process_rss_bytes", process_rss_bytes)
        self.metrics.register_gauge(
            "wal_size_bytes", lambda: float(self.session.wal.log_offset)
        )
        self.metrics.register_gauge("snapshot_age_seconds", self._snapshot_age)
        self.metrics.register_gauge(
            "resident_shm_bytes",
            lambda: float(sum(self.router.worker_shm_bytes.values())),
        )
        for shard in range(self.num_shards):
            self.metrics.register_gauge(
                f"shard{shard}_replica_lag_records",
                lambda shard=shard: float(
                    max(
                        0,
                        self._mutation_serial
                        - self.router.shipped_serials.get(shard, 0),
                    )
                ),
            )

    def _snapshot_age(self) -> Optional[float]:
        paths = self.session.wal.snapshot_paths()
        if not paths:
            return None
        return max(0.0, time.time() - paths[-1].stat().st_mtime)

    # -- lifecycle ---------------------------------------------------------------
    async def run(self) -> None:
        """Serve until a shutdown is requested; then drain, checkpoint, close."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._shutdown = asyncio.Event()
        self._mutator = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-mutate"
        )
        self._reader = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-read"
        )
        self.router.start()
        self._supervisor = WorkerSupervisor(
            self.router,
            self.metrics,
            heartbeat_interval=self.heartbeat_interval,
            hang_timeout=self.hang_timeout,
            spawn_grace=self.spawn_grace,
        ).start()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.address = server.sockets[0].getsockname()[:2]
        self._install_signal_handlers(loop)
        self.ready.set()
        events.emit(
            "daemon_serving",
            host=self.address[0],
            port=int(self.address[1]),
            shards=self.num_shards,
        )
        if self.announce:
            print(
                json.dumps(
                    {
                        "event": "serving",
                        "host": self.address[0],
                        "port": self.address[1],
                        "pid": os.getpid(),
                        "shards": self.num_shards,
                        "wal": str(self.wal_path),
                    }
                ),
                flush=True,
            )
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._drain_connections()
            await loop.run_in_executor(self._mutator, self._final_checkpoint)
            self._mutator.shutdown(wait=True)
            self._reader.shutdown(wait=True)
            if self._supervisor is not None:
                self._supervisor.stop()
            self.router.stop()
            if self._executor is not None:
                self._executor.close()
            self._remove_signal_handlers(loop)
            events.emit("daemon_stopped")

    def serve(self) -> int:
        """Blocking entry point; returns the process exit code."""
        asyncio.run(self.run())
        return 0

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (signal handlers, tests, ``shutdown``)."""
        loop = self._loop
        if loop is not None and self._shutdown is not None:
            try:
                loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed: the daemon is down

    def _install_signal_handlers(self, loop) -> None:
        try:
            loop.add_signal_handler(signal.SIGTERM, self._shutdown.set)
            loop.add_signal_handler(signal.SIGINT, self._shutdown.set)
            self._signals_installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            # not the main thread (in-process test daemons) or an event
            # loop without signal support; request_shutdown() remains
            self._signals_installed = False

    def _remove_signal_handlers(self, loop) -> None:
        if self._signals_installed:
            loop.remove_signal_handler(signal.SIGTERM)
            loop.remove_signal_handler(signal.SIGINT)
            self._signals_installed = False

    async def _drain_connections(self) -> None:
        """Let in-flight requests finish, then cancel lingering connections."""
        tasks = [task for task in self._connections if not task.done()]
        if not tasks:
            return
        done, pending = await asyncio.wait(tasks, timeout=self.drain_timeout)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def _final_checkpoint(self) -> None:
        """The shutdown commit: one last snapshot, fsync, close.

        A broken WAL (failed mid-append and unrepaired) cannot take the
        shutdown snapshot; everything acked is already durable in the log,
        so shutdown proceeds rather than hanging the exit path.
        """
        try:
            self.session.checkpoint()
        except OSError:
            pass
        finally:
            try:
                self.session.close()
            except OSError:
                pass

    # -- connection handling -----------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        self.metrics.connection_opened()
        try:
            while not self._shutdown.is_set():
                read_task = asyncio.ensure_future(read_message(reader))
                stop_task = asyncio.ensure_future(self._shutdown.wait())
                try:
                    await asyncio.wait(
                        {read_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
                    )
                finally:
                    for side_task in (read_task, stop_task):
                        if not side_task.done():
                            side_task.cancel()
                    await asyncio.gather(
                        read_task, stop_task, return_exceptions=True
                    )
                if not read_task.done() or read_task.cancelled():
                    break  # shutdown won the race; the client reconnects later
                try:
                    message = read_task.result()
                except ProtocolError as error:
                    await write_message(
                        writer, error_response(None, "protocol", str(error))
                    )
                    break
                if message is None:
                    break  # clean EOF
                response = await self._dispatch(message)
                await write_message(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            self.metrics.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- dispatch ----------------------------------------------------------------
    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        request_id = message.get("id")
        op = message.get("op")
        args = message.get("args") or {}
        # the trace id is the request's identity across threads, worker
        # processes and the event log: a client-supplied one is honoured
        # (v2 envelopes), otherwise the daemon mints one (v1 clients)
        supplied = message.get("trace")
        trace_id = (
            supplied if isinstance(supplied, str) and supplied else mint_trace_id()
        )
        if op not in OPERATIONS:
            return error_response(
                request_id, "protocol", f"unknown op {op!r}", trace=trace_id
            )
        if not isinstance(args, dict):
            return error_response(
                request_id, "protocol", "'args' must be an object", trace=trace_id
            )
        deadline_ms = message.get("deadline_ms")
        deadline: Optional[float] = None
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                return error_response(
                    request_id,
                    "bad_request",
                    "'deadline_ms' must be a positive number",
                    trace=trace_id,
                )
            deadline = time.monotonic() + float(deadline_ms) / 1e3
        trace = RequestTrace(trace_id, str(op), enabled=self.tracing)
        events.emit("request_start", trace=trace_id, op=str(op))
        start = time.perf_counter()
        ok = True
        error_type: Optional[str] = None
        try:
            if op == "ping":
                result = {
                    "version": __version__,
                    "protocol": PROTOCOL_VERSION,
                    "shards": self.num_shards,
                    "offset": self._offset(),
                }
            elif op == "metrics":
                result = {
                    "content_type": "text/plain; version=0.0.4; charset=utf-8",
                    "text": render_prometheus(self.metrics),
                }
            elif op == "shutdown":
                self._shutdown.set()
                result = {"stopping": True}
            elif op in MUTATION_OPS:
                result = await self._run_mutation(op, args, deadline, trace)
            else:
                result = await self._run_read(op, args, deadline, trace)
            return ok_response(request_id, result, trace=trace_id)
        except OverloadedError as error:
            ok, error_type = False, ERROR_OVERLOADED
            self.metrics.increment(
                "shed_mutations" if op in MUTATION_OPS else "shed_reads"
            )
            return error_response(request_id, ERROR_OVERLOADED, str(error), trace=trace_id)
        except DeadlineExceededError as error:
            ok, error_type = False, ERROR_DEADLINE
            self.metrics.increment("deadline_exceeded")
            return error_response(request_id, ERROR_DEADLINE, str(error), trace=trace_id)
        except UnavailableError as error:
            ok, error_type = False, ERROR_UNAVAILABLE
            return error_response(
                request_id, ERROR_UNAVAILABLE, str(error), trace=trace_id
            )
        except WalFailedError as error:
            ok, error_type = False, ERROR_WAL
            self.metrics.increment("wal_failures")
            return error_response(request_id, ERROR_WAL, str(error), trace=trace_id)
        except UnknownEntityError as error:
            ok, error_type = False, "unknown_entity"
            return error_response(
                request_id, "unknown_entity", str(error), trace=trace_id
            )
        except DuplicateEntityError as error:
            ok, error_type = False, "duplicate_entity"
            return error_response(
                request_id, "duplicate_entity", str(error), trace=trace_id
            )
        except (ProtocolError, KeyError, TypeError, ValueError) as error:
            ok, error_type = False, "bad_request"
            return error_response(
                request_id,
                "bad_request",
                f"{type(error).__name__}: {error}",
                trace=trace_id,
            )
        except Exception as error:  # noqa: BLE001 - the daemon must not die
            ok, error_type = False, "internal"
            self._logger.error(
                "unhandled error serving %s: %s",
                op,
                error,
                exc_info=True,
                extra={"trace_id": trace_id},
            )
            return error_response(
                request_id,
                "internal",
                f"{type(error).__name__}: {error}",
                trace=trace_id,
            )
        finally:
            elapsed = time.perf_counter() - start
            self.metrics.record(str(op), elapsed, ok)
            self._finish_request(trace, str(op), ok, error_type, elapsed, deadline)

    def _finish_request(
        self,
        trace: RequestTrace,
        op: str,
        ok: bool,
        error_type: Optional[str],
        elapsed: float,
        deadline: Optional[float],
    ) -> None:
        """Close the request's span tree and journal the finish event."""
        spans = trace.finish()
        if events.configured_dir() is None:
            return
        duration_ms = round(elapsed * 1e3, 3)
        fields: Dict[str, Any] = {
            "trace": trace.trace_id,
            "op": op,
            "ok": bool(ok),
            "duration_ms": duration_ms,
        }
        if error_type is not None:
            fields["error"] = error_type
        if deadline is not None:
            fields["deadline_slack_ms"] = round(
                (deadline - time.monotonic()) * 1e3, 3
            )
        if spans is not None:
            fields["spans"] = spans
        events.emit("request", **fields)
        if self.slow_request_ms is not None and duration_ms >= self.slow_request_ms:
            events.emit(
                "slow_request",
                trace=trace.trace_id,
                op=op,
                duration_ms=duration_ms,
                threshold_ms=float(self.slow_request_ms),
            )

    async def _run_mutation(
        self,
        op: str,
        args: Dict[str, Any],
        deadline: Optional[float] = None,
        trace: Optional[RequestTrace] = None,
    ) -> Any:
        if self._pending_mutations >= self.max_pending_mutations:
            raise OverloadedError(
                f"mutation queue is full ({self.max_pending_mutations} pending); "
                "retry after backoff"
            )
        self._pending_mutations += 1
        self.metrics.adjust_gauge("mutation_queue_depth", 1)
        enqueued = time.perf_counter()
        try:
            return await self._loop.run_in_executor(
                self._mutator,
                lambda: self._mutate_checked(op, args, deadline, trace, enqueued),
            )
        finally:
            self._pending_mutations -= 1
            self.metrics.adjust_gauge("mutation_queue_depth", -1)

    async def _run_read(
        self,
        op: str,
        args: Dict[str, Any],
        deadline: Optional[float] = None,
        trace: Optional[RequestTrace] = None,
    ) -> Any:
        if self._pending_reads >= self.max_pending_reads:
            raise OverloadedError(
                f"read queue is full ({self.max_pending_reads} pending); "
                "retry after backoff"
            )
        self._pending_reads += 1
        self.metrics.adjust_gauge("read_queue_depth", 1)
        enqueued = time.perf_counter()
        try:
            return await self._loop.run_in_executor(
                self._reader,
                lambda: self._read_checked(op, args, deadline, trace, enqueued),
            )
        finally:
            self._pending_reads -= 1
            self.metrics.adjust_gauge("read_queue_depth", -1)

    @staticmethod
    def _check_deadline(deadline: Optional[float]) -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceededError("deadline exceeded before the operation ran")

    def _mutate_checked(
        self,
        op: str,
        args: Dict[str, Any],
        deadline: Optional[float],
        trace: Optional[RequestTrace] = None,
        enqueued: Optional[float] = None,
    ) -> Any:
        if trace is not None and enqueued is not None:
            trace.add_span(
                "queue-wait",
                (time.perf_counter() - enqueued) * 1e3,
                queue="mutation",
            )
        # the deadline is re-checked HERE, on the mutation thread, before
        # anything is journaled or applied: a mutation that fails with
        # `deadline` was unambiguously NOT applied (clients must never
        # retry a non-idempotent op whose deadline raced the apply)
        self._check_deadline(deadline)
        try:
            # the active trace lets deep layers (the WAL append/fsync hook
            # spans) attribute their time to this request without plumbing
            with activate(trace):
                with trace.span("mutate") if trace is not None else nullcontext():
                    result = self._mutate(op, args)
        except WalBrokenError as error:
            raise WalFailedError(str(error)) from error
        except OSError as error:
            raise WalFailedError(
                f"write-ahead log failure; the operation was not applied: {error}"
            ) from error
        if op != "checkpoint":
            self._mutation_serial += 1
        return result

    def _read_checked(
        self,
        op: str,
        args: Dict[str, Any],
        deadline: Optional[float],
        trace: Optional[RequestTrace] = None,
        enqueued: Optional[float] = None,
    ) -> Any:
        if trace is not None and enqueued is not None:
            trace.add_span(
                "queue-wait", (time.perf_counter() - enqueued) * 1e3, queue="read"
            )
        self._check_deadline(deadline)
        try:
            with activate(trace):
                return self._read(op, args)
        except (WorkerError, WalFollowError) as error:
            if self._supervisor is not None:
                self._supervisor.kick()
            if self.degraded_reads and op in ("match", "top_k"):
                self.metrics.increment("degraded_reads")
                events.emit(
                    "degraded_read",
                    trace=trace.trace_id if trace is not None else None,
                    op=op,
                    cause=f"{type(error).__name__}: {error}"[:200],
                )
                return self._mutator.submit(
                    self._degraded_read, op, args, deadline, trace
                ).result()
            raise UnavailableError(
                f"shard workers unavailable ({error}); degraded reads are off"
            ) from None

    def _degraded_read(
        self,
        op: str,
        args: Dict[str, Any],
        deadline: Optional[float],
        trace: Optional[RequestTrace] = None,
    ) -> Any:
        """Serve a read directly from the authority index.

        Runs on the mutation thread — the authority index is not
        thread-safe, so a degraded read serializes with writes; the answer
        reflects the current offset (fresh, not the originally pinned one)
        and carries ``degraded: true``.  This is the availability escape
        hatch while a shard worker is being respawned and re-bootstrapped.
        """
        self._check_deadline(deadline)
        span = (
            trace.span("degraded-read", op=op)
            if trace is not None
            else nullcontext()
        )
        with activate(trace), span:
            index = self.session.index
            offset = self._offset()
            if op == "match":
                answer = match_answer(index, self.session.model, self.session.pruning)
                answer["offset"] = offset
                answer["degraded"] = True
                return answer
            entity_id = str(args["entity_id"])
            side = int(args.get("side", 0))
            node = index.node_of(entity_id, side=side)
            return {
                "offset": offset,
                "entity_id": entity_id,
                "degraded": True,
                "matches": top_k_answer(
                    index, self.session.model, node, int(args.get("k", 10))
                ),
            }

    # -- mutation thread ---------------------------------------------------------
    def _offset(self) -> int:
        return int(self.session.wal.log_offset)

    def _mutate(self, op: str, args: Dict[str, Any]) -> Any:
        if op == "insert":
            result = self.session.insert(
                profile_from_wire(args["profile"]), side=int(args.get("side", 0))
            )
            return {
                "entity_id": result.entity_id,
                "node": int(result.node),
                "num_new_pairs": int(result.num_new_pairs),
                "matches": [
                    [entity_id, probability] for entity_id, probability in result.matches
                ],
                "offset": self._offset(),
            }
        if op == "insert_bulk":
            profiles = [profile_from_wire(entry) for entry in args["profiles"]]
            side = int(args.get("side", 0))
            result = self.session.insert_bulk(
                profiles, side=side, signature_lists=self._tokenize(profiles)
            )
            return {
                "entity_ids": list(result.entity_ids),
                "num_new_pairs": int(result.num_new_pairs),
                "num_admitted": int(result.num_admitted),
                "offset": self._offset(),
            }
        if op == "remove":
            result = self.session.remove(
                str(args["entity_id"]), side=int(args.get("side", 0))
            )
            return {
                "entity_id": result.entity_id,
                "num_retracted_pairs": int(result.num_retracted_pairs),
                "offset": self._offset(),
            }
        if op == "update":
            result = self.session.update(
                profile_from_wire(args["profile"]), side=int(args.get("side", 0))
            )
            return {
                "entity_id": result.inserted.entity_id,
                "num_retracted_pairs": int(result.removed.num_retracted_pairs),
                "num_new_pairs": int(result.inserted.num_new_pairs),
                "matches": [
                    [entity_id, probability]
                    for entity_id, probability in result.inserted.matches
                ],
                "offset": self._offset(),
            }
        if op == "checkpoint":
            path = self.session.checkpoint()
            return {"snapshot": str(path), "offset": self._offset()}
        raise ProtocolError(f"unroutable mutation {op!r}")  # pragma: no cover

    def _tokenize(self, profiles):
        """Fan bulk tokenization out over the long-lived executor, if any."""
        if (
            self._executor is None
            or self._executor.workers <= 1
            or len(profiles) <= 1
        ):
            return None
        from ..parallel.executor import split_ranges
        from ..parallel.worker import signature_lists_chunk

        chunks = self._executor.starmap(
            signature_lists_chunk,
            [
                (tuple(profiles[start:stop]), self.session.index.blocking)
                for start, stop in split_ranges(
                    len(profiles), self._executor.workers
                )
            ],
        )
        return [signatures for chunk in chunks for signatures in chunk]

    # -- read thread -------------------------------------------------------------
    def _read(self, op: str, args: Dict[str, Any]) -> Any:
        # the offset is pinned here, on the single read-dispatch thread, so
        # the sequence of offsets the workers see is monotone — a replica
        # can always reach the pinned state by replaying forward
        offset = self._offset()
        if op == "match":
            view, _ = self.router.pinned_view(offset)
            with hook_span("score-and-prune"):
                answer = match_answer(view, self.session.model, self.session.pruning)
            answer["offset"] = offset
            return answer
        if op == "top_k":
            entity_id = str(args["entity_id"])
            side = int(args.get("side", 0))
            view, node = self.router.pinned_view(offset, lookup=(side, entity_id))
            if node < 0:
                raise UnknownEntityError(entity_id, side)
            with hook_span("score-top-k"):
                matches = top_k_answer(
                    view, self.session.model, node, int(args.get("k", 10))
                )
            return {"offset": offset, "entity_id": entity_id, "matches": matches}
        if op == "stats":
            return {
                "daemon": {
                    "version": __version__,
                    "entities": int(self.session.num_entities),
                    "pairs": int(self.session.num_pairs),
                    "wal_offset": offset,
                    "snapshots": len(self.session.wal.snapshot_paths()),
                    "bilateral": self.session.index.bilateral,
                    "pruning": self.session.pruning.name,
                    "num_shards": self.num_shards,
                    "online_policy": {
                        "name": self.session.online.name,
                        "threshold": float(self.session.online.threshold),
                    },
                    "supervision": {
                        "worker_restarts": (
                            self._supervisor.restarts if self._supervisor else 0
                        ),
                        "degraded_reads": "on" if self.degraded_reads else "off",
                        "heartbeat_interval": self.heartbeat_interval,
                        "hang_timeout": self.hang_timeout,
                    },
                    "delta_shipping": "on" if self.delta_shipping else "off",
                    "observability": {
                        "tracing": "on" if self.tracing else "off",
                        "event_log": str(self.event_log) if self.event_log else None,
                        "slow_request_ms": self.slow_request_ms,
                    },
                    "wal_broken": bool(self.session.wal.broken),
                },
                "shards": self.router.shard_stats(offset),
                "metrics": self.metrics.snapshot(),
            }
        raise ProtocolError(f"unroutable read {op!r}")  # pragma: no cover
