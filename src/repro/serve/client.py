"""Synchronous client for the matching service.

A thin blocking wrapper over the framed-JSON protocol
(:mod:`repro.serve.protocol`): one socket, sequential request/response,
stdlib only.  Responses are matched to requests by id; a server-side
failure surfaces as :class:`ServeError` carrying the typed error the
daemon reported.

Fault tolerance (all bounded, all with exponential backoff + jitter):

* **connect retry** — the daemon's socket may not be accepting yet (race
  with ``repro serve`` startup); connecting retries within
  ``connect_timeout`` seconds instead of failing on the first refusal;
* **request retry** — a retryable failure re-sends the request up to
  ``retries`` times.  What is retryable depends on *when* it failed:
  before the request bytes were sent, any op may retry (the daemon never
  saw it); after, only :data:`~repro.serve.protocol.IDEMPOTENT_OPS` and
  ``overloaded`` rejections (which the daemon shed unprocessed) retry.  A
  transport failure after sending a non-idempotent write is ambiguous —
  the write may have been applied — so it is NEVER retried; the error
  propagates for the caller to reconcile.

>>> with ServeClient(port=9876) as client:
...     client.insert({"entity_id": "a1", "attributes": {"title": "x"}})
...     answer = client.match()
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from ..datamodel import EntityProfile
from ..obs.trace import mint_trace_id
from .protocol import (
    ERROR_OVERLOADED,
    IDEMPOTENT_OPS,
    ProtocolError,
    profile_to_wire,
    read_message_from,
    write_message_to,
)

WireProfile = Union[EntityProfile, Dict[str, Any]]


class ServeError(RuntimeError):
    """The daemon answered a request with a typed error."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.server_message = message


def _wire_profile(profile: WireProfile) -> Dict[str, Any]:
    if isinstance(profile, EntityProfile):
        return profile_to_wire(profile)
    return profile


class ServeClient:
    """One connection to a running :class:`~repro.serve.daemon.MatchingDaemon`.

    Parameters
    ----------
    timeout:
        Per-request socket timeout in seconds.
    connect_timeout:
        Total budget for establishing the initial (and any re-established)
        connection, retried with backoff while the daemon's listener may
        still be binding.
    retries:
        Retryable-failure re-send budget per :meth:`call` (0 disables).
    backoff / max_backoff:
        Exponential backoff base and cap between retries; each sleep is
        jittered uniformly in ``[0.5, 1.5) ×`` the nominal delay.
    deadline_ms:
        When set, every request carries this server-enforced deadline.
    retry_rng:
        Jitter source (tests pass a seeded ``random.Random``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = 60.0,
        connect_timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        deadline_ms: Optional[float] = None,
        retry_rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.deadline_ms = deadline_ms
        self._rng = retry_rng if retry_rng is not None else random.Random()
        self._socket: Optional[socket.socket] = None
        self._stream = None
        self._next_id = 0
        #: trace id of the most recent request (minted client-side, echoed
        #: by the daemon) — join key into the server's event log
        self.last_trace_id: Optional[str] = None
        self._connect()

    # -- lifecycle ---------------------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._drop_connection()

    def _drop_connection(self) -> None:
        stream, self._stream = self._stream, None
        sock, self._socket = self._socket, None
        for closable in (stream, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass

    def _connect(self) -> None:
        """(Re)establish the connection, retrying within ``connect_timeout``.

        Absorbs the startup race: ``repro serve`` announces after binding,
        but a caller launching both may connect before the listener is up.
        """
        if self._stream is not None:
            return
        deadline = time.monotonic() + self.connect_timeout
        attempt = 0
        while True:
            try:
                self._socket = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._stream = self._socket.makefile("rwb")
                return
            except OSError:
                self._drop_connection()
                if time.monotonic() >= deadline:
                    raise
                self._sleep_backoff(attempt)
                attempt += 1

    def _sleep_backoff(self, attempt: int) -> None:
        nominal = min(self.max_backoff, self.backoff * (2.0 ** attempt))
        time.sleep(nominal * (0.5 + self._rng.random()))

    # -- transport ---------------------------------------------------------------
    def _exchange(
        self, op: str, args: Dict[str, Any], trace_id: Optional[str] = None
    ) -> Any:
        """One request/response on the current connection.

        Transport failures raise with ``sent`` encoded by re-raising as a
        tuple-carrying exception attribute: the caller needs to know
        whether the request bytes left the client before deciding to retry.
        """
        self._connect()
        self._next_id += 1
        request_id = self._next_id
        message: Dict[str, Any] = {"op": op, "id": request_id, "args": args}
        if trace_id is not None:
            message["trace"] = trace_id
        if self.deadline_ms is not None:
            message["deadline_ms"] = self.deadline_ms
        sent = False
        try:
            write_message_to(self._stream, message)
            sent = True
            response = read_message_from(self._stream)
        except (OSError, ProtocolError) as error:
            self._drop_connection()
            error.request_sent = sent  # type: ignore[attr-defined]
            raise
        if response is None:
            self._drop_connection()
            error = ProtocolError("the daemon closed the connection mid-request")
            error.request_sent = True  # type: ignore[attr-defined]
            raise error
        if response.get("id") != request_id:
            self._drop_connection()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if response.get("ok"):
            return response.get("result")
        error_body = response.get("error") or {}
        raise ServeError(
            str(error_body.get("type", "unknown")),
            str(error_body.get("message", "")),
        )

    def call(self, op: str, **args: Any) -> Any:
        """Send one request; retry per the idempotency rules; return the
        result or raise :class:`ServeError`."""
        # one trace id per logical call: retried attempts of the same
        # request share it, so the server's event log shows them as one
        # causal story rather than unrelated requests
        trace_id = mint_trace_id()
        self.last_trace_id = trace_id
        attempt = 0
        while True:
            try:
                return self._exchange(op, args, trace_id)
            except ServeError as error:
                # the daemon processed (or explicitly shed) the request —
                # only an OVERLOADED shed is retryable, and it is
                # retryable for every op: shed means not applied
                if (
                    error.error_type != ERROR_OVERLOADED
                    or attempt >= self.retries
                ):
                    raise
            except (OSError, ProtocolError) as error:
                # transport failure: retry if the request never left the
                # client, or if the op is idempotent; a sent non-idempotent
                # write is ambiguous and must surface
                sent = getattr(error, "request_sent", True)
                if attempt >= self.retries or (sent and op not in IDEMPOTENT_OPS):
                    raise
            self._sleep_backoff(attempt)
            attempt += 1

    # -- operations --------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def insert(self, profile: WireProfile, side: int = 0) -> Dict[str, Any]:
        return self.call("insert", profile=_wire_profile(profile), side=side)

    def insert_bulk(
        self, profiles: Sequence[WireProfile], side: int = 0
    ) -> Dict[str, Any]:
        return self.call(
            "insert_bulk",
            profiles=[_wire_profile(profile) for profile in profiles],
            side=side,
        )

    def remove(self, entity_id: str, side: int = 0) -> Dict[str, Any]:
        return self.call("remove", entity_id=entity_id, side=side)

    def update(self, profile: WireProfile, side: int = 0) -> Dict[str, Any]:
        return self.call("update", profile=_wire_profile(profile), side=side)

    def match(self) -> Dict[str, Any]:
        """The full retained-match set at a pinned WAL offset."""
        return self.call("match")

    def top_k(
        self, entity_id: str, side: int = 0, k: int = 10
    ) -> Dict[str, Any]:
        """The ``k`` best-scored candidate counterparts of one entity."""
        return self.call("top_k", entity_id=entity_id, side=side, k=k)

    def checkpoint(self) -> Dict[str, Any]:
        return self.call("checkpoint")

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def metrics(self) -> Dict[str, Any]:
        """The unified metrics registry in Prometheus text exposition.

        Returns ``{"content_type": ..., "text": ...}`` — ``text`` is the
        scrape body (``repro_request_duration_seconds`` histograms, event
        counters, queue-depth and process gauges).
        """
        return self.call("metrics")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain, checkpoint and exit."""
        return self.call("shutdown")

    # -- conveniences ------------------------------------------------------------
    def retained_pairs(self) -> List[tuple]:
        """``match`` flattened to ``[(id_a, id_b, probability), ...]``."""
        answer = self.match()
        return [tuple(entry) for entry in answer["retained"]]
