"""Synchronous client for the matching service.

A thin blocking wrapper over the framed-JSON protocol
(:mod:`repro.serve.protocol`): one socket, sequential request/response,
stdlib only.  Responses are matched to requests by id; a server-side
failure surfaces as :class:`ServeError` carrying the typed error the
daemon reported.

>>> with ServeClient(port=9876) as client:
...     client.insert({"entity_id": "a1", "attributes": {"title": "x"}})
...     answer = client.match()
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence, Union

from ..datamodel import EntityProfile
from .protocol import (
    ProtocolError,
    profile_to_wire,
    read_message_from,
    write_message_to,
)

WireProfile = Union[EntityProfile, Dict[str, Any]]


class ServeError(RuntimeError):
    """The daemon answered a request with a typed error."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.server_message = message


def _wire_profile(profile: WireProfile) -> Dict[str, Any]:
    if isinstance(profile, EntityProfile):
        return profile_to_wire(profile)
    return profile


class ServeClient:
    """One connection to a running :class:`~repro.serve.daemon.MatchingDaemon`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = 60.0,
    ) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._socket.makefile("rwb")
        self._next_id = 0

    # -- lifecycle ---------------------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._socket.close()

    # -- transport ---------------------------------------------------------------
    def call(self, op: str, **args: Any) -> Any:
        """Send one request and return its result (or raise :class:`ServeError`)."""
        self._next_id += 1
        request_id = self._next_id
        write_message_to(
            self._stream, {"op": op, "id": request_id, "args": args}
        )
        response = read_message_from(self._stream)
        if response is None:
            raise ProtocolError("the daemon closed the connection mid-request")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServeError(
            str(error.get("type", "unknown")), str(error.get("message", ""))
        )

    # -- operations --------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def insert(self, profile: WireProfile, side: int = 0) -> Dict[str, Any]:
        return self.call("insert", profile=_wire_profile(profile), side=side)

    def insert_bulk(
        self, profiles: Sequence[WireProfile], side: int = 0
    ) -> Dict[str, Any]:
        return self.call(
            "insert_bulk",
            profiles=[_wire_profile(profile) for profile in profiles],
            side=side,
        )

    def remove(self, entity_id: str, side: int = 0) -> Dict[str, Any]:
        return self.call("remove", entity_id=entity_id, side=side)

    def update(self, profile: WireProfile, side: int = 0) -> Dict[str, Any]:
        return self.call("update", profile=_wire_profile(profile), side=side)

    def match(self) -> Dict[str, Any]:
        """The full retained-match set at a pinned WAL offset."""
        return self.call("match")

    def top_k(
        self, entity_id: str, side: int = 0, k: int = 10
    ) -> Dict[str, Any]:
        """The ``k`` best-scored candidate counterparts of one entity."""
        return self.call("top_k", entity_id=entity_id, side=side, k=k)

    def checkpoint(self) -> Dict[str, Any]:
        return self.call("checkpoint")

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain, checkpoint and exit."""
        return self.call("shutdown")

    # -- conveniences ------------------------------------------------------------
    def retained_pairs(self) -> List[tuple]:
        """``match`` flattened to ``[(id_a, id_b, probability), ...]``."""
        answer = self.match()
        return [tuple(entry) for entry in answer["retained"]]
