"""Serving-side metrics — now backed by the unified ``repro.obs`` registry.

The real implementation lives in :mod:`repro.obs.registry`; this module
keeps the serving stack's historical import surface
(``ServerMetrics`` / ``LatencyHistogram`` / ``BUCKET_BOUNDS``) plus the
human rendering of a ``stats`` response.  ``ServerMetrics`` *is* the
unified :class:`~repro.obs.registry.MetricsRegistry` — one registry per
daemon now also carries sampled process gauges (RSS, WAL size, snapshot
age, resident shm bytes, replica lag) and the Prometheus exposition
served by the ``metrics`` protocol op.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.registry import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    MetricsRegistry,
    render_prometheus,
)

__all__ = [
    "BUCKET_BOUNDS",
    "LatencyHistogram",
    "MetricsRegistry",
    "ServerMetrics",
    "render_prometheus",
    "render_stats",
]

#: the daemon's metrics registry type — kept under its historical name
ServerMetrics = MetricsRegistry


def render_stats(stats: Dict[str, Any]) -> str:
    """Human-readable rendering of a ``stats`` response (``repro client stats``)."""
    lines: List[str] = []
    daemon = stats.get("daemon", {})
    if daemon:
        lines.append(
            f"daemon: {daemon.get('entities', 0)} live entities, "
            f"{daemon.get('pairs', 0)} candidate pairs, "
            f"WAL offset {daemon.get('wal_offset', 0)}"
        )
        policy = daemon.get("online_policy")
        if policy:
            lines.append(
                f"  online policy {policy.get('name')}, "
                f"threshold {policy.get('threshold', 0.0):.3f}"
            )
    shards = stats.get("shards") or []
    for shard in shards:
        lines.append(
            f"shard {shard.get('shard')}: {shard.get('blocks', 0)} blocks "
            f"({shard.get('spawning_blocks', 0)} spawning), "
            f"{shard.get('pairs', 0)} shard-local pairs, "
            f"offset {shard.get('offset', 0)}"
        )
    metrics = stats.get("metrics", {})
    queues = metrics.get("queues", {})
    if queues:
        lines.append(
            "queues: "
            + ", ".join(f"{name}={depth}" for name, depth in sorted(queues.items()))
        )
    counters = metrics.get("counters", {})
    delta_reads = counters.get("delta_reads", 0)
    full_reads = counters.get("full_reads", 0)
    if delta_reads or full_reads:
        shipped = delta_reads + full_reads
        hit_rate = delta_reads / shipped if shipped else 0.0
        lines.append(
            f"read shipping: {delta_reads} delta / {full_reads} full "
            f"({hit_rate:.1%} delta hit rate), "
            f"{counters.get('read_bytes_shipped', 0)} bytes shipped "
            f"({counters.get('read_bytes_delta', 0)} delta, "
            f"{counters.get('read_bytes_full', 0)} full)"
        )
    if counters:
        lines.append(
            "events: "
            + ", ".join(f"{name}={count}" for name, count in sorted(counters.items()))
        )
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append(
            "gauges: "
            + ", ".join(
                f"{name}={value:.0f}" if float(value) >= 10 else f"{name}={value:.3f}"
                for name, value in sorted(gauges.items())
            )
        )
    connections = metrics.get("connections")
    if connections:
        lines.append(
            f"connections: {connections.get('open', 0)} open / "
            f"{connections.get('total', 0)} total"
        )
    operations = metrics.get("operations", {})
    if operations:
        lines.append("per-op latency:")
        for op, values in operations.items():
            lines.append(
                f"  {op:<12} n={values.get('count', 0):<6} "
                f"mean={values.get('mean_ms', 0.0):.3f}ms "
                f"p50={values.get('p50_ms', 0.0):.3f}ms "
                f"p99={values.get('p99_ms', 0.0):.3f}ms "
                f"max={values.get('max_ms', 0.0):.3f}ms "
                f"errors={values.get('errors', 0)}"
            )
    return "\n".join(lines) if lines else "no stats reported"
