"""Serving-side observability: latency histograms, counters and gauges.

:class:`ServerMetrics` is the daemon's single metrics registry.  Every
request is recorded into a per-operation :class:`LatencyHistogram`
(geometric buckets from 10µs to ~100s, plus exact count/sum/max), and the
two dispatch queues (the single-threaded mutation executor and the
single-threaded read executor) expose their depths as gauges.  The
``stats`` endpoint serialises the registry with :meth:`ServerMetrics.snapshot`;
``repro client stats`` renders it with :func:`render_stats` — the
observability seed the ROADMAP's serving item asks for.

Everything is guarded by one lock: recordings come from the asyncio loop,
the mutation thread and the read thread concurrently.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

#: histogram bucket upper bounds in seconds: 10^(-5) .. 10^2, four buckets
#: per decade (geometric, factor 10^(1/4) ≈ 1.78)
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-20, 9)
)


class LatencyHistogram:
    """Latency distribution over fixed geometric buckets.

    Percentiles are read from the bucket boundaries (the reported value is
    the upper bound of the bucket the rank falls in — an overestimate by at
    most one bucket width), while count, mean and max are exact.
    """

    def __init__(self) -> None:
        self._counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def add(self, seconds: float) -> None:
        """Record one observation."""
        position = 0
        for bound in BUCKET_BOUNDS:
            if seconds <= bound:
                break
            position += 1
        self._counts[position] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, fraction: float) -> float:
        """The bucket upper bound covering the ``fraction`` rank (0..1)."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.5))
        seen = 0
        for position, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if position < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[position]
                return self.max_seconds
        return self.max_seconds

    def summary(self) -> Dict[str, float]:
        """Count, mean and estimated p50/p99 in milliseconds."""
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": mean * 1e3,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
            "max_ms": self.max_seconds * 1e3,
        }


class ServerMetrics:
    """The daemon's thread-safe metrics registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._errors: Dict[str, int] = {}
        self._gauges: Dict[str, int] = {
            "mutation_queue_depth": 0,
            "read_queue_depth": 0,
        }
        #: fault-tolerance event counters (worker_restarts, degraded_reads,
        #: shed_mutations, shed_reads, deadline_exceeded, wal_failures, ...)
        self._counters: Dict[str, int] = {}
        self.connections_total = 0
        self.connections_open = 0

    def increment(self, name: str, delta: int = 1) -> None:
        """Bump a named event counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def record(self, op: str, seconds: float, ok: bool) -> None:
        """Record one served request."""
        with self._lock:
            histogram = self._histograms.get(op)
            if histogram is None:
                histogram = self._histograms[op] = LatencyHistogram()
            histogram.add(seconds)
            if not ok:
                self._errors[op] = self._errors.get(op, 0) + 1

    def adjust_gauge(self, name: str, delta: int) -> None:
        """Move a queue-depth gauge up or down."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0) + delta

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_total += 1
            self.connections_open += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_open -= 1

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-encodable view of every counter, gauge and histogram."""
        with self._lock:
            return {
                "operations": {
                    op: dict(
                        histogram.summary(), errors=self._errors.get(op, 0)
                    )
                    for op, histogram in sorted(self._histograms.items())
                },
                "queues": dict(self._gauges),
                "counters": dict(sorted(self._counters.items())),
                "connections": {
                    "total": self.connections_total,
                    "open": self.connections_open,
                },
            }


def render_stats(stats: Dict[str, Any]) -> str:
    """Human-readable rendering of a ``stats`` response (``repro client stats``)."""
    lines: List[str] = []
    daemon = stats.get("daemon", {})
    if daemon:
        lines.append(
            f"daemon: {daemon.get('entities', 0)} live entities, "
            f"{daemon.get('pairs', 0)} candidate pairs, "
            f"WAL offset {daemon.get('wal_offset', 0)}"
        )
        policy = daemon.get("online_policy")
        if policy:
            lines.append(
                f"  online policy {policy.get('name')}, "
                f"threshold {policy.get('threshold', 0.0):.3f}"
            )
    shards = stats.get("shards") or []
    for shard in shards:
        lines.append(
            f"shard {shard.get('shard')}: {shard.get('blocks', 0)} blocks "
            f"({shard.get('spawning_blocks', 0)} spawning), "
            f"{shard.get('pairs', 0)} shard-local pairs, "
            f"offset {shard.get('offset', 0)}"
        )
    metrics = stats.get("metrics", {})
    queues = metrics.get("queues", {})
    if queues:
        lines.append(
            "queues: "
            + ", ".join(f"{name}={depth}" for name, depth in sorted(queues.items()))
        )
    counters = metrics.get("counters", {})
    delta_reads = counters.get("delta_reads", 0)
    full_reads = counters.get("full_reads", 0)
    if delta_reads or full_reads:
        shipped = delta_reads + full_reads
        hit_rate = delta_reads / shipped if shipped else 0.0
        lines.append(
            f"read shipping: {delta_reads} delta / {full_reads} full "
            f"({hit_rate:.1%} delta hit rate), "
            f"{counters.get('read_bytes_shipped', 0)} bytes shipped "
            f"({counters.get('read_bytes_delta', 0)} delta, "
            f"{counters.get('read_bytes_full', 0)} full)"
        )
    if counters:
        lines.append(
            "events: "
            + ", ".join(f"{name}={count}" for name, count in sorted(counters.items()))
        )
    connections = metrics.get("connections")
    if connections:
        lines.append(
            f"connections: {connections.get('open', 0)} open / "
            f"{connections.get('total', 0)} total"
        )
    operations = metrics.get("operations", {})
    if operations:
        lines.append("per-op latency:")
        for op, values in operations.items():
            lines.append(
                f"  {op:<12} n={values.get('count', 0):<6} "
                f"mean={values.get('mean_ms', 0.0):.3f}ms "
                f"p50={values.get('p50_ms', 0.0):.3f}ms "
                f"p99={values.get('p99_ms', 0.0):.3f}ms "
                f"max={values.get('max_ms', 0.0):.3f}ms "
                f"errors={values.get('errors', 0)}"
            )
    return "\n".join(lines) if lines else "no stats reported"
