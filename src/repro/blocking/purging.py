"""Block Purging.

Parameter-free block-cleaning step (Papadakis et al., TKDE 2012) applied by
the paper right after Token Blocking: blocks whose signature is exhibited by
more than half of the entity profiles carry no distinguishing information
(stop-words, ubiquitous category names) and are discarded.

Two variants are provided:

* :func:`purge_oversized_blocks` — the size-threshold rule used in the paper
  ("discards all the blocks that contain more than half of the entity
  profiles").
* :func:`purge_by_comparison_cardinality` — the original cardinality-based
  formulation that finds the largest block cardinality whose retention does
  not lower comparison efficiency; provided for completeness/ablation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..datamodel import Block, BlockCollection


def purge_oversized_blocks(
    blocks: BlockCollection, max_entity_fraction: float = 0.5
) -> BlockCollection:
    """Drop blocks containing more than ``max_entity_fraction`` of all entities.

    Parameters
    ----------
    blocks:
        The input block collection.
    max_entity_fraction:
        Maximum allowed block size, as a fraction of the total number of
        entities in the node space (default 0.5, the paper's rule).
    """
    if not 0.0 < max_entity_fraction <= 1.0:
        raise ValueError("max_entity_fraction must be in (0, 1]")
    limit = max_entity_fraction * blocks.index_space.total
    kept = [block for block in blocks if block.size() <= limit]
    return BlockCollection(kept, blocks.index_space, name=f"{blocks.name}|purged")


def purge_by_comparison_cardinality(blocks: BlockCollection) -> BlockCollection:
    """Cardinality-based Block Purging (Papadakis et al. 2012).

    Blocks are examined in decreasing comparison cardinality; the purging
    threshold is the largest cardinality at which the ratio of block
    assignments to comparisons stops improving.  Blocks with a cardinality
    above the threshold are discarded.
    """
    if len(blocks) == 0:
        return blocks

    stats: List[Tuple[int, int, int]] = []  # (cardinality, comparisons, assignments)
    for block in blocks:
        stats.append((block.cardinality(), block.cardinality(), block.size()))
    stats.sort(key=lambda item: item[0])

    # Aggregate duplicates of the same cardinality.
    aggregated: List[Tuple[int, int, int]] = []
    for cardinality, comparisons, assignments in stats:
        if aggregated and aggregated[-1][0] == cardinality:
            previous = aggregated[-1]
            aggregated[-1] = (
                cardinality,
                previous[1] + comparisons,
                previous[2] + assignments,
            )
        else:
            aggregated.append((cardinality, comparisons, assignments))

    # Cumulative sums from the smallest cardinality up.
    total_comparisons = 0
    total_assignments = 0
    cumulative: List[Tuple[int, float]] = []
    for cardinality, comparisons, assignments in aggregated:
        total_comparisons += comparisons
        total_assignments += assignments
        if total_comparisons > 0:
            cumulative.append((cardinality, total_assignments / total_comparisons))

    if not cumulative:
        return blocks

    # The threshold is the cardinality where the assignments/comparisons ratio
    # last increases; beyond it, adding larger blocks only dilutes the ratio.
    threshold = cumulative[-1][0]
    best_ratio = -1.0
    for cardinality, ratio in cumulative:
        if ratio >= best_ratio:
            best_ratio = ratio
            threshold = cardinality

    kept = [block for block in blocks if block.cardinality() <= threshold]
    return BlockCollection(kept, blocks.index_space, name=f"{blocks.name}|purged")
