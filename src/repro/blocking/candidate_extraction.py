"""Candidate-pair extraction and the standard block-preparation pipeline.

The distinct candidate pairs of a block collection are obtained by
aggregating, for every entity, the set of entities it shares at least one
block with (redundancy removal).  :func:`prepare_blocks` chains the paper's
exact pre-processing: Token Blocking -> Block Purging -> Block Filtering ->
candidate extraction.

Two interchangeable backends run the pipeline, mirroring the feature-backend
pattern of :mod:`repro.weights.sparse`:

* ``"array"`` (the default) — the array-native engine of
  :mod:`repro.blocking.arrayops`: batched tokenization, CSR block assembly,
  array purging/filtering passes and chunked vectorized pair extraction.
  It also hands the entity x block CSR incidence structure forward on
  :attr:`PreparedBlocks.csr` so feature generation never rebuilds it.
* ``"loop"`` — the readable object-based reference pipeline, kept as the
  correctness oracle; equivalence tests assert both backends produce
  identical blocks and candidate pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..datamodel import BlockCollection, CandidateSet, EntityCollection
from ..utils.timing import StageTimer
from ..weights.sparse import EntityBlockCSR
from .arrayops import prepare_blocks_array, resolve_blocking_backend
from .base import BlockingMethod
from .filtering import filter_blocks
from .purging import purge_oversized_blocks
from .token_blocking import TokenBlocking

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..weights import BlockStatistics


def extract_candidates(blocks: BlockCollection) -> CandidateSet:
    """Return the distinct candidate pairs (comparisons) of ``blocks``."""
    return CandidateSet.from_blocks(blocks)


@dataclass
class PreparedBlocks:
    """Output of the standard block-preparation pipeline."""

    #: the raw blocks produced by the blocking method
    raw_blocks: BlockCollection
    #: blocks surviving Block Purging
    purged_blocks: BlockCollection
    #: blocks surviving Block Filtering — the collection Meta-blocking refines
    blocks: BlockCollection
    #: the distinct candidate pairs of ``blocks``
    candidates: CandidateSet
    #: entity x block CSR of ``blocks``, prebuilt by the array backend and
    #: reused by the sparse feature backend / blocking-graph builder
    #: (``None`` on the loop backend: statistics build it lazily instead)
    csr: Optional[EntityBlockCSR] = field(default=None, compare=False)
    #: the blocking backend that produced this preparation
    backend: str = "loop"
    #: per-stage wall-clock of the preparation (blocking, purging,
    #: filtering, candidate-extraction)
    timer: Optional[StageTimer] = field(default=None, compare=False)
    _stats: Optional["BlockStatistics"] = field(
        default=None, init=False, repr=False, compare=False
    )

    def statistics(self) -> "BlockStatistics":
        """Block statistics of ``blocks``, reusing the prepared CSR (cached).

        This is the CSR handoff contract: statistics created here inherit
        :attr:`csr`, so a pipeline run over this preparation never rebuilds
        the incidence structure.
        """
        if self._stats is None:
            from ..weights import BlockStatistics

            self._stats = BlockStatistics(self.blocks, csr=self.csr)
        return self._stats


def prepare_blocks(
    first: EntityCollection,
    second: Optional[EntityCollection] = None,
    blocking: Optional[BlockingMethod] = None,
    purging_fraction: float = 0.5,
    filtering_ratio: float = 0.8,
    apply_purging: bool = True,
    apply_filtering: bool = True,
    backend: str = "array",
    timer: Optional[StageTimer] = None,
    workers=1,
    executor=None,
) -> PreparedBlocks:
    """Run the paper's block-preparation pipeline.

    Parameters
    ----------
    first, second:
        The input entity collection(s); ``second`` is ``None`` for Dirty ER.
    blocking:
        The blocking method (default :class:`TokenBlocking`, as in the paper).
    purging_fraction:
        Block Purging size threshold as a fraction of all entities.
    filtering_ratio:
        Block Filtering retention ratio (0.8 = drop each entity's largest 20 %).
    apply_purging, apply_filtering:
        Toggle the cleaning steps (the scalability experiments skip filtering).
    backend:
        ``"array"`` (vectorized, the default) or ``"loop"`` (the object-based
        reference oracle); both produce identical prepared blocks.
    timer:
        Optional :class:`StageTimer`; the preparation's total wall-clock is
        added to its ``"block-preparation"`` stage (the per-stage breakdown
        stays on :attr:`PreparedBlocks.timer`).
    workers:
        Worker-process count (or ``"auto"``) for the sharded engine of
        :mod:`repro.parallel`.  The default ``1`` is the exact
        single-process path and stays the oracle; any other value requires
        the ``array`` backend and produces bit-identical prepared blocks.
    executor:
        Optional live :class:`repro.parallel.ParallelExecutor` to reuse
        (amortises pool startup and shared-memory publication across
        stages); when omitted and ``workers > 1``, one is created and
        closed around the preparation.
    """
    resolve_blocking_backend(backend)
    from ..parallel.executor import resolve_workers

    worker_count = executor.workers if executor is not None else resolve_workers(workers)
    if worker_count > 1 and backend != "array":
        raise ValueError(
            "workers > 1 requires the 'array' blocking backend; the 'loop' "
            "backend is the single-process reference oracle"
        )
    prep_timer = StageTimer()

    if worker_count > 1:
        from ..parallel.blocking import prepare_blocks_sharded
        from ..parallel.executor import ParallelExecutor

        owned = executor is None
        live_executor = executor if executor is not None else ParallelExecutor(workers)
        try:
            result = prepare_blocks_sharded(
                first,
                second,
                live_executor,
                blocking=blocking,
                purging_fraction=purging_fraction,
                filtering_ratio=filtering_ratio,
                apply_purging=apply_purging,
                apply_filtering=apply_filtering,
                timer=prep_timer,
            )
        finally:
            if owned:
                live_executor.close()
        raw, purged, filtered = result.raw, result.purged, result.filtered
        candidates, csr = result.candidates, result.csr
    elif backend == "array":
        result = prepare_blocks_array(
            first,
            second,
            blocking=blocking,
            purging_fraction=purging_fraction,
            filtering_ratio=filtering_ratio,
            apply_purging=apply_purging,
            apply_filtering=apply_filtering,
            timer=prep_timer,
        )
        raw, purged, filtered = result.raw, result.purged, result.filtered
        candidates, csr = result.candidates, result.csr
    else:
        method = blocking if blocking is not None else TokenBlocking()
        with prep_timer.stage("blocking"):
            raw = method.build_blocks(first, second).without_empty_blocks()
        with prep_timer.stage("purging"):
            purged = purge_oversized_blocks(raw, purging_fraction) if apply_purging else raw
        with prep_timer.stage("filtering"):
            filtered = filter_blocks(purged, filtering_ratio) if apply_filtering else purged
        with prep_timer.stage("candidate-extraction"):
            candidates = extract_candidates(filtered)
        csr = None

    if timer is not None:
        timer.add("block-preparation", prep_timer.total)
    return PreparedBlocks(
        raw_blocks=raw,
        purged_blocks=purged,
        blocks=filtered,
        candidates=candidates,
        csr=csr,
        backend=backend,
        timer=prep_timer,
    )
