"""Candidate-pair extraction and the standard block-preparation pipeline.

The distinct candidate pairs of a block collection are obtained by
aggregating, for every entity, the set of entities it shares at least one
block with (redundancy removal).  :func:`prepare_blocks` chains the paper's
exact pre-processing: Token Blocking -> Block Purging -> Block Filtering ->
candidate extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datamodel import BlockCollection, CandidateSet, EntityCollection
from .base import BlockingMethod
from .filtering import filter_blocks
from .purging import purge_oversized_blocks
from .token_blocking import TokenBlocking


def extract_candidates(blocks: BlockCollection) -> CandidateSet:
    """Return the distinct candidate pairs (comparisons) of ``blocks``."""
    return CandidateSet.from_blocks(blocks)


@dataclass
class PreparedBlocks:
    """Output of the standard block-preparation pipeline."""

    #: the raw blocks produced by the blocking method
    raw_blocks: BlockCollection
    #: blocks surviving Block Purging
    purged_blocks: BlockCollection
    #: blocks surviving Block Filtering — the collection Meta-blocking refines
    blocks: BlockCollection
    #: the distinct candidate pairs of ``blocks``
    candidates: CandidateSet


def prepare_blocks(
    first: EntityCollection,
    second: Optional[EntityCollection] = None,
    blocking: Optional[BlockingMethod] = None,
    purging_fraction: float = 0.5,
    filtering_ratio: float = 0.8,
    apply_purging: bool = True,
    apply_filtering: bool = True,
) -> PreparedBlocks:
    """Run the paper's block-preparation pipeline.

    Parameters
    ----------
    first, second:
        The input entity collection(s); ``second`` is ``None`` for Dirty ER.
    blocking:
        The blocking method (default :class:`TokenBlocking`, as in the paper).
    purging_fraction:
        Block Purging size threshold as a fraction of all entities.
    filtering_ratio:
        Block Filtering retention ratio (0.8 = drop each entity's largest 20 %).
    apply_purging, apply_filtering:
        Toggle the cleaning steps (the scalability experiments skip filtering).
    """
    method = blocking if blocking is not None else TokenBlocking()
    raw = method.build_blocks(first, second).without_empty_blocks()
    purged = purge_oversized_blocks(raw, purging_fraction) if apply_purging else raw
    filtered = filter_blocks(purged, filtering_ratio) if apply_filtering else purged
    candidates = extract_candidates(filtered)
    return PreparedBlocks(
        raw_blocks=raw,
        purged_blocks=purged,
        blocks=filtered,
        candidates=candidates,
    )
