"""Base classes for blocking methods.

A blocking method maps entity profiles to blocking signatures and groups
entities sharing a signature into blocks.  The library distinguishes two
input shapes:

* Clean-Clean ER — two duplicate-free collections; blocks are *bilateral*
  and only cross-collection pairs are compared.
* Dirty ER — a single collection that may contain duplicates; blocks are
  *unilateral* and every intra-block pair is compared.

Concrete subclasses only have to implement :meth:`signatures_of`, the mapping
from one profile to its set of signatures; the rest of the machinery (index
building, block assembly) is shared.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Set

from ..datamodel import (
    BlockCollection,
    EntityCollection,
    EntityIndexSpace,
    EntityProfile,
    build_bilateral_blocks,
    build_unilateral_blocks,
)


class BlockingMethod(ABC):
    """Abstract schema-agnostic blocking method."""

    #: name used in block collection labels and reports
    name: str = "blocking"

    @abstractmethod
    def signatures_of(self, profile: EntityProfile) -> Set[str]:
        """Return the blocking signatures of one entity profile."""

    def signature_lists(self, collection: EntityCollection) -> List[List[str]]:
        """Per-profile signature lists for batch (array-backend) assembly.

        Duplicates are allowed — the array backend deduplicates while
        dictionary-encoding the signatures — so subclasses may override this
        to skip the per-profile set building of :meth:`signatures_of`.
        """
        return [list(self.signatures_of(profile)) for profile in collection]

    # -- shared machinery -------------------------------------------------------
    def _signature_index(
        self, collection: EntityCollection, node_offset: int
    ) -> Dict[str, List[int]]:
        """Map every signature to the node ids of entities exhibiting it."""
        index: Dict[str, List[int]] = {}
        for position, profile in enumerate(collection):
            for signature in self.signatures_of(profile):
                index.setdefault(signature, []).append(node_offset + position)
        return index

    def build_blocks(
        self,
        first: EntityCollection,
        second: Optional[EntityCollection] = None,
    ) -> BlockCollection:
        """Build the block collection for one (dirty) or two (clean) collections.

        Parameters
        ----------
        first:
            The first (or only) entity collection.
        second:
            The second collection for Clean-Clean ER, or ``None`` for Dirty ER.
        """
        if second is None:
            index_space = EntityIndexSpace(len(first))
            signatures = self._signature_index(first, node_offset=0)
            return build_unilateral_blocks(
                signatures, index_space, name=f"{self.name}({first.name})"
            )
        index_space = EntityIndexSpace(len(first), len(second))
        signatures_first = self._signature_index(first, node_offset=0)
        signatures_second = self._signature_index(second, node_offset=len(first))
        return build_bilateral_blocks(
            signatures_first,
            signatures_second,
            index_space,
            name=f"{self.name}({first.name},{second.name})",
        )

    def __call__(
        self,
        first: EntityCollection,
        second: Optional[EntityCollection] = None,
    ) -> BlockCollection:
        """Alias for :meth:`build_blocks` so methods can be used as callables."""
        return self.build_blocks(first, second)
