"""Suffix-Arrays Blocking.

A redundancy-positive blocking method that creates a block for every token
suffix of length at least ``min_suffix_length``.  Suffix signatures are robust
to prefix-level noise (e.g. articles, model prefixes) and are one of the
standard alternatives cited by the paper alongside Token and Q-Grams
Blocking.
"""

from __future__ import annotations

from typing import Set

from ..datamodel import EntityProfile
from ..utils.text import distinct_suffixes
from .base import BlockingMethod


class SuffixArraysBlocking(BlockingMethod):
    """Create one block per distinct token suffix.

    Parameters
    ----------
    min_suffix_length:
        Minimum suffix length (default 3).
    max_block_size:
        Suffixes exhibited by more than this many entities are skipped, the
        classic Suffix-Arrays frequency cut-off.  ``None`` disables the cut.
    """

    name = "suffix-arrays-blocking"

    def __init__(self, min_suffix_length: int = 3, max_block_size: int | None = 53) -> None:
        if min_suffix_length < 1:
            raise ValueError("min_suffix_length must be at least 1")
        if max_block_size is not None and max_block_size < 2:
            raise ValueError("max_block_size must be at least 2 when set")
        self.min_suffix_length = min_suffix_length
        self.max_block_size = max_block_size

    def signatures_of(self, profile: EntityProfile) -> Set[str]:
        return distinct_suffixes(profile.text(), min_suffix_length=self.min_suffix_length)

    def build_blocks(self, first, second=None):  # type: ignore[override]
        """Build blocks, then drop blocks larger than ``max_block_size``."""
        blocks = super().build_blocks(first, second)
        if self.max_block_size is None:
            return blocks
        from ..datamodel import BlockCollection

        kept = [block for block in blocks if block.size() <= self.max_block_size]
        return BlockCollection(kept, blocks.index_space, name=blocks.name)
