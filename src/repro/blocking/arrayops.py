"""Array-native block preparation (the ``array`` blocking backend).

The object ("loop") pipeline prepares blocks with per-entity token sets, a
dict-of-lists signature index, per-:class:`Block` purging/filtering loops and
a Python set of pair tuples for candidate extraction.  That interpreter
overhead dominates block preparation on the scalability workloads once
feature generation is vectorized.  This module is the batched counterpart,
mirroring the feature-backend pattern of :mod:`repro.weights.sparse`:

* profiles are batch-tokenized and the signatures dictionary-encoded into a
  token-id array (sorted-vocabulary ranks, so block order matches the loop
  path's ``sorted(keys)``);
* blocks are assembled directly as flat ``(block, entity)`` membership
  arrays — a block x entity CSR — via packed-key ``np.unique``, with no
  per-signature dict;
* Block Purging and Block Filtering are pure array passes over those
  memberships (per-block sizes/cardinalities with ``np.bincount``,
  per-entity retention ranks via ``np.lexsort``);
* distinct candidate pairs are extracted by chunked vectorized pair
  enumeration and packed-key ``np.unique`` dedup — bounded memory, no tuple
  sets;
* the entity x block CSR incidence structure of the final collection is
  built once and handed forward, so the sparse feature backend and the
  blocking-graph builder never re-derive it.

The loop path stays the reference oracle: the equivalence tests in
``tests/blocking/test_array_equivalence.py`` assert both backends produce
block-for-block and pair-for-pair identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..datamodel import (
    Block,
    BlockCollection,
    CandidateSet,
    EntityCollection,
    EntityIndexSpace,
)
from ..utils.timing import StageTimer
from ..weights.sparse import EntityBlockCSR, entity_block_csr_from_memberships
from .base import BlockingMethod
from .token_blocking import TokenBlocking

#: The available block-preparation backends.  ``"loop"`` is the readable
#: object-based reference pipeline; ``"array"`` is this module.
BLOCKING_BACKENDS: Tuple[str, ...] = ("loop", "array")

#: Upper bound on the number of packed pair keys buffered before a dedup
#: flush during candidate extraction (bounds peak memory).
DEFAULT_PAIR_CHUNK_KEYS: int = 1 << 22


def _dedup_sorted(ordered: np.ndarray) -> np.ndarray:
    """Drop adjacent duplicates from an already-sorted array."""
    if ordered.size == 0:
        return ordered
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an int64 array.

    Equivalent to ``np.unique`` but via an explicit sort + adjacent-diff
    mask; NumPy's hash-based unique is several times slower on the packed
    int64 keys this module runs on.
    """
    if values.size == 0:
        return values
    return _dedup_sorted(np.sort(values))


#: Public alias: the incremental subsystem's bulk loader deduplicates its
#: membership and candidate-pair keys with the same sort + adjacent-diff
#: kernel the array blocking backend uses.
sorted_unique = _sorted_unique


def _merge_sorted_unique(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Union of two sorted distinct arrays, as a sorted distinct array.

    A vectorized two-way merge (scatter by ``searchsorted`` rank) instead of
    re-sorting the concatenation, so repeated flushes into a growing
    accumulator stay linear in its size.
    """
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    merged = np.empty(a.size + b.size, dtype=np.int64)
    merged[np.arange(a.size, dtype=np.int64) + np.searchsorted(b, a, side="left")] = a
    merged[np.arange(b.size, dtype=np.int64) + np.searchsorted(a, b, side="right")] = b
    return _dedup_sorted(merged)


#: Public alias: the parallel engine folds per-worker key sets into a global
#: sorted union with the same two-way merge kernel.
merge_sorted_unique = _merge_sorted_unique


def resolve_blocking_backend(backend: str) -> str:
    """Validate a blocking-backend name, returning it unchanged.

    Raises
    ------
    ValueError
        With the list of known backends when the name is unknown.
    """
    if backend not in BLOCKING_BACKENDS:
        known = ", ".join(repr(name) for name in BLOCKING_BACKENDS)
        raise ValueError(f"unknown blocking backend {backend!r}; expected one of {known}")
    return backend


@dataclass
class MembershipMatrix:
    """A block collection as flat, distinct ``(block, entity)`` memberships.

    Memberships are sorted by (block id, node id); ``block_ptr`` is the CSR
    row-pointer over blocks, so block ``b`` spans
    ``nodes[block_ptr[b]:block_ptr[b+1]]`` (sorted node ids).  Block ids
    follow the lexicographic signature order for raw collections and the
    surviving loop-path order after purging/filtering, which keeps every
    materialized collection block-for-block identical to the object pipeline.
    """

    #: block signature per block id
    keys: List[str]
    #: CSR row pointers over blocks, shape ``(num_blocks + 1,)``
    block_ptr: np.ndarray
    #: block id per membership (sorted, aligned with ``nodes``)
    block_of: np.ndarray
    #: node id per membership
    nodes: np.ndarray
    index_space: EntityIndexSpace
    name: str

    @property
    def num_blocks(self) -> int:
        """Number of blocks."""
        return len(self.keys)

    def block_sizes(self) -> np.ndarray:
        """``|b|`` per block (number of entities, both sides)."""
        return np.diff(self.block_ptr)

    def first_side_sizes(self) -> np.ndarray:
        """Number of first-collection entities per block."""
        if not self.index_space.is_clean_clean:
            return self.block_sizes()
        mask = self.nodes < self.index_space.size_first
        return np.bincount(self.block_of[mask], minlength=self.num_blocks)

    def block_cardinalities(self) -> np.ndarray:
        """``||b||`` per block, matching :meth:`Block.cardinality` exactly.

        A block whose second side is empty is treated as unilateral (intra
        pairs over the first side), mirroring ``Block.is_bilateral`` — Block
        Filtering can strand clean-clean blocks in that state.
        """
        sizes = self.block_sizes()
        if not self.index_space.is_clean_clean:
            return sizes * (sizes - 1) // 2
        first = self.first_side_sizes()
        second = sizes - first
        return np.where(second > 0, first * second, first * (first - 1) // 2)

    def build_block_objects(self) -> List[Block]:
        """Build the equivalent list of object-based :class:`Block` items."""
        size_first = self.index_space.size_first
        bilateral = self.index_space.is_clean_clean
        blocks: List[Block] = []
        ptr = self.block_ptr
        for block_id, key in enumerate(self.keys):
            members = self.nodes[ptr[block_id] : ptr[block_id + 1]]
            if bilateral:
                split = int(np.searchsorted(members, size_first))
            else:
                split = members.size
            blocks.append(
                Block(
                    key=key,
                    entities_first=members[:split].tolist(),
                    entities_second=members[split:].tolist(),
                )
            )
        return blocks

    def materialize(self) -> BlockCollection:
        """Build the equivalent object-based :class:`BlockCollection`."""
        return BlockCollection(self.build_block_objects(), self.index_space, name=self.name)

    def csr(self) -> EntityBlockCSR:
        """The entity x block CSR incidence structure of this collection."""
        return entity_block_csr_from_memberships(
            self.nodes,
            self.block_of,
            self.index_space.total,
            self.num_blocks,
            assume_unique=True,
        )


class LazyBlockCollection(BlockCollection):
    """A :class:`BlockCollection` materialized from its matrix on demand.

    The array backend returns these for the raw/purged stages: production
    consumers only touch the final filtered collection, so the per-block
    object construction is deferred until something (tests, quality
    reports) actually reads the blocks.
    """

    def __init__(self, matrix: MembershipMatrix) -> None:
        self.name = matrix.name
        self.index_space = matrix.index_space
        self._matrix = matrix
        self._cache: Optional[List[Block]] = None

    @property
    def _blocks(self) -> List[Block]:
        if self._cache is None:
            self._cache = self._matrix.build_block_objects()
        return self._cache


def _matrix_from_sorted(
    keys: List[str],
    block_of: np.ndarray,
    nodes: np.ndarray,
    index_space: EntityIndexSpace,
    name: str,
) -> MembershipMatrix:
    """Assemble a matrix from memberships already sorted by (block, node)."""
    counts = np.bincount(block_of, minlength=len(keys))
    block_ptr = np.zeros(len(keys) + 1, dtype=np.int64)
    np.cumsum(counts, out=block_ptr[1:])
    return MembershipMatrix(
        keys=keys,
        block_ptr=block_ptr,
        block_of=block_of,
        nodes=nodes,
        index_space=index_space,
        name=name,
    )


def _dictionary_encode(
    method: BlockingMethod,
    first: EntityCollection,
    second: Optional[EntityCollection],
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Batch-tokenize both collections into a token-id membership stream.

    Returns ``(codes, nodes, vocabulary)`` with one entry per signature
    occurrence (duplicates included); ``codes`` index the lexicographically
    sorted ``vocabulary``, so sorting by code reproduces the loop path's
    ``sorted(keys)`` block order.
    """
    code_of: Dict[str, int] = {}
    codes: List[int] = []
    lengths: List[int] = []

    def consume(collection: EntityCollection) -> None:
        setdefault = code_of.setdefault
        append = codes.append
        for signatures in method.signature_lists(collection):
            lengths.append(len(signatures))
            for signature in signatures:
                append(setdefault(signature, len(code_of)))

    consume(first)
    if second is not None:
        consume(second)

    lengths_arr = np.asarray(lengths, dtype=np.int64)
    # entity positions in concatenated (first, second) order ARE node ids
    nodes = np.repeat(np.arange(lengths_arr.size, dtype=np.int64), lengths_arr)
    codes_arr = np.asarray(codes, dtype=np.int64)

    vocabulary = sorted(code_of)
    if codes_arr.size:
        rank_of = {token: rank for rank, token in enumerate(vocabulary)}
        # code_of iterates in insertion order == first-seen code order
        remap = np.fromiter(
            (rank_of[token] for token in code_of), dtype=np.int64, count=len(code_of)
        )
        codes_arr = remap[codes_arr]
    return codes_arr, nodes, vocabulary


def assemble_blocks(
    method: BlockingMethod,
    first: EntityCollection,
    second: Optional[EntityCollection] = None,
) -> MembershipMatrix:
    """Token Blocking (or any blocking method) as one array pass.

    Valid signatures — at least two distinct entities for Dirty ER, at least
    one entity per source for Clean-Clean ER — become blocks in sorted
    signature order, exactly like the loop path's
    ``build_unilateral_blocks``/``build_bilateral_blocks`` followed by
    ``without_empty_blocks``.
    """
    if second is None:
        index_space = EntityIndexSpace(len(first))
        name = f"{method.name}({first.name})"
    else:
        index_space = EntityIndexSpace(len(first), len(second))
        name = f"{method.name}({first.name},{second.name})"
    codes, nodes, vocabulary = _dictionary_encode(method, first, second)
    return assemble_from_codes(
        codes, nodes, vocabulary, index_space, name, bilateral=second is not None
    )


def assemble_from_codes(
    codes: np.ndarray,
    nodes: np.ndarray,
    vocabulary: List[str],
    index_space: EntityIndexSpace,
    name: str,
    bilateral: bool,
) -> MembershipMatrix:
    """Assemble blocks from a dictionary-encoded signature stream.

    ``codes`` index the lexicographically sorted ``vocabulary`` with one
    entry per signature occurrence (duplicates allowed), ``nodes`` are the
    matching global node ids.  This is the backend of
    :func:`assemble_blocks`; the parallel engine calls it directly after
    merging per-shard token streams, so sharded and single-pass tokenization
    produce bit-identical matrices.
    """
    total = max(index_space.total, 1)
    num_codes = len(vocabulary)
    if codes.size:
        # distinct (code, node) memberships, sorted by code then node
        packed = _sorted_unique(codes * np.int64(total) + nodes)
        codes = packed // total
        nodes = packed % total

    if not bilateral:
        keep_code = np.bincount(codes, minlength=num_codes) >= 2
    else:
        size_first = index_space.size_first
        first_counts = np.bincount(codes[nodes < size_first], minlength=num_codes)
        second_counts = np.bincount(codes[nodes >= size_first], minlength=num_codes)
        keep_code = (first_counts >= 1) & (second_counts >= 1)

    keep_membership = keep_code[codes] if codes.size else np.zeros(0, dtype=bool)
    new_block_id = np.cumsum(keep_code) - 1
    block_of = new_block_id[codes[keep_membership]]
    kept_nodes = nodes[keep_membership]
    keys = [vocabulary[code] for code in np.flatnonzero(keep_code)]
    return _matrix_from_sorted(keys, block_of, kept_nodes, index_space, name)


def _select_blocks(
    matrix: MembershipMatrix, keep_block: np.ndarray, name: str
) -> MembershipMatrix:
    """Drop blocks by mask, renumbering ids but preserving relative order."""
    new_block_id = np.cumsum(keep_block) - 1
    keep_membership = keep_block[matrix.block_of]
    block_of = new_block_id[matrix.block_of[keep_membership]]
    nodes = matrix.nodes[keep_membership]
    keys = [key for key, keep in zip(matrix.keys, keep_block) if keep]
    return _matrix_from_sorted(keys, block_of, nodes, matrix.index_space, name)


def purge_matrix(
    matrix: MembershipMatrix, max_entity_fraction: float = 0.5
) -> MembershipMatrix:
    """Block Purging as an array pass (see :func:`purge_oversized_blocks`)."""
    if not 0.0 < max_entity_fraction <= 1.0:
        raise ValueError("max_entity_fraction must be in (0, 1]")
    limit = max_entity_fraction * matrix.index_space.total
    keep_block = matrix.block_sizes() <= limit
    return _select_blocks(matrix, keep_block, f"{matrix.name}|purged")


def filter_matrix(matrix: MembershipMatrix, ratio: float = 0.8) -> MembershipMatrix:
    """Block Filtering as an array pass (see :func:`filter_blocks`).

    Every entity keeps its ``ceil(ratio * k)`` smallest blocks (ties broken
    by block id); blocks left without a comparison are dropped.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must be in (0, 1]")
    if matrix.num_blocks == 0:
        return matrix

    cardinalities = matrix.block_cardinalities()
    total = max(matrix.index_space.total, 1)
    # memberships ordered per entity by (cardinality, block id)
    order = np.lexsort((matrix.block_of, cardinalities[matrix.block_of], matrix.nodes))
    sorted_nodes = matrix.nodes[order]
    counts = np.bincount(matrix.nodes, minlength=matrix.index_space.total)
    starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    rank = np.arange(sorted_nodes.size, dtype=np.int64) - starts[sorted_nodes]
    keep_counts = np.maximum(1, np.ceil(ratio * counts)).astype(np.int64)
    keep = rank < keep_counts[sorted_nodes]

    # retained memberships back in (block, node) order
    packed = np.sort(matrix.block_of[order][keep] * np.int64(total) + sorted_nodes[keep])
    interim = _matrix_from_sorted(
        list(matrix.keys),
        packed // total,
        packed % total,
        matrix.index_space,
        f"{matrix.name}|filtered",
    )
    return _select_blocks(interim, interim.block_cardinalities() > 0, interim.name)


def pair_expansion_plan(
    matrix: MembershipMatrix,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-membership pair-expansion plan: ``(repeats, right_begin, offsets)``.

    Every membership is assigned the pairs it is the *left* endpoint of —
    the cross product with the block's second side for bilateral blocks,
    the strictly-later members of the (sorted) block for intra blocks —
    giving a per-membership repeat count, the start of its contiguous
    right-hand slice in the flat ``nodes`` array, and the exclusive prefix
    sum of the repeats (``offsets``, length ``n_memberships + 1``).  Both the
    serial extraction below and the sharded extraction of
    :mod:`repro.parallel.blocking` expand from this plan, which is why any
    contiguous partitioning of the memberships yields the same pair set.
    """
    nodes = matrix.nodes
    n_memberships = nodes.size
    sizes = matrix.block_sizes()
    first = matrix.first_side_sizes()
    second = sizes - first
    block_starts = np.repeat(matrix.block_ptr[:-1], sizes)
    positions = np.arange(n_memberships, dtype=np.int64)
    intra_rank = positions - block_starts

    block_of = matrix.block_of
    is_cross = second[block_of] > 0
    # cross blocks: first-side members pair with the whole second side,
    # which occupies nodes[block_start + first : block_end] (node ids are
    # sorted, first-source ids are smaller); second-side members emit
    # nothing.  intra blocks (Dirty ER, or clean-clean blocks whose second
    # side was emptied by filtering — Block.is_bilateral flips) pair each
    # member with the strictly-later members of its block.
    repeats = np.where(
        is_cross,
        np.where(intra_rank < first[block_of], second[block_of], 0),
        sizes[block_of] - 1 - intra_rank,
    )
    right_begin = np.where(is_cross, block_starts + first[block_of], positions + 1)

    pair_offsets = np.zeros(n_memberships + 1, dtype=np.int64)
    np.cumsum(repeats, out=pair_offsets[1:])
    return repeats, right_begin, pair_offsets


def extract_candidate_keys(
    matrix: MembershipMatrix, chunk_keys: int = DEFAULT_PAIR_CHUNK_KEYS
) -> np.ndarray:
    """The distinct candidate pairs as sorted packed ``i * total + j`` keys.

    The expansion follows :func:`pair_expansion_plan` — plain ``np.repeat``
    + offset arithmetic over membership chunks of at most roughly
    ``chunk_keys`` pairs, flushed through a sorted-unique pass into a
    running union: no per-block Python, and peak memory bounded by the
    chunk size plus the *distinct* pair set — never by the raw
    (redundancy-bearing) comparison count.
    """
    total = np.int64(max(matrix.index_space.total, 1))
    nodes = matrix.nodes
    n_memberships = nodes.size
    if n_memberships == 0 or matrix.num_blocks == 0:
        return np.empty(0, dtype=np.int64)

    repeats, right_begin, pair_offsets = pair_expansion_plan(matrix)

    seen: np.ndarray = np.empty(0, dtype=np.int64)
    start = 0
    while start < n_memberships:
        stop = int(
            np.searchsorted(pair_offsets, pair_offsets[start] + chunk_keys, side="right")
        ) - 1
        stop = min(max(stop, start + 1), n_memberships)
        chunk_repeats = repeats[start:stop]
        chunk_total = int(pair_offsets[stop] - pair_offsets[start])
        if chunk_total == 0:
            start = stop
            continue
        left = np.repeat(nodes[start:stop], chunk_repeats)
        within = np.arange(chunk_total, dtype=np.int64) - np.repeat(
            pair_offsets[start:stop] - pair_offsets[start], chunk_repeats
        )
        right = nodes[np.repeat(right_begin[start:stop], chunk_repeats) + within]
        seen = _merge_sorted_unique(seen, _sorted_unique(left * total + right))
        start = stop
    return seen


@dataclass
class ArrayPreparation:
    """Raw output of the array block-preparation engine."""

    raw: BlockCollection
    purged: BlockCollection
    filtered: BlockCollection
    candidates: CandidateSet
    #: entity x block CSR of ``filtered``, handed forward to feature
    #: generation and the blocking-graph builder
    csr: EntityBlockCSR


def prepare_blocks_array(
    first: EntityCollection,
    second: Optional[EntityCollection] = None,
    blocking: Optional[BlockingMethod] = None,
    purging_fraction: float = 0.5,
    filtering_ratio: float = 0.8,
    apply_purging: bool = True,
    apply_filtering: bool = True,
    timer: Optional[StageTimer] = None,
) -> ArrayPreparation:
    """Run the paper's block-preparation pipeline array-natively.

    Produces bit-identical blocks and candidate pairs to the loop path (see
    the module docstring), plus the final collection's CSR incidence
    structure.  Per-stage wall-clock is recorded on ``timer`` when given.
    """
    timer = timer if timer is not None else StageTimer()
    method = blocking if blocking is not None else TokenBlocking()

    with timer.stage("blocking"):
        raw_matrix = assemble_blocks(method, first, second)
        raw = LazyBlockCollection(raw_matrix)

    with timer.stage("purging"):
        if apply_purging:
            purged_matrix = purge_matrix(raw_matrix, purging_fraction)
            purged = LazyBlockCollection(purged_matrix)
        else:
            purged_matrix, purged = raw_matrix, raw

    with timer.stage("filtering"):
        if apply_filtering:
            filtered_matrix = filter_matrix(purged_matrix, filtering_ratio)
            filtered = (
                purged if filtered_matrix is purged_matrix else filtered_matrix.materialize()
            )
        else:
            filtered_matrix, filtered = purged_matrix, purged

    with timer.stage("candidate-extraction"):
        keys = extract_candidate_keys(filtered_matrix)
        candidates = CandidateSet.from_packed_keys(keys, filtered_matrix.index_space)
        csr = filtered_matrix.csr()

    return ArrayPreparation(
        raw=raw, purged=purged, filtered=filtered, candidates=candidates, csr=csr
    )
