"""Standard (attribute-based) Blocking.

The classic schema-*based* baseline: entities are grouped by the exact value
(or the tokens) of one or more chosen attributes.  It is not used by the
paper's pipeline — which is deliberately schema-agnostic — but is provided as
the natural comparison point and for applications (such as the motivating
customer-database deduplication) where a trustworthy blocking key exists.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..datamodel import EntityProfile
from ..utils.text import distinct_tokens, normalize
from .base import BlockingMethod


class StandardBlocking(BlockingMethod):
    """Group entities by the values of selected attributes.

    Parameters
    ----------
    key_attributes:
        The attribute names used as blocking keys.
    tokenize:
        When ``True`` every token of the key attributes becomes a signature;
        when ``False`` the whole normalised value is a single signature.
    """

    name = "standard-blocking"

    def __init__(self, key_attributes: Sequence[str], tokenize: bool = False) -> None:
        keys = list(key_attributes)
        if not keys:
            raise ValueError("at least one key attribute is required")
        self.key_attributes = keys
        self.tokenize = tokenize

    def signatures_of(self, profile: EntityProfile) -> Set[str]:
        signatures: Set[str] = set()
        for attribute in self.key_attributes:
            value = profile.attribute(attribute)
            if not value:
                continue
            if self.tokenize:
                signatures.update(
                    f"{attribute}:{token}" for token in distinct_tokens(value)
                )
            else:
                normalised = normalize(value).strip()
                if normalised:
                    signatures.add(f"{attribute}:{normalised}")
        return signatures
