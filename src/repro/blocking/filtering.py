"""Block Filtering.

Block-cleaning step (Papadakis et al., EDBT 2016) applied by the paper after
Block Purging: every entity is removed from the largest 20 % of the blocks it
appears in (equivalently, each entity keeps only its ``ratio`` = 0.8 smallest
blocks).  Small blocks correspond to infrequent, distinctive signatures, so
trimming the largest ones removes mostly superfluous comparisons.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from ..datamodel import Block, BlockCollection


def filter_blocks(blocks: BlockCollection, ratio: float = 0.8) -> BlockCollection:
    """Keep, for every entity, only its ``ratio`` smallest blocks.

    Parameters
    ----------
    blocks:
        The (typically purged) input block collection.
    ratio:
        Fraction of each entity's blocks to retain, ordered by increasing
        block cardinality.  The paper uses 0.8 (drop the largest 20 %).

    Notes
    -----
    An entity always keeps at least one block (``ceil`` rounding), mirroring
    the reference JedAI implementation, so filtering never silently removes
    an entity from the block collection.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must be in (0, 1]")
    if len(blocks) == 0:
        return blocks

    cardinalities = [block.cardinality() for block in blocks]

    # For every entity, the ids of its blocks ordered by increasing cardinality
    # (ties broken by block id for determinism).
    entity_blocks: Dict[int, List[int]] = blocks.entity_block_index()
    retained_memberships: Set[Tuple[int, int]] = set()
    for node, block_ids in entity_blocks.items():
        ordered = sorted(block_ids, key=lambda block_id: (cardinalities[block_id], block_id))
        keep_count = max(1, math.ceil(ratio * len(ordered)))
        for block_id in ordered[:keep_count]:
            retained_memberships.add((node, block_id))

    filtered: List[Block] = []
    for block_id, block in enumerate(blocks):
        first = [node for node in block.entities_first if (node, block_id) in retained_memberships]
        second = [node for node in block.entities_second if (node, block_id) in retained_memberships]
        candidate = Block(key=block.key, entities_first=first, entities_second=second)
        if candidate.cardinality() > 0:
            filtered.append(candidate)
    return BlockCollection(filtered, blocks.index_space, name=f"{blocks.name}|filtered")
