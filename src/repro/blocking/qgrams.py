"""Q-Grams Blocking.

A redundancy-positive blocking method that creates one block per distinct
character q-gram of the attribute-value tokens.  More resilient to typos than
Token Blocking at the cost of larger, noisier blocks.
"""

from __future__ import annotations

from typing import Set

from ..datamodel import EntityProfile
from ..utils.text import distinct_qgrams
from .base import BlockingMethod


class QGramsBlocking(BlockingMethod):
    """Create one block per distinct character q-gram.

    Parameters
    ----------
    q:
        The q-gram length (default 3, the standard trigram setting).
    """

    name = "qgrams-blocking"

    def __init__(self, q: int = 3) -> None:
        if q < 1:
            raise ValueError("q must be at least 1")
        self.q = q

    def signatures_of(self, profile: EntityProfile) -> Set[str]:
        return distinct_qgrams(profile.text(), q=self.q)
