"""Token Blocking.

The paper's evaluation (Section 5.1) extracts the initial block collection
with Token Blocking: a block is created for every distinct token appearing in
the attribute values of the profiles, the only parameter-free
redundancy-positive blocking method.
"""

from __future__ import annotations

from typing import List, Set

from ..datamodel import EntityCollection, EntityProfile
from ..utils.text import distinct_tokens, tokens_of_texts
from .base import BlockingMethod


class TokenBlocking(BlockingMethod):
    """Create one block per distinct attribute-value token.

    Parameters
    ----------
    min_token_length:
        Tokens shorter than this are ignored (defaults to 1, i.e. keep all).
    remove_stop_words:
        Drop very frequent English stop-words.  The paper relies on Block
        Purging for this effect, so the default is ``False``.
    """

    name = "token-blocking"

    def __init__(self, min_token_length: int = 1, remove_stop_words: bool = False) -> None:
        if min_token_length < 1:
            raise ValueError("min_token_length must be at least 1")
        self.min_token_length = min_token_length
        self.remove_stop_words = remove_stop_words

    def signatures_of(self, profile: EntityProfile) -> Set[str]:
        return distinct_tokens(
            profile.text(),
            min_length=self.min_token_length,
            remove_stop_words=self.remove_stop_words,
        )

    def signature_lists(self, collection: EntityCollection) -> List[List[str]]:
        return tokens_of_texts(
            (profile.text() for profile in collection),
            min_length=self.min_token_length,
            remove_stop_words=self.remove_stop_words,
        )
