"""Schema-agnostic blocking methods and block-cleaning steps."""

from .arrayops import (
    BLOCKING_BACKENDS,
    MembershipMatrix,
    assemble_blocks,
    prepare_blocks_array,
    resolve_blocking_backend,
)
from .base import BlockingMethod
from .candidate_extraction import PreparedBlocks, extract_candidates, prepare_blocks
from .filtering import filter_blocks
from .purging import purge_by_comparison_cardinality, purge_oversized_blocks
from .qgrams import QGramsBlocking
from .standard_blocking import StandardBlocking
from .suffix_arrays import SuffixArraysBlocking
from .token_blocking import TokenBlocking

__all__ = [
    "BLOCKING_BACKENDS",
    "BlockingMethod",
    "MembershipMatrix",
    "PreparedBlocks",
    "QGramsBlocking",
    "StandardBlocking",
    "SuffixArraysBlocking",
    "TokenBlocking",
    "assemble_blocks",
    "extract_candidates",
    "filter_blocks",
    "prepare_blocks",
    "prepare_blocks_array",
    "purge_by_comparison_cardinality",
    "purge_oversized_blocks",
    "resolve_blocking_backend",
]
