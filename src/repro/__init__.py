"""Generalized Supervised Meta-blocking — a full Python reproduction.

This package reimplements the system of *Generalized Supervised
Meta-blocking* (Gagliardelli, Papadakis, Simonini, Bergamaschi, Palpanas —
PVLDB 2022) from the ground up:

* a schema-agnostic Entity Resolution data model and blocking substrates
  (:mod:`repro.datamodel`, :mod:`repro.blocking`);
* the block co-occurrence weighting schemes used as features
  (:mod:`repro.weights`);
* from-scratch probabilistic classifiers (:mod:`repro.ml`);
* the supervised pruning algorithms and the end-to-end pipeline — the paper's
  contribution (:mod:`repro.core`);
* unsupervised meta-blocking baselines (:mod:`repro.metablocking`);
* an incremental streaming execution mode — online entity insertion against
  a frozen batch-trained classifier (:mod:`repro.incremental`);
* dataset substrates mirroring the paper's benchmarks (:mod:`repro.datasets`);
* evaluation and experiment harnesses regenerating every table and figure
  (:mod:`repro.evaluation`, :mod:`repro.experiments`).

Quickstart
----------
>>> from repro import (
...     load_benchmark, prepare_blocks, GeneralizedSupervisedMetaBlocking, evaluate_result,
... )
>>> dataset = load_benchmark("DblpAcm", seed=7)
>>> prepared = prepare_blocks(dataset.first, dataset.second)
>>> pipeline = GeneralizedSupervisedMetaBlocking(pruning="BLAST", training_size=50)
>>> result = pipeline.run(prepared.blocks, prepared.candidates, dataset.ground_truth)
>>> report = evaluate_result(result, dataset.ground_truth)
>>> 0.0 <= report.f1 <= 1.0
True
"""

from .blocking import (
    QGramsBlocking,
    StandardBlocking,
    SuffixArraysBlocking,
    TokenBlocking,
    extract_candidates,
    filter_blocks,
    prepare_blocks,
    purge_oversized_blocks,
)
from .core import (
    BinaryClassifierPruning,
    FeatureVectorGenerator,
    GeneralizedSupervisedMetaBlocking,
    MetaBlockingResult,
    SupervisedBLAST,
    SupervisedCEP,
    SupervisedCNP,
    SupervisedRCNP,
    SupervisedRWNP,
    SupervisedWEP,
    SupervisedWNP,
    get_pruning_algorithm,
)
from .datamodel import (
    Block,
    BlockCollection,
    CandidatePair,
    CandidateSet,
    EntityCollection,
    EntityIndexSpace,
    EntityProfile,
    GroundTruth,
)
from .datasets import (
    load_all_benchmarks,
    load_all_dirty_datasets,
    load_benchmark,
    load_dirty_dataset,
)
from .evaluation import (
    EffectivenessReport,
    evaluate_blocks,
    evaluate_candidates,
    evaluate_result,
    evaluate_retained_mask,
)
from .incremental import (
    DeltaFeatureGenerator,
    FrozenModel,
    MatchingSession,
    MutableBlockIndex,
    ShardedMutableBlockIndex,
)
from .ml import GaussianNB, LinearSVC, LogisticRegression
from .parallel import ParallelExecutor, ShardPlanner, WorkerCrashError
from .weights import (
    BLAST_FEATURE_SET,
    BlockStatistics,
    ORIGINAL_FEATURE_SET,
    PAPER_FEATURES,
    RCNP_FEATURE_SET,
)

__version__ = "1.7.0"

__all__ = [
    "BLAST_FEATURE_SET",
    "BinaryClassifierPruning",
    "Block",
    "BlockCollection",
    "BlockStatistics",
    "CandidatePair",
    "CandidateSet",
    "DeltaFeatureGenerator",
    "EffectivenessReport",
    "EntityCollection",
    "EntityIndexSpace",
    "EntityProfile",
    "FeatureVectorGenerator",
    "FrozenModel",
    "GaussianNB",
    "GeneralizedSupervisedMetaBlocking",
    "GroundTruth",
    "LinearSVC",
    "LogisticRegression",
    "MatchingSession",
    "MetaBlockingResult",
    "MutableBlockIndex",
    "ORIGINAL_FEATURE_SET",
    "ParallelExecutor",
    "PAPER_FEATURES",
    "QGramsBlocking",
    "RCNP_FEATURE_SET",
    "ShardPlanner",
    "ShardedMutableBlockIndex",
    "StandardBlocking",
    "SuffixArraysBlocking",
    "SupervisedBLAST",
    "SupervisedCEP",
    "SupervisedCNP",
    "SupervisedRCNP",
    "SupervisedRWNP",
    "SupervisedWEP",
    "SupervisedWNP",
    "TokenBlocking",
    "WorkerCrashError",
    "evaluate_blocks",
    "evaluate_candidates",
    "evaluate_result",
    "evaluate_retained_mask",
    "extract_candidates",
    "filter_blocks",
    "get_pruning_algorithm",
    "load_all_benchmarks",
    "load_all_dirty_datasets",
    "load_benchmark",
    "load_dirty_dataset",
    "prepare_blocks",
    "purge_oversized_blocks",
    "__version__",
]
