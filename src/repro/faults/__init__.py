"""``repro.faults``: seeded, deterministic fault injection.

The injection runtime is a set of *hooks* threaded through the durability
and serving layers — :meth:`WriteAheadLog.append_record`, the shard
replicas' record apply loop, the worker heartbeat handler — that normally
cost one ``None`` check.  When a :class:`FaultPlan` is active (installed
in-process with :func:`install`, or inherited by a child process through
the ``REPRO_FAULTS`` environment variable), each hook consults the plan's
schedule against a per-process ordinal counter and fires the configured
fault at exactly the configured point.

Faults that are scoped to one shard worker (``kill_worker``,
``drop_heartbeats``) only fire in a process that declared that scope with
:func:`set_scope` — the daemon process itself never self-destructs on a
worker's schedule.

Determinism: every trigger is counter-based (the Nth append, the Nth
applied record), never time- or randomness-based, so a plan replays the
identical failure sequence on every run.  The only randomness is in
*generating* plans (:meth:`FaultPlan.kill_loop`), which is seeded.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from .plan import FAULTS_ENV, FaultPlan, plan_from_env


def _emit_fault(kind: str, **fields) -> None:
    """Record the injection in the structured event log (best-effort).

    Emitted — and flushed, :func:`repro.obs.events.emit` flushes per
    line — *before* the fault fires, so even a SIGKILL fault leaves its
    own event on disk for the causal chain.
    """
    try:
        from ..obs import events

        events.emit("fault_injected", kind=kind, shard=_scope_shard, **fields)
    except Exception:  # noqa: BLE001 - observability must not alter the fault
        pass

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "InjectedFaultError",
    "active_plan",
    "clear",
    "install",
    "on_follower_read",
    "on_heartbeat",
    "on_record_applied",
    "on_wal_append",
    "on_wal_fsync",
    "plan_from_env",
    "set_scope",
]


class InjectedFaultError(OSError):
    """An injected fault fired (an ``OSError``, like the failure it mimics)."""


_lock = threading.Lock()
_plan: Optional[FaultPlan] = None
#: whether ``_plan`` is authoritative (set) or the env still needs parsing
_resolved = False
#: the shard this process serves, when it is a shard worker
_scope_shard: Optional[int] = None
_counters: Dict[str, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` in this process (``None`` deactivates).

    Resets the ordinal counters, so an installed plan always counts from
    the first append/record/heartbeat.  Child processes do not see an
    in-process installation unless they fork afterwards — export the plan
    through ``os.environ[FAULTS_ENV] = plan.to_json()`` to reach workers
    started with any start method.
    """
    global _plan, _resolved
    with _lock:
        _plan = plan
        _resolved = True
        _counters.clear()


def clear() -> None:
    """Deactivate injection and forget any ``REPRO_FAULTS`` already parsed."""
    global _plan, _resolved, _scope_shard
    with _lock:
        _plan = None
        _resolved = False
        _scope_shard = None
        _counters.clear()


def set_scope(shard: Optional[int]) -> None:
    """Declare this process to be the worker of ``shard``.

    Shard-scoped faults (``kill_worker``, ``drop_heartbeats``) fire only in
    a process whose scope matches their shard.
    """
    global _scope_shard
    _scope_shard = shard


def active_plan() -> Optional[FaultPlan]:
    """The plan in force: the installed one, else the ``REPRO_FAULTS`` one.

    The environment is parsed once per process; :func:`clear` re-arms the
    parse (tests flip the variable between daemons).
    """
    global _plan, _resolved
    if not _resolved:
        with _lock:
            if not _resolved:
                _plan = plan_from_env()
                _resolved = True
    return _plan


def _count(name: str) -> int:
    with _lock:
        value = _counters.get(name, 0) + 1
        _counters[name] = value
    return value


def _maybe_slow(plan: FaultPlan) -> None:
    if plan.slow_io_every <= 0 or plan.slow_io_ms <= 0.0:
        return
    if _count("io") % plan.slow_io_every == 0:
        time.sleep(plan.slow_io_ms / 1e3)


# -- hook points -------------------------------------------------------------------

def on_wal_append() -> Optional[str]:
    """Called before each WAL append; returns ``"torn"``/``"corrupt"``/``None``.

    Also the append-side slow-I/O site.
    """
    plan = active_plan()
    if plan is None:
        return None
    _maybe_slow(plan)
    ordinal = _count("append")
    if ordinal in plan.torn_append:
        _emit_fault("torn_append", ordinal=ordinal)
        return "torn"
    if ordinal in plan.corrupt_append:
        _emit_fault("corrupt_append", ordinal=ordinal)
        return "corrupt"
    return None


def on_wal_fsync() -> None:
    """Called before each WAL fsync; raises on a scheduled fsync fault."""
    plan = active_plan()
    if plan is None:
        return
    ordinal = _count("fsync")
    if ordinal in plan.fsync_error:
        _emit_fault("fsync_error", ordinal=ordinal)
        raise InjectedFaultError("injected fsync failure")


def on_follower_read() -> None:
    """The replica-side slow-I/O site (each ``advance_to`` pass)."""
    plan = active_plan()
    if plan is not None:
        _maybe_slow(plan)


def on_record_applied() -> None:
    """Called after a shard replica applies one WAL record.

    SIGKILLs the process when this scope's kill ordinal is reached — a
    crash mid-replay, with whatever state the replica had half-built.
    """
    plan = active_plan()
    if plan is None or _scope_shard is None:
        return
    nth = plan.kill_worker.get(_scope_shard)
    if nth is not None and _count("applied") == nth:
        import signal

        # flushed before the kill: the event log must witness its own cause
        _emit_fault("kill_worker", ordinal=nth)
        os.kill(os.getpid(), signal.SIGKILL)


def on_heartbeat() -> bool:
    """Whether this scope's worker should swallow the current ping."""
    plan = active_plan()
    if plan is None or _scope_shard is None:
        return False
    budget = plan.drop_heartbeats.get(_scope_shard, 0)
    dropped = budget > 0 and _count("heartbeat") <= budget
    if dropped:
        _emit_fault("drop_heartbeat")
    return dropped
