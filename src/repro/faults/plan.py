"""Deterministic fault-injection plans.

A :class:`FaultPlan` is a *schedule*: every fault fires at a fixed ordinal
of a per-process counter (the Nth WAL append, the Nth fsync, the Nth record
a shard replica applies, the Nth heartbeat a shard worker receives), so a
given plan produces the same failure sequence on every run — the property
the chaos suite and the recovery benchmarks lean on.  Plans serialize to
canonical JSON and travel to worker processes through the ``REPRO_FAULTS``
environment variable (see :mod:`repro.faults`).

The supported faults mirror the failure modes the serving stack must
survive:

* ``kill_worker`` — SIGKILL a shard worker the moment it applies its Nth
  WAL record (crash mid-replay);
* ``torn_append`` / ``corrupt_append`` — the Nth WAL append writes a torn
  or bit-flipped tail and fails (crash mid-commit / bit rot);
* ``fsync_error`` — the Nth WAL fsync raises ``OSError`` (full disk,
  pulled volume);
* ``slow_io_ms`` + ``slow_io_every`` — every Nth hooked I/O operation
  sleeps (degraded storage);
* ``drop_heartbeats`` — a shard worker swallows its first N pings
  (wedged-but-alive worker).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: environment variable carrying a JSON-encoded plan to child processes
FAULTS_ENV = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault schedule (all ordinals are 1-based)."""

    #: seed the plan was generated from (recorded for reproduction)
    seed: int = 0
    #: shard -> kill the worker while applying its Nth WAL record
    kill_worker: Dict[int, int] = field(default_factory=dict)
    #: shard -> number of leading heartbeats the worker drops
    drop_heartbeats: Dict[int, int] = field(default_factory=dict)
    #: WAL append ordinals that write a torn tail and fail
    torn_append: Tuple[int, ...] = ()
    #: WAL append ordinals that write a bit-flipped tail and fail
    corrupt_append: Tuple[int, ...] = ()
    #: WAL fsync ordinals that raise an injected ``OSError``
    fsync_error: Tuple[int, ...] = ()
    #: sleep duration per slowed I/O operation
    slow_io_ms: float = 0.0
    #: slow every Nth hooked I/O operation (0 disables slow I/O)
    slow_io_every: int = 0

    def to_json(self) -> str:
        """The plan as canonical JSON (the ``REPRO_FAULTS`` payload)."""
        return json.dumps(
            {
                "seed": int(self.seed),
                "kill_worker": {
                    str(shard): int(nth) for shard, nth in sorted(self.kill_worker.items())
                },
                "drop_heartbeats": {
                    str(shard): int(count)
                    for shard, count in sorted(self.drop_heartbeats.items())
                },
                "torn_append": sorted(int(n) for n in self.torn_append),
                "corrupt_append": sorted(int(n) for n in self.corrupt_append),
                "fsync_error": sorted(int(n) for n in self.fsync_error),
                "slow_io_ms": float(self.slow_io_ms),
                "slow_io_every": int(self.slow_io_every),
            },
            separators=(",", ":"),
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        """Decode :meth:`to_json` output (unknown keys are rejected)."""
        data = json.loads(payload)
        if not isinstance(data, dict):
            raise ValueError("a fault plan must be a JSON object")
        known = {
            "seed",
            "kill_worker",
            "drop_heartbeats",
            "torn_append",
            "corrupt_append",
            "fsync_error",
            "slow_io_ms",
            "slow_io_every",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        return cls(
            seed=int(data.get("seed", 0)),
            kill_worker={
                int(shard): int(nth)
                for shard, nth in (data.get("kill_worker") or {}).items()
            },
            drop_heartbeats={
                int(shard): int(count)
                for shard, count in (data.get("drop_heartbeats") or {}).items()
            },
            torn_append=tuple(int(n) for n in data.get("torn_append") or ()),
            corrupt_append=tuple(int(n) for n in data.get("corrupt_append") or ()),
            fsync_error=tuple(int(n) for n in data.get("fsync_error") or ()),
            slow_io_ms=float(data.get("slow_io_ms", 0.0)),
            slow_io_every=int(data.get("slow_io_every", 0)),
        )

    @classmethod
    def kill_loop(
        cls, seed: int, num_shards: int, low: int = 2, high: int = 8
    ) -> "FaultPlan":
        """A seeded schedule killing every shard worker once mid-replay.

        Each shard's worker dies while applying a record drawn uniformly
        from ``[low, high]`` — the chaos suite's and the fault-recovery
        benchmark's canonical kill-loop.
        """
        import random

        rng = random.Random(seed)
        return cls(
            seed=int(seed),
            kill_worker={
                shard: rng.randint(low, high) for shard in range(num_shards)
            },
        )

    def describe(self) -> str:
        """One human-readable line (logged so failures are reproducible)."""
        parts = [f"seed={self.seed}"]
        if self.kill_worker:
            parts.append(f"kill_worker={dict(sorted(self.kill_worker.items()))}")
        if self.drop_heartbeats:
            parts.append(
                f"drop_heartbeats={dict(sorted(self.drop_heartbeats.items()))}"
            )
        for name in ("torn_append", "corrupt_append", "fsync_error"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={sorted(value)}")
        if self.slow_io_every and self.slow_io_ms:
            parts.append(
                f"slow_io={self.slow_io_ms}ms/every {self.slow_io_every}"
            )
        return "FaultPlan(" + ", ".join(parts) + ")"


def plan_from_env(environ: Optional[Dict[str, Any]] = None) -> Optional[FaultPlan]:
    """The plan carried by ``REPRO_FAULTS``, or ``None`` when unset/empty."""
    import os

    payload = (environ if environ is not None else os.environ).get(FAULTS_ENV)
    if not payload:
        return None
    return FaultPlan.from_json(payload)
