"""Unsupervised Meta-blocking baselines: blocking graph and classic pruning."""

from .graph import BlockingGraph, build_blocking_graph
from .unsupervised import (
    UnsupervisedBLAST,
    UnsupervisedCEP,
    UnsupervisedCNP,
    UnsupervisedPruningAlgorithm,
    UnsupervisedRCNP,
    UnsupervisedRWNP,
    UnsupervisedWEP,
    UnsupervisedWNP,
)

__all__ = [
    "BlockingGraph",
    "UnsupervisedBLAST",
    "UnsupervisedCEP",
    "UnsupervisedCNP",
    "UnsupervisedPruningAlgorithm",
    "UnsupervisedRCNP",
    "UnsupervisedRWNP",
    "UnsupervisedWEP",
    "UnsupervisedWNP",
    "build_blocking_graph",
]
