"""The blocking graph of unsupervised Meta-blocking.

Nodes are entities, edges are the distinct candidate pairs, and the edge
weight is produced by a single weighting scheme (paper Example 2).  The graph
is stored edge-list style on top of :class:`CandidateSet`, which keeps it
consistent with the supervised pipeline and cheap to prune.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datamodel import BlockCollection, CandidateSet
from ..weights import BlockStatistics, WeightingScheme, get_scheme
from ..weights.sparse import EntityBlockCSR


@dataclass
class BlockingGraph:
    """An edge-weighted view of the candidate pairs of a block collection."""

    #: the distinct candidate pairs (the graph's edges)
    candidates: CandidateSet
    #: one weight per edge, aligned with ``candidates``
    weights: np.ndarray
    #: the weighting scheme that produced the weights
    scheme_name: str

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.weights.shape != (len(self.candidates),):
            raise ValueError("weights must align with the candidate pairs")

    @property
    def edge_count(self) -> int:
        """Number of edges (candidate pairs)."""
        return len(self.candidates)

    def node_degrees(self) -> np.ndarray:
        """Degree of every node (number of adjacent edges)."""
        return self.candidates.node_degrees()

    def adjacency(self) -> Dict[int, List[int]]:
        """Map every node to the positions of its adjacent edges."""
        adjacency: Dict[int, List[int]] = {}
        for position, (i, j) in enumerate(
            zip(self.candidates.left.tolist(), self.candidates.right.tolist())
        ):
            adjacency.setdefault(i, []).append(position)
            adjacency.setdefault(j, []).append(position)
        return adjacency


def build_blocking_graph(
    blocks: BlockCollection,
    scheme: Union[str, WeightingScheme] = "CBS",
    candidates: Optional[CandidateSet] = None,
    stats: Optional[BlockStatistics] = None,
    backend: str = "sparse",
    csr: Optional["EntityBlockCSR"] = None,
) -> BlockingGraph:
    """Build the blocking graph of ``blocks`` weighted by ``scheme``.

    Parameters
    ----------
    blocks:
        The redundancy-positive block collection.
    scheme:
        Weighting scheme name or instance (default CBS, the number of common
        blocks, as in the paper's running example).
    candidates, stats:
        Optional precomputed candidate pairs / statistics.
    backend:
        Edge-weight backend.  The default ``"sparse"`` reuses the CSR
        incidence structure of :mod:`repro.weights.sparse`, computing all
        edge weights in one batched intersection pass; ``"loop"`` is the
        per-pair reference builder the equivalence tests compare against.
    csr:
        Optional prebuilt entity x block CSR of ``blocks`` (e.g.
        :attr:`repro.blocking.PreparedBlocks.csr`), seeded into the
        statistics so the sparse backend skips the incidence rebuild.
        Ignored when ``stats`` is given.
    """
    scheme_obj = get_scheme(scheme) if isinstance(scheme, str) else scheme
    pair_set = candidates if candidates is not None else CandidateSet.from_blocks(blocks)
    statistics = stats if stats is not None else BlockStatistics(blocks, csr=csr)
    values = scheme_obj.compute_with_backend(pair_set, statistics, backend=backend)
    if values.shape[1] != 1:
        raise ValueError(
            f"scheme {scheme_obj.name} produces {values.shape[1]} columns; "
            "unsupervised meta-blocking needs a single weight per edge"
        )
    return BlockingGraph(
        candidates=pair_set, weights=values[:, 0], scheme_name=scheme_obj.name
    )
