"""Unsupervised Meta-blocking pruning algorithms.

The classic algorithms of Papadakis et al. (TKDE 2014 / EDBT 2016) operate on
the blocking graph with a single weight per edge — no classifier, no validity
threshold.  They are included as the historical baselines the supervised
approaches generalise, and to support ablations comparing supervised vs
unsupervised pruning on the same weights.

The implementations reuse the supervised algorithms' structure: an edge-mask
is computed from the weights and per-node aggregates; the only differences
are (i) there is no 0.5 validity threshold, and (ii) CEP/CNP budgets come
from the same block-collection statistics as the supervised versions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Set

import numpy as np

from ..datamodel import BlockCollection
from ..utils.pqueue import BoundedTopQueue
from ..utils.validation import check_ratio
from ..core.pruning.cardinality_based import cep_budget, cnp_budget
from .graph import BlockingGraph


class UnsupervisedPruningAlgorithm(ABC):
    """Prune a blocking graph's edges using only their scheme weights."""

    name: str = "unsupervised"

    @abstractmethod
    def prune(self, graph: BlockingGraph, blocks: Optional[BlockCollection] = None) -> np.ndarray:
        """Return a boolean retained-mask over the graph's edges."""


class UnsupervisedWEP(UnsupervisedPruningAlgorithm):
    """Weighted Edge Pruning: keep edges above the global average weight."""

    name = "U-WEP"

    def prune(self, graph: BlockingGraph, blocks: Optional[BlockCollection] = None) -> np.ndarray:
        if graph.edge_count == 0:
            return np.zeros(0, dtype=bool)
        return graph.weights >= float(graph.weights.mean())


class UnsupervisedWNP(UnsupervisedPruningAlgorithm):
    """Weighted Node Pruning: keep edges above either endpoint's average weight."""

    name = "U-WNP"
    require_both = False

    def _node_averages(self, graph: BlockingGraph) -> np.ndarray:
        total_nodes = graph.candidates.index_space.total
        sums = np.zeros(total_nodes, dtype=np.float64)
        counts = np.zeros(total_nodes, dtype=np.int64)
        np.add.at(sums, graph.candidates.left, graph.weights)
        np.add.at(counts, graph.candidates.left, 1)
        np.add.at(sums, graph.candidates.right, graph.weights)
        np.add.at(counts, graph.candidates.right, 1)
        averages = np.full(total_nodes, np.inf, dtype=np.float64)
        populated = counts > 0
        averages[populated] = sums[populated] / counts[populated]
        return averages

    def prune(self, graph: BlockingGraph, blocks: Optional[BlockCollection] = None) -> np.ndarray:
        averages = self._node_averages(graph)
        reaches_left = graph.weights >= averages[graph.candidates.left]
        reaches_right = graph.weights >= averages[graph.candidates.right]
        if self.require_both:
            return reaches_left & reaches_right
        return reaches_left | reaches_right


class UnsupervisedRWNP(UnsupervisedWNP):
    """Reciprocal WNP: both endpoint averages must be reached."""

    name = "U-RWNP"
    require_both = True


class UnsupervisedBLAST(UnsupervisedPruningAlgorithm):
    """BLAST (Simonini et al. 2016): per-node maxima with a pruning ratio."""

    name = "U-BLAST"

    def __init__(self, ratio: float = 0.35) -> None:
        self.ratio = check_ratio(ratio, "ratio")

    def prune(self, graph: BlockingGraph, blocks: Optional[BlockCollection] = None) -> np.ndarray:
        total_nodes = graph.candidates.index_space.total
        maxima = np.zeros(total_nodes, dtype=np.float64)
        np.maximum.at(maxima, graph.candidates.left, graph.weights)
        np.maximum.at(maxima, graph.candidates.right, graph.weights)
        thresholds = self.ratio * (
            maxima[graph.candidates.left] + maxima[graph.candidates.right]
        )
        return graph.weights >= thresholds


class UnsupervisedCEP(UnsupervisedPruningAlgorithm):
    """Cardinality Edge Pruning: globally keep the top-K weighted edges."""

    name = "U-CEP"

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 1:
            raise ValueError("budget must be positive when given")
        self.budget = budget

    def prune(self, graph: BlockingGraph, blocks: Optional[BlockCollection] = None) -> np.ndarray:
        if self.budget is not None:
            budget = self.budget
        else:
            if blocks is None:
                raise ValueError("CEP needs the block collection to derive its budget K")
            budget = cep_budget(blocks)
        mask = np.zeros(graph.edge_count, dtype=bool)
        if graph.edge_count == 0:
            return mask
        if graph.edge_count <= budget:
            return np.ones(graph.edge_count, dtype=bool)
        keys = graph.candidates.packed_keys()
        queue: BoundedTopQueue[int] = BoundedTopQueue(budget)
        for position, weight in enumerate(graph.weights):
            queue.push(float(weight), position, key=int(keys[position]))
        mask[np.array(queue.items(), dtype=np.int64)] = True
        return mask


class UnsupervisedCNP(UnsupervisedPruningAlgorithm):
    """Cardinality Node Pruning: per-node top-k edges, OR-semantics."""

    name = "U-CNP"
    require_both = False

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 1:
            raise ValueError("budget must be positive when given")
        self.budget = budget

    def prune(self, graph: BlockingGraph, blocks: Optional[BlockCollection] = None) -> np.ndarray:
        if self.budget is not None:
            budget = self.budget
        else:
            if blocks is None:
                raise ValueError("CNP needs the block collection to derive its budget k")
            budget = cnp_budget(blocks)

        queues: Dict[int, BoundedTopQueue[int]] = {}
        keys = graph.candidates.packed_keys()
        for position, weight in enumerate(graph.weights):
            key = int(keys[position])
            for node in (
                int(graph.candidates.left[position]),
                int(graph.candidates.right[position]),
            ):
                queue = queues.get(node)
                if queue is None:
                    queue = BoundedTopQueue(budget)
                    queues[node] = queue
                queue.push(float(weight), position, key=key)
        retained: Dict[int, Set[int]] = {
            node: set(queue.items()) for node, queue in queues.items()
        }

        mask = np.zeros(graph.edge_count, dtype=bool)
        for position in range(graph.edge_count):
            left = int(graph.candidates.left[position])
            right = int(graph.candidates.right[position])
            in_left = position in retained.get(left, ())
            in_right = position in retained.get(right, ())
            mask[position] = (
                (in_left and in_right) if self.require_both else (in_left or in_right)
            )
        return mask


class UnsupervisedRCNP(UnsupervisedCNP):
    """Reciprocal CNP: the edge must be in both endpoints' top-k queues."""

    name = "U-RCNP"
    require_both = True
