"""Text normalisation and signature extraction.

Schema-agnostic blocking derives signatures from attribute values: whitespace
tokens for Token Blocking, character q-grams for Q-Grams Blocking and token
suffixes for Suffix-Arrays Blocking.  All functions are deterministic and
pure so blocking output is reproducible.
"""

from __future__ import annotations

import re
import unicodedata
from typing import Iterable, List, Sequence, Set

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

#: Frequent English/product stop-words excluded from signatures when the
#: caller asks for stop-word removal.  Deliberately small: schema-agnostic
#: blocking relies on Block Purging to drop over-frequent signatures anyway.
STOP_WORDS: Set[str] = {
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in",
    "is", "it", "of", "on", "or", "the", "to", "with",
}


def normalize(text: str) -> str:
    """Lower-case, strip accents and collapse non-alphanumeric characters.

    The normalisation mirrors the preprocessing of the JedAI / SparkER
    implementations: case folding plus punctuation removal, so that
    "iPhone-X" and "iphone x" produce the same tokens.
    """
    if not text:
        return ""
    folded = unicodedata.normalize("NFKD", text)
    ascii_only = folded.encode("ascii", "ignore").decode("ascii")
    return ascii_only.lower()


def tokens(text: str, min_length: int = 1, remove_stop_words: bool = False) -> List[str]:
    """Extract alphanumeric tokens from ``text`` after normalisation.

    Parameters
    ----------
    text:
        Raw attribute value or concatenated profile text.
    min_length:
        Tokens shorter than this are discarded (noise such as single letters).
    remove_stop_words:
        Drop tokens in :data:`STOP_WORDS`.
    """
    extracted = _TOKEN_PATTERN.findall(normalize(text))
    result = [token for token in extracted if len(token) >= min_length]
    if remove_stop_words:
        result = [token for token in result if token not in STOP_WORDS]
    return result


def distinct_tokens(
    text: str, min_length: int = 1, remove_stop_words: bool = False
) -> Set[str]:
    """Return the set of distinct tokens of ``text``."""
    return set(tokens(text, min_length=min_length, remove_stop_words=remove_stop_words))


def tokens_of_texts(
    texts: Iterable[str], min_length: int = 1, remove_stop_words: bool = False
) -> List[List[str]]:
    """Batch tokenization: one token list per text, duplicates kept.

    This is the entry point of the array blocking backend, which
    dictionary-encodes the flattened output and deduplicates during block
    assembly — so, unlike :func:`distinct_tokens`, no per-text set is
    built.  Delegates to :func:`tokens`, so both blocking backends share
    one tokenization pipeline by construction.
    """
    return [
        tokens(text, min_length=min_length, remove_stop_words=remove_stop_words)
        for text in texts
    ]


def qgrams(text: str, q: int = 3) -> List[str]:
    """Return the character q-grams of every token of ``text``.

    Tokens shorter than ``q`` contribute themselves as a single signature, so
    short but distinctive values (e.g. "s20") are not lost.
    """
    if q < 1:
        raise ValueError("q must be positive")
    grams: List[str] = []
    for token in tokens(text):
        if len(token) <= q:
            grams.append(token)
        else:
            grams.extend(token[i : i + q] for i in range(len(token) - q + 1))
    return grams


def distinct_qgrams(text: str, q: int = 3) -> Set[str]:
    """Return the set of distinct q-grams of ``text``."""
    return set(qgrams(text, q=q))


def suffixes(text: str, min_suffix_length: int = 3) -> List[str]:
    """Return the token suffixes of ``text`` (Suffix-Arrays Blocking).

    Every suffix of length at least ``min_suffix_length`` of every token is a
    signature; tokens shorter than the minimum contribute themselves.
    """
    if min_suffix_length < 1:
        raise ValueError("min_suffix_length must be positive")
    result: List[str] = []
    for token in tokens(text):
        if len(token) <= min_suffix_length:
            result.append(token)
        else:
            result.extend(
                token[start:] for start in range(0, len(token) - min_suffix_length + 1)
            )
    return result


def distinct_suffixes(text: str, min_suffix_length: int = 3) -> Set[str]:
    """Return the set of distinct suffixes of ``text``."""
    return set(suffixes(text, min_suffix_length=min_suffix_length))


def jaccard(first: Iterable[str], second: Iterable[str]) -> float:
    """Jaccard similarity of two signature collections (as sets)."""
    set_first, set_second = set(first), set(second)
    if not set_first and not set_second:
        return 0.0
    union = len(set_first | set_second)
    if union == 0:
        return 0.0
    return len(set_first & set_second) / union
