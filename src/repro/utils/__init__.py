"""Shared utilities: text signatures, RNG, priority queues, timing, validation."""

from .pqueue import BoundedTopQueue
from .rng import SeedLike, make_rng, sample_without_replacement, spawn_seeds
from .text import (
    STOP_WORDS,
    distinct_qgrams,
    distinct_suffixes,
    distinct_tokens,
    jaccard,
    normalize,
    qgrams,
    suffixes,
    tokens,
)
from .timing import StageTimer, speedup

__all__ = [
    "BoundedTopQueue",
    "STOP_WORDS",
    "SeedLike",
    "StageTimer",
    "distinct_qgrams",
    "distinct_suffixes",
    "distinct_tokens",
    "jaccard",
    "make_rng",
    "normalize",
    "qgrams",
    "sample_without_replacement",
    "spawn_seeds",
    "speedup",
    "suffixes",
    "tokens",
]
