"""Input validation helpers shared across the library."""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np


def check_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_positive_int(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if int(value) != value or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_ratio(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in (0, 1]."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value


def check_matrix(features: Any, name: str = "X") -> np.ndarray:
    """Coerce ``features`` into a finite 2-D float64 array."""
    array = np.asarray(features, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {array.shape}")
    if array.size and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return array


def check_binary_labels(labels: Any, name: str = "y") -> np.ndarray:
    """Coerce ``labels`` into a 1-D {0, 1} float array."""
    array = np.asarray(labels)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {array.shape}")
    as_float = array.astype(np.float64)
    unique = np.unique(as_float)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise ValueError(f"{name} must contain only 0/1 labels, got values {unique}")
    return as_float


def check_consistent_length(first: np.ndarray, second: np.ndarray) -> None:
    """Raise when the two arrays disagree on their first dimension."""
    if len(first) != len(second):
        raise ValueError(
            f"inconsistent lengths: {len(first)} vs {len(second)}"
        )
