"""Reproducible random number generation helpers.

Every stochastic component of the library (training-set sampling, dataset
generation, classifier initialisation) receives an explicit seed or a
``numpy.random.Generator``.  These helpers centralise the conversion so
experiment runs are reproducible end to end, as the paper requires ("fixing
the random state so as to reproduce the probabilities over several runs").

**Worker determinism.** :func:`make_rng` is the library's *single RNG
entrypoint*: no module draws randomness any other way, and — by design —
no code path that runs inside a :mod:`repro.parallel` worker process calls
it at all.  The sharded execution engine parallelises only deterministic
kernels (tokenization, set unions, per-pair aggregation, total-order
selection); every stochastic stage (``repro.ml`` sampling, training,
classifier initialisation) stays in the parent process and consumes the
caller's explicit seed exactly once, in the same order, for every
``workers`` value.  Consequently training sets, fitted models and
probabilities are bit-identical regardless of the worker count — the
equivalence tests in ``tests/parallel/`` assert this.  Code added to the
worker kernels must preserve the invariant: if a worker ever needs
randomness, derive a per-task seed in the parent with :func:`spawn_seeds`
and pass it through the task arguments instead of seeding inside the
worker.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from an int seed or pass-through.

    ``None`` yields a non-deterministic generator; an existing generator is
    returned unchanged so callers can thread a single stream through a
    pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> list[int]:
    """Derive ``count`` independent integer seeds from a master seed.

    Used by the experiment runner to obtain one seed per repetition while
    staying reproducible from a single configuration value.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = make_rng(seed)
    return [int(value) for value in rng.integers(0, 2**31 - 1, size=count)]


def sample_without_replacement(
    rng: np.random.Generator, population_size: int, sample_size: int
) -> np.ndarray:
    """Sample ``sample_size`` distinct indices from ``range(population_size)``.

    When the requested sample exceeds the population, the whole population is
    returned (shuffled) — the caller is expected to handle the shortfall,
    mirroring how the paper's undersampling degrades gracefully on tiny
    datasets.
    """
    if population_size < 0 or sample_size < 0:
        raise ValueError("sizes must be non-negative")
    if sample_size >= population_size:
        return rng.permutation(population_size)
    return rng.choice(population_size, size=sample_size, replace=False)
