"""Bounded priority queues for cardinality-based pruning.

CEP keeps the global top-K weighted comparisons; CNP/RCNP keep the top-k per
entity.  Both need a *min-heap of bounded size*: pushing beyond capacity
evicts the lowest-weighted element and exposes the new minimum as the
admission threshold, exactly as Algorithms 4 and 5 in the paper describe.

Two properties matter beyond the textbook structure:

* **Deterministic tie-breaking.**  Equal weights are ordered by an explicit
  *tie key* supplied with each push (smaller key wins; larger keys are
  evicted first).  The pruning algorithms pass the packed candidate key
  ``left * total + right``, which makes the retained set a pure function of
  the ``(weight, pair)`` multiset — independent of insertion order.  This is
  what lets the streaming session (arrival-ordered pairs) reproduce the
  batch pipeline (canonically ordered pairs) exactly for CEP/CNP/RCNP.
  Without an explicit key the insertion counter is used, preserving the old
  earlier-insertions-win behaviour.
* **Lazy deletion.**  :meth:`BoundedTopQueue.discard` retracts an item
  without an O(n) heap rebuild: the item is tombstoned and dead entries are
  skimmed off the heap top whenever the minimum is consulted.  The streaming
  session uses this to evict the pairs of a deleted entity from its online
  top-K policy.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class BoundedTopQueue(Generic[T]):
    """Keep the ``capacity`` items with the highest weights.

    Ties are broken by the ``key`` given to :meth:`push` (smaller keys win);
    without explicit keys, by insertion order (earlier insertions win).
    Either way the pruning is deterministic for equal weights.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        #: heap entries are ``(weight, -key, -seq, item)`` — the min-heap
        #: root is the worst retained entry: lowest weight, then largest
        #: tie key, then latest insertion
        self._heap: List[Tuple[float, int, int, T]] = []
        self._counter = itertools.count()
        #: live multiplicity per item (entries in the heap minus tombstones)
        self._live: Dict[T, int] = {}
        #: pending tombstones per item, consumed as entries surface
        self._dead: Dict[T, int] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: object) -> bool:
        return self._live.get(item, 0) > 0  # type: ignore[arg-type]

    # -- internal bookkeeping ---------------------------------------------------
    def _drop_live(self, item: T) -> None:
        count = self._live.get(item, 0) - 1
        if count > 0:
            self._live[item] = count
        else:
            self._live.pop(item, None)

    def _skim_dead(self) -> None:
        """Pop tombstoned entries off the heap top until it is live."""
        heap = self._heap
        dead = self._dead
        while heap:
            item = heap[0][3]
            pending = dead.get(item, 0)
            if pending == 0:
                return
            heapq.heappop(heap)
            if pending > 1:
                dead[item] = pending - 1
            else:
                del dead[item]

    @property
    def min_weight(self) -> float:
        """The lowest weight currently retained (0.0 when not yet full).

        This is the ``minp`` admission threshold of Algorithms 4/5: a new item
        is worth pushing only if its weight exceeds it once the queue is full.
        """
        if self._size < self.capacity:
            return 0.0
        self._skim_dead()
        return self._heap[0][0]

    def push(self, weight: float, item: T, key: Optional[int] = None) -> Optional[T]:
        """Insert ``item``; return the evicted item when capacity is exceeded.

        Parameters
        ----------
        weight:
            The item's weight; higher weights are retained preferentially.
        item:
            The payload (any hashable value).
        key:
            Deterministic tie key: among equal weights, the entry with the
            *largest* key is evicted first, so smaller keys survive
            regardless of insertion order.  Defaults to the insertion
            counter, under which earlier insertions survive.
        """
        sequence = next(self._counter)
        entry = (weight, -(sequence if key is None else key), -sequence, item)
        if self._size < self.capacity:
            heapq.heappush(self._heap, entry)
            self._live[item] = self._live.get(item, 0) + 1
            self._size += 1
            return None
        self._skim_dead()
        if entry <= self._heap[0]:
            return item
        evicted = heapq.heappushpop(self._heap, entry)[3]
        self._drop_live(evicted)
        self._live[item] = self._live.get(item, 0) + 1
        return evicted

    def discard(self, item: T) -> bool:
        """Lazily retract one occurrence of ``item``; ``False`` if absent.

        The heap entry is tombstoned, not searched for: the cost is O(1) now
        and O(log n) amortised when the dead entry surfaces at the heap top.
        Discarding an item that is not in the queue is a no-op — the queue's
        aggregates are never corrupted by an unknown eviction.
        """
        if self._live.get(item, 0) == 0:
            return False
        self._drop_live(item)
        self._dead[item] = self._dead.get(item, 0) + 1
        self._size -= 1
        return True

    def _live_entries(self) -> List[Tuple[float, int, int, T]]:
        """The heap entries that are not tombstoned (unordered)."""
        pending = dict(self._dead)
        entries: List[Tuple[float, int, int, T]] = []
        # walk in heap order so tombstones are consumed against the lowest
        # (i.e. first-evicted) entries of each item, matching _skim_dead
        for entry in sorted(self._heap):
            item = entry[3]
            remaining = pending.get(item, 0)
            if remaining:
                pending[item] = remaining - 1
                continue
            entries.append(entry)
        return entries

    def _ordered_entries(self) -> List[Tuple[float, int, int, T]]:
        """Live entries strongest first: weight desc, then tie key asc."""
        return sorted(
            self._live_entries(), key=lambda entry: (-entry[0], -entry[1], -entry[2])
        )

    def items(self) -> List[T]:
        """Return retained items ordered by decreasing weight."""
        return [entry[3] for entry in self._ordered_entries()]

    def weighted_items(self) -> List[Tuple[float, T]]:
        """Return (weight, item) tuples ordered by decreasing weight."""
        return [(entry[0], entry[3]) for entry in self._ordered_entries()]

    def __iter__(self) -> Iterator[T]:
        return iter(self.items())
