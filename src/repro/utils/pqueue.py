"""Bounded priority queues for cardinality-based pruning.

CEP keeps the global top-K weighted comparisons; CNP/RCNP keep the top-k per
entity.  Both need a *min-heap of bounded size*: pushing beyond capacity
evicts the lowest-weighted element and exposes the new minimum as the
admission threshold, exactly as Algorithms 4 and 5 in the paper describe.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class BoundedTopQueue(Generic[T]):
    """Keep the ``capacity`` items with the highest weights.

    Ties are broken by insertion order (earlier insertions win), which makes
    the pruning deterministic for equal probabilities.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._heap: List[Tuple[float, int, T]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: object) -> bool:
        return any(entry[2] == item for entry in self._heap)

    @property
    def min_weight(self) -> float:
        """The lowest weight currently retained (0.0 when empty).

        This is the ``minp`` admission threshold of Algorithms 4/5: a new item
        is worth pushing only if its weight exceeds it once the queue is full.
        """
        if len(self._heap) < self.capacity:
            return 0.0
        return self._heap[0][0]

    def push(self, weight: float, item: T) -> Optional[T]:
        """Insert ``item``; return the evicted item when capacity is exceeded.

        The tie-break uses a *negated* insertion counter so that, among equal
        weights, the most recently inserted item is evicted first and earlier
        insertions survive.
        """
        entry = (weight, -next(self._counter), item)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return None
        if entry <= self._heap[0]:
            return item
        evicted = heapq.heappushpop(self._heap, entry)
        return evicted[2]

    def items(self) -> List[T]:
        """Return retained items ordered by decreasing weight."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1]))
        return [entry[2] for entry in ordered]

    def weighted_items(self) -> List[Tuple[float, T]]:
        """Return (weight, item) tuples ordered by decreasing weight."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1]))
        return [(entry[0], entry[2]) for entry in ordered]

    def __iter__(self) -> Iterator[T]:
        return iter(self.items())
