"""Run-time accounting.

The paper reports run-time (RT) as the sum of feature generation, model
training and model application (plus pruning for the generalized task).
:class:`StageTimer` accumulates named stages so experiment code can report
both the total and the per-stage breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class StageTimer:
    """Accumulate wall-clock time per named stage."""

    stages: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one execution of stage ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages[name] = self.stages.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage ``name`` (for externally-measured time)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        """Total accumulated seconds across all stages."""
        return sum(self.stages.values())

    def get(self, name: str) -> float:
        """Seconds accumulated for ``name`` (0.0 when never timed)."""
        return self.stages.get(name, 0.0)

    def merge(self, other: "StageTimer") -> "StageTimer":
        """Return a new timer with the stage-wise sum of both timers."""
        merged = StageTimer(dict(self.stages))
        for name, seconds in other.stages.items():
            merged.add(name, seconds)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the per-stage accumulation."""
        return dict(self.stages)


def speedup(
    small_comparisons: int,
    large_comparisons: int,
    small_runtime: float,
    large_runtime: float,
) -> float:
    """Paper's scalability measure (Section 5.5).

    ``speedup = |C2|/|C1| * RT1/RT2`` for ``|C1| < |C2|``; values close to 1
    indicate linear scalability.
    """
    if min(small_comparisons, large_comparisons) <= 0:
        raise ValueError("comparison counts must be positive")
    if min(small_runtime, large_runtime) <= 0:
        raise ValueError("run-times must be positive")
    return (large_comparisons / small_comparisons) * (small_runtime / large_runtime)
