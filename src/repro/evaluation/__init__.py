"""Evaluation: effectiveness metrics, multi-run execution, report formatting."""

from .metrics import (
    EffectivenessReport,
    average_reports,
    evaluate_blocks,
    evaluate_candidates,
    evaluate_result,
    evaluate_retained_mask,
)
from .reporting import format_measure_series, format_table, format_value, paper_vs_measured
from .runner import ExperimentRunner, RunOutcome, average_over_datasets

__all__ = [
    "EffectivenessReport",
    "ExperimentRunner",
    "RunOutcome",
    "average_over_datasets",
    "average_reports",
    "evaluate_blocks",
    "evaluate_candidates",
    "evaluate_result",
    "evaluate_retained_mask",
    "format_measure_series",
    "format_table",
    "format_value",
    "paper_vs_measured",
]
