"""Plain-text report formatting.

The benchmark harness prints, for every paper table and figure, the same rows
or series the paper reports.  These helpers turn lists of dictionaries into
aligned fixed-width tables so the output is readable in a terminal and easy
to diff across runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number]


def format_value(value: Cell, precision: int = 4) -> str:
    """Format one cell: floats with fixed precision, everything else as str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 10 ** (-precision):
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render rows of dictionaries as an aligned fixed-width text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(columns) if columns is not None else list(rows[0].keys())

    rendered: List[List[str]] = [
        [format_value(row.get(column, ""), precision) for column in headers]
        for row in rows
    ]
    widths = [
        max(len(header), *(len(line[index]) for line in rendered))
        for index, header in enumerate(headers)
    ]

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for line in rendered:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_measure_series(
    series: Mapping[str, Mapping[str, Number]],
    measures: Sequence[str] = ("recall", "precision", "f1"),
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render a {label: {measure: value}} mapping as a table (figures' data).

    Used for the bar-chart figures (5, 6, 8, 17): each label becomes a row and
    each measure a column, which is the underlying data the figure plots.
    """
    rows = [
        {"label": label, **{measure: values.get(measure, float("nan")) for measure in measures}}
        for label, values in series.items()
    ]
    return format_table(rows, columns=["label", *measures], precision=precision, title=title)


def paper_vs_measured(
    paper: Mapping[str, Number],
    measured: Mapping[str, Number],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render a side-by-side comparison of paper-reported vs measured values."""
    rows = []
    for key in paper:
        rows.append(
            {
                "measure": key,
                "paper": paper[key],
                "measured": measured.get(key, float("nan")),
            }
        )
    return format_table(rows, columns=["measure", "paper", "measured"], precision=precision, title=title)
