"""Effectiveness measures for block collections and pruned candidate sets.

The paper evaluates every method with three measures (Section 2.1):

* recall / Pairs Completeness (PC) — retained duplicates over all duplicates
  in the ground truth (duplicates already missed by blocking count against
  recall);
* precision / Pairs Quality (PQ) — retained duplicates over retained pairs;
* F1 — their harmonic mean.

The functions below operate on either a :class:`CandidateSet` (evaluating a
block collection's candidate pairs) or on a boolean retained-mask aligned with
per-pair ground-truth labels (evaluating a pruning result without rebuilding
pair sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..datamodel import BlockCollection, CandidateSet, GroundTruth


@dataclass(frozen=True)
class EffectivenessReport:
    """Recall, precision and F1 plus the underlying counts."""

    recall: float
    precision: float
    f1: float
    true_positives: int
    retained_pairs: int
    total_duplicates: int

    def as_dict(self) -> Dict[str, float]:
        """Return the measures as a flat dictionary (for reports/tables)."""
        return {
            "recall": self.recall,
            "precision": self.precision,
            "f1": self.f1,
            "true_positives": float(self.true_positives),
            "retained_pairs": float(self.retained_pairs),
            "total_duplicates": float(self.total_duplicates),
        }


def _report(true_positives: int, retained_pairs: int, total_duplicates: int) -> EffectivenessReport:
    recall = true_positives / total_duplicates if total_duplicates else 0.0
    precision = true_positives / retained_pairs if retained_pairs else 0.0
    f1 = (
        2.0 * recall * precision / (recall + precision)
        if (recall + precision) > 0.0
        else 0.0
    )
    return EffectivenessReport(
        recall=recall,
        precision=precision,
        f1=f1,
        true_positives=true_positives,
        retained_pairs=retained_pairs,
        total_duplicates=total_duplicates,
    )


def evaluate_candidates(
    candidates: CandidateSet, ground_truth: GroundTruth
) -> EffectivenessReport:
    """Evaluate a candidate set (e.g. the output of blocking) against the truth."""
    true_positives = ground_truth.covered_by(candidates)
    return _report(true_positives, len(candidates), len(ground_truth))


def evaluate_blocks(
    blocks: BlockCollection, ground_truth: GroundTruth
) -> EffectivenessReport:
    """Evaluate a block collection through its distinct candidate pairs.

    This reproduces Table 2: the recall/precision/F1 of the input block
    collections that supervised meta-blocking refines.
    """
    return evaluate_candidates(CandidateSet.from_blocks(blocks), ground_truth)


def evaluate_retained_mask(
    retained_mask: np.ndarray,
    labels: np.ndarray,
    total_duplicates: int,
) -> EffectivenessReport:
    """Evaluate a pruning decision from its mask and per-pair labels.

    Parameters
    ----------
    retained_mask:
        Boolean array over the candidate pairs (True = retained).
    labels:
        Boolean array over the same pairs (True = matching).
    total_duplicates:
        ``|D|`` — all ground-truth duplicates, including those already missed
        by blocking, so recall is measured against the full ground truth as in
        the paper.
    """
    retained_mask = np.asarray(retained_mask).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if retained_mask.shape != labels.shape:
        raise ValueError("retained_mask and labels must have the same shape")
    if total_duplicates < 0:
        raise ValueError("total_duplicates must be non-negative")
    true_positives = int(np.sum(retained_mask & labels))
    return _report(true_positives, int(retained_mask.sum()), total_duplicates)


def evaluate_result(result, ground_truth: GroundTruth) -> EffectivenessReport:
    """Evaluate a :class:`repro.core.pipeline.MetaBlockingResult`."""
    return evaluate_retained_mask(
        result.retained_mask, result.labels, len(ground_truth)
    )


def average_reports(reports) -> EffectivenessReport:
    """Average several reports measure-wise (the paper's multi-run averaging).

    Counts are averaged and rounded; recall/precision/F1 are averaged
    directly (not recomputed from the averaged counts), matching how the
    paper averages the measures over 10 repetitions.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("cannot average an empty list of reports")
    return EffectivenessReport(
        recall=float(np.mean([r.recall for r in reports])),
        precision=float(np.mean([r.precision for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        true_positives=int(round(np.mean([r.true_positives for r in reports]))),
        retained_pairs=int(round(np.mean([r.retained_pairs for r in reports]))),
        total_duplicates=int(round(np.mean([r.total_duplicates for r in reports]))),
    )
