"""Multi-run experiment execution.

The paper averages every measurement over several repetitions (10 for the
main study, 3 for the scalability analysis), each drawing a different random
training sample.  :class:`ExperimentRunner` wraps that loop: it prepares each
dataset once (blocking, purging, filtering, statistics, feature matrices can
all be cached by the caller) and runs a configured pipeline ``repetitions``
times with seeds derived from a master seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..utils.rng import SeedLike, spawn_seeds
from .metrics import EffectivenessReport, average_reports, evaluate_retained_mask

if TYPE_CHECKING:  # imported lazily to avoid a circular import with repro.core
    from ..core.feature_selection import PreparedDataset
    from ..core.pipeline import GeneralizedSupervisedMetaBlocking, MetaBlockingResult


@dataclass
class RunOutcome:
    """The averaged outcome of repeated pipeline runs on one dataset."""

    dataset: str
    algorithm: str
    report: EffectivenessReport
    runtime_seconds: float
    per_run_reports: List[EffectivenessReport] = field(default_factory=list)
    per_run_runtimes: List[float] = field(default_factory=list)

    def as_row(self) -> Dict[str, float]:
        """Flatten into a report row (dataset, algorithm, Re, Pr, F1, RT)."""
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "recall": self.report.recall,
            "precision": self.report.precision,
            "f1": self.report.f1,
            "runtime_seconds": self.runtime_seconds,
        }


class ExperimentRunner:
    """Run a pipeline configuration repeatedly over prepared datasets.

    Parameters
    ----------
    repetitions:
        Number of repetitions per dataset (each with a fresh training sample).
    seed:
        Master seed from which per-repetition seeds are derived.
    """

    def __init__(self, repetitions: int = 3, seed: SeedLike = 0) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        self.repetitions = repetitions
        self.seed = seed

    def run_pipeline(
        self,
        pipeline: "GeneralizedSupervisedMetaBlocking",
        dataset: "PreparedDataset",
        label: Optional[str] = None,
    ) -> RunOutcome:
        """Run ``pipeline`` on one prepared dataset and average the outcomes."""
        seeds = spawn_seeds(self.seed, self.repetitions)
        reports: List[EffectivenessReport] = []
        runtimes: List[float] = []
        for run_seed in seeds:
            result = pipeline.run(
                dataset.blocks,
                dataset.candidates,
                dataset.ground_truth,
                stats=dataset.statistics(),
                seed=run_seed,
            )
            reports.append(
                evaluate_retained_mask(
                    result.retained_mask, result.labels, len(dataset.ground_truth)
                )
            )
            runtimes.append(result.runtime_seconds)
        return RunOutcome(
            dataset=dataset.name,
            algorithm=label or pipeline.pruning.name,
            report=average_reports(reports),
            runtime_seconds=float(np.mean(runtimes)),
            per_run_reports=reports,
            per_run_runtimes=runtimes,
        )

    def run_matrix(
        self,
        pipelines: Dict[str, "GeneralizedSupervisedMetaBlocking"],
        datasets: Sequence["PreparedDataset"],
    ) -> List[RunOutcome]:
        """Run every (pipeline, dataset) combination and collect the outcomes."""
        outcomes: List[RunOutcome] = []
        for dataset in datasets:
            for label, pipeline in pipelines.items():
                outcomes.append(self.run_pipeline(pipeline, dataset, label=label))
        return outcomes


def average_over_datasets(outcomes: Sequence[RunOutcome]) -> Dict[str, EffectivenessReport]:
    """Average outcomes per algorithm across datasets (paper-style averages)."""
    grouped: Dict[str, List[EffectivenessReport]] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.algorithm, []).append(outcome.report)
    return {
        algorithm: average_reports(reports) for algorithm, reports in grouped.items()
    }
