"""Command-line interface for the reproduction.

Usage::

    python -m repro list                       # list the available experiments
    python -m repro run table2                 # regenerate one table/figure
    python -m repro run fig5 --datasets AbtBuy DblpAcm --repetitions 2
    python -m repro quickstart                 # run the quickstart pipeline
    python -m repro stream --dataset DblpAcm   # incremental streaming session
    python -m repro serve --wal /tmp/wal       # persistent matching daemon
    python -m repro client stats --port 9876   # query a running daemon
    python -m repro trace --log /tmp/events    # inspect an event log

Every ``run`` command prints the same rows/series the paper reports for that
experiment (the benches in ``benchmarks/`` are the pytest-integrated variant
of the same calls).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from . import __version__
from . import experiments as ex
from .blocking import BLOCKING_BACKENDS
from .core.pruning import PRUNING_ALGORITHMS
from .datasets import CLEAN_CLEAN_ORDER
from .weights import BACKENDS


def _workers_argument(value: str):
    """Validate a ``--workers`` value: a positive integer or ``auto``."""
    from .parallel import resolve_workers

    try:
        resolve_workers(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return value if value == "auto" else int(value)


def _config_from_args(args: argparse.Namespace) -> ex.ExperimentConfig:
    return ex.ExperimentConfig(
        dataset_names=tuple(args.datasets),
        repetitions=args.repetitions,
        training_size=args.training_size,
        seed=args.seed,
        backend=args.backend,
        blocking_backend=args.blocking_backend,
        workers=args.workers,
    )


def _run_table2(args: argparse.Namespace) -> str:
    rows = ex.run_block_quality(
        tuple(args.datasets), seed=args.seed, blocking_backend=args.blocking_backend
    )
    return ex.format_block_quality(rows)


def _run_fig5(args: argparse.Namespace) -> str:
    return ex.format_pruning_selection(
        ex.run_figure5(_config_from_args(args)), "Figure 5 — weight-based pruning algorithms"
    )


def _run_fig6(args: argparse.Namespace) -> str:
    return ex.format_pruning_selection(
        ex.run_figure6(_config_from_args(args)), "Figure 6 — cardinality-based pruning algorithms"
    )


def _run_tables34(args: argparse.Namespace) -> str:
    parts = []
    for algorithm in ("BLAST", "RCNP"):
        result = ex.run_feature_selection(
            algorithm, _config_from_args(args), max_set_size=args.max_set_size
        )
        parts.append(ex.format_feature_selection(result))
    return "\n\n".join(parts)


def _run_fig8(args: argparse.Namespace) -> str:
    return ex.format_figure8(ex.run_figure8(_config_from_args(args)))


def _run_fig10(args: argparse.Namespace) -> str:
    return ex.format_figure10(
        ex.run_figure10(_config_from_args(args), dataset_names=tuple(args.datasets[:2]))
    )


def _run_training_size(args: argparse.Namespace) -> str:
    parts = []
    for algorithm, figure in (("BLAST", "11"), ("RCNP", "14")):
        points = ex.run_training_size_sweep(
            algorithm, _config_from_args(args), sizes=ex.FAST_TRAINING_SIZES
        )
        parts.append(
            ex.format_training_size(points, f"Figure {figure} — training-set size for {algorithm}")
        )
    return "\n\n".join(parts)


def _run_fig12(args: argparse.Namespace) -> str:
    snapshots = ex.run_probability_density(
        args.datasets[0], training_sizes=(50, 200, 500), config=_config_from_args(args)
    )
    return ex.format_probability_density(snapshots)


def _run_table5(args: argparse.Namespace) -> str:
    return ex.format_final_comparison(ex.run_table5(_config_from_args(args)))


def _run_table7(args: argparse.Namespace) -> str:
    return ex.format_final_comparison(ex.run_table7(_config_from_args(args)))


def _run_fig1516(args: argparse.Namespace) -> str:
    distributions = ex.run_common_block_distribution(
        tuple(args.datasets), _config_from_args(args)
    )
    return ex.format_common_blocks(
        distributions, "Figures 15/16 — duplicates per number of common blocks"
    )


def _run_scalability(args: argparse.Namespace) -> str:
    config = ex.ExperimentConfig(
        repetitions=args.repetitions,
        seed=args.seed,
        backend=args.backend,
        blocking_backend=args.blocking_backend,
    )
    result = ex.run_scalability(config, dataset_names=("D10K", "D50K", "D100K"), scale=0.02)
    table6 = ex.run_table6("D100K", iterations=3, config=config, scale=0.01)
    return "\n\n".join(
        [ex.format_scalability(result), ex.format_speedups(result), ex.format_table6(table6)]
    )


#: Experiment ids accepted by ``python -m repro run <id>``.
EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table2": _run_table2,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "tables3-4": _run_tables34,
    "fig8": _run_fig8,
    "fig10": _run_fig10,
    "fig11-14": _run_training_size,
    "fig12": _run_fig12,
    "table5": _run_table5,
    "table7": _run_table7,
    "fig15-16": _run_fig1516,
    "fig17-18": _run_scalability,
}


def _run_quickstart(args: argparse.Namespace) -> str:
    from . import (
        GeneralizedSupervisedMetaBlocking,
        evaluate_candidates,
        evaluate_result,
        load_benchmark,
        prepare_blocks,
    )
    from .utils.timing import StageTimer

    from .parallel import ParallelExecutor, resolve_workers

    dataset = load_benchmark(args.datasets[0], seed=args.seed)
    prep_timer = StageTimer()
    workers = resolve_workers(args.workers)
    # one executor (pool + published shared-memory inputs) serves block
    # preparation, feature generation and pruning alike
    executor = ParallelExecutor(workers) if workers > 1 else None
    try:
        prepared = prepare_blocks(
            dataset.first,
            dataset.second,
            backend=args.blocking_backend,
            timer=prep_timer,
            workers=workers,
            executor=executor,
        )
        before = evaluate_candidates(prepared.candidates, dataset.ground_truth)
        pipeline = GeneralizedSupervisedMetaBlocking(
            pruning="BLAST",
            training_size=args.training_size,
            seed=args.seed,
            backend=args.backend,
            workers=workers,
        )
        result = pipeline.run(
            prepared.blocks,
            prepared.candidates,
            dataset.ground_truth,
            stats=prepared.statistics(),
            executor=executor,
        )
    finally:
        if executor is not None:
            executor.close()
    after = evaluate_result(result, dataset.ground_truth)
    stages = prep_timer.merge(result.timer)
    stage_text = " ".join(
        f"{name}={seconds:.3f}s" for name, seconds in stages.as_dict().items()
    )
    return (
        f"{dataset.name}: {len(prepared.candidates)} candidate pairs "
        f"(blocking backend {prepared.backend!r})\n"
        f"  before meta-blocking: recall={before.recall:.3f} precision={before.precision:.5f}\n"
        f"  after  meta-blocking: recall={after.recall:.3f} precision={after.precision:.3f} "
        f"f1={after.f1:.3f} ({result.retained_count} pairs retained)\n"
        f"  RT by stage: {stage_text} (total {stages.total:.3f}s)"
    )


def _run_stream(args: argparse.Namespace, parser: argparse.ArgumentParser) -> str:
    from .datasets import load_benchmark, load_clean_clean_directory
    from .incremental import (
        MatchingSession,
        StreamTrainingError,
        evaluate_retained_ids,
        ground_truth_id_pairs,
        live_truth_id_pairs,
        replay_stream,
        train_frozen_model,
    )

    if not 0.0 < args.bootstrap <= 1.0:
        parser.error("--bootstrap must be a fraction in (0, 1]")
    if args.top_k < 1:
        parser.error("--top-k must be at least 1")
    if not 0.0 <= args.deletes < 1.0:
        parser.error("--deletes must be a fraction in [0, 1)")
    if args.snapshot_every is not None and args.snapshot_every < 1:
        parser.error("--snapshot-every must be at least 1")
    if args.recover:
        if args.wal is None:
            parser.error("--recover requires --wal DIR")
        try:
            session = MatchingSession.recover(args.wal)
        except (FileNotFoundError, ValueError) as error:
            parser.error(f"cannot recover from {args.wal}: {error}")
        final = session.retained()
        session.close()
        online_text = ""
        if session.online is not None:
            online_text = (
                f"  online policy {session.online.name}, threshold "
                f"{session.online.threshold:.3f}\n"
            )
        return (
            f"recovered session from {args.wal}\n"
            f"  {session.index.num_entities} live entities, "
            f"{session.num_pairs} candidate pairs\n"
            f"{online_text}"
            f"  final {session.pruning.name} answer: "
            f"{final.retained_count} pairs retained"
        )

    if args.dataset_dir is not None:
        try:
            dataset = load_clean_clean_directory(args.dataset_dir)
        except FileNotFoundError as error:
            if "ground-truth" in str(error):
                parser.error(
                    "repro stream needs labelled duplicates to train its frozen "
                    f"classifier, but the dataset has no ground truth: {error}"
                )
            parser.error(f"cannot load the dataset directory: {error}")
    else:
        dataset = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)

    try:
        model = train_frozen_model(
            dataset,
            bootstrap_fraction=args.bootstrap,
            pruning=args.pruning,
            training_size=args.training_size,
            seed=args.seed,
            backend=args.backend,
        )
    except StreamTrainingError as error:
        parser.error(str(error))

    try:
        replay = replay_stream(
            dataset,
            model,
            pruning=args.pruning,
            online=args.online,
            top_k=args.top_k,
            limit=args.limit,
            delete_fraction=args.deletes,
            churn_seed=args.seed,
            wal_path=args.wal,
            snapshot_every=args.snapshot_every,
        )
    except ValueError as error:
        parser.error(str(error))
    final = replay.session.retained()
    # judge recall against the duplicates the *live* index can still retain:
    # entities never streamed (--limit) or since retracted (--deletes) are
    # out of scope, not misses
    truth = live_truth_id_pairs(
        replay.session.index,
        ground_truth_id_pairs(dataset.ground_truth, dataset.first, dataset.second),
    )
    recall, precision = evaluate_retained_ids(final, truth)
    mean, p50, p95 = replay.latency_percentiles()
    wal_text = ""
    if args.wal is not None:
        replay.session.close()
        recovered = MatchingSession.recover(args.wal)
        identical = recovered.retained().retained_id_set() == final.retained_id_set()
        recovered.close()
        wal_text = (
            f"  WAL: journaled to {args.wal} "
            f"({len(recovered.wal.snapshot_paths())} snapshots), recovery "
            f"check: {'identical retained set' if identical else 'MISMATCH'}\n"
        )
    churn_text = ""
    if replay.num_deletes:
        churn_text = (
            f"  deletes: {replay.num_deletes} entities retracted "
            f"({int(replay.retraction_sizes.sum())} pairs, mean "
            f"{replay.delete_seconds.mean() * 1e3:.3f}ms per delete)\n"
        )
    return (
        f"{dataset.name}: streamed {replay.num_inserts} entities "
        f"({replay.session.num_pairs} candidate pairs)\n"
        f"  per-insert latency: mean={mean * 1e3:.3f}ms p50={p50 * 1e3:.3f}ms "
        f"p95={p95 * 1e3:.3f}ms  throughput={replay.throughput:,.0f} inserts/s\n"
        f"{wal_text}"
        f"{churn_text}"
        f"  online matches reported: {int(replay.online_matches.sum())} "
        f"(policy {replay.session.online.name}, threshold "
        f"{replay.session.online.threshold:.3f})\n"
        f"  final {args.pruning} answer: {final.retained_count} pairs retained, "
        f"recall={recall:.3f} precision={precision:.3f}"
    )


def _run_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Start the persistent matching daemon (``repro serve``)."""
    from .serve import MatchingDaemon

    if args.snapshot_every is not None and args.snapshot_every < 1:
        parser.error("--snapshot-every must be at least 1")
    if args.shards < 1:
        parser.error("--shards must be at least 1")
    model = None
    if not args.recover:
        from .datasets import load_benchmark
        from .incremental import StreamTrainingError, train_frozen_model

        if not 0.0 < args.bootstrap <= 1.0:
            parser.error("--bootstrap must be a fraction in (0, 1]")
        # the benchmark is only used to train the frozen classifier the
        # daemon scores with; the served index starts empty
        dataset = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)
        try:
            model = train_frozen_model(
                dataset,
                bootstrap_fraction=args.bootstrap,
                pruning=args.pruning,
                training_size=args.training_size,
                seed=args.seed,
                backend=args.backend,
            )
        except StreamTrainingError as error:
            parser.error(str(error))
    try:
        daemon = MatchingDaemon(
            args.wal,
            model,
            host=args.host,
            port=args.port,
            num_shards=args.shards,
            bilateral=True,
            pruning=args.pruning,
            online=args.online,
            top_k=args.top_k,
            snapshot_every=args.snapshot_every,
            wal_sync=args.wal_sync,
            recover=args.recover,
            tokenize_workers=args.workers,
            announce=True,
            degraded_reads=(args.degraded_reads == "on"),
            delta_shipping=(args.delta_shipping == "on"),
            heartbeat_interval=args.heartbeat_interval,
            hang_timeout=args.hang_timeout,
            max_pending_mutations=args.max_pending,
            max_pending_reads=args.max_pending,
            event_log=args.event_log,
            slow_request_ms=args.slow_ms,
            tracing=(args.tracing == "on"),
        )
    except (FileNotFoundError, ValueError) as error:
        parser.error(f"cannot start the daemon: {error}")
    return daemon.serve()


def _run_client(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """One request against a running daemon (``repro client``)."""
    import json

    from .datamodel import make_profile
    from .serve import ProtocolError, ServeClient, ServeError, render_stats

    try:
        client = ServeClient(
            args.host,
            args.port,
            timeout=args.timeout,
            connect_timeout=args.connect_timeout,
            retries=args.retries,
            deadline_ms=args.deadline_ms,
        )
    except OSError as error:
        parser.error(f"cannot connect to {args.host}:{args.port}: {error}")
    try:
        action = args.action
        if action == "ping":
            print(json.dumps(client.ping(), sort_keys=True))
        elif action == "stats":
            print(render_stats(client.stats()))
        elif action == "metrics":
            print(client.metrics()["text"], end="")
        elif action == "match":
            answer = client.match()
            retained = answer["retained"]
            print(
                f"{len(retained)} retained pairs of "
                f"{answer['num_candidates']} candidates "
                f"at WAL offset {answer['offset']}"
            )
            for id_a, id_b, probability in retained[: args.limit]:
                print(f"  {id_a} ~ {id_b}  p={probability:.6f}")
            if len(retained) > args.limit:
                print(f"  ... and {len(retained) - args.limit} more")
        elif action == "top-k":
            if args.id is None:
                parser.error("top-k needs --id")
            answer = client.top_k(args.id, side=args.side, k=args.k)
            print(
                f"top {len(answer['matches'])} matches of {args.id!r} "
                f"at WAL offset {answer['offset']}"
            )
            for match in answer["matches"]:
                print(
                    f"  {match['entity_id']} (side {match['side']})  "
                    f"p={match['probability']:.6f}"
                )
        elif action == "insert":
            if args.id is None or args.text is None:
                parser.error("insert needs --id and --text")
            result = client.insert(
                make_profile(args.id, text=args.text), side=args.side
            )
            matches = ", ".join(
                f"{entity_id} (p={probability:.3f})"
                for entity_id, probability in result["matches"]
            )
            print(
                f"inserted {result['entity_id']!r} as node {result['node']}: "
                f"{result['num_new_pairs']} new pairs"
                + (f"; online matches: {matches}" if matches else "")
            )
        elif action == "remove":
            if args.id is None:
                parser.error("remove needs --id")
            result = client.remove(args.id, side=args.side)
            print(
                f"removed {result['entity_id']!r}: "
                f"{result['num_retracted_pairs']} pairs retracted"
            )
        elif action == "checkpoint":
            result = client.checkpoint()
            print(f"checkpoint written: {result['snapshot']}")
        elif action == "shutdown":
            client.shutdown()
            print("daemon is shutting down")
        else:  # pragma: no cover - argparse restricts the choices
            parser.error(f"unknown client action {action!r}")
    except ServeError as error:
        print(f"server error: {error}", file=sys.stderr)
        return 1
    except (ProtocolError, OSError) as error:
        print(f"connection error: {error}", file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0


def _run_trace(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Inspect a structured event log (``repro trace``)."""
    import os

    from .obs import (
        EVENT_LOG_ENV,
        read_events,
        render_event,
        render_event_summary,
        render_span_tree,
        summarize_events,
    )

    directory = args.log or os.environ.get(EVENT_LOG_ENV)
    if not directory:
        parser.error(
            "no event log: pass --log DIR or set the REPRO_EVENT_LOG "
            "environment variable"
        )
    events = read_events(directory)
    if not events:
        print(f"no events under {directory}")
        return 0
    if args.id is not None:
        matched = [event for event in events if event.get("trace") == args.id]
        if not matched:
            print(f"no events for trace {args.id!r} under {directory}", file=sys.stderr)
            return 1
        for event in matched:
            print(render_event(event))
            if event.get("spans"):
                print(render_span_tree(event["spans"]))
        return 0
    if args.slow is not None:
        requests = [event for event in events if event.get("type") == "request"]
        requests.sort(key=lambda event: -float(event.get("duration_ms", 0.0)))
        for event in requests[: max(0, args.slow)]:
            print(render_event(event))
            if event.get("spans"):
                print(render_span_tree(event["spans"]))
        return 0
    if args.tail is not None:
        for event in events[-max(0, args.tail):]:
            print(render_event(event))
        return 0
    print(render_event_summary(summarize_events(events)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generalized Supervised Meta-blocking — reproduction CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--datasets",
            nargs="+",
            default=list(ex.FAST_DATASET_SUBSET),
            choices=CLEAN_CLEAN_ORDER,
            help="Clean-Clean benchmark profiles to use",
        )
        sub.add_argument("--repetitions", type=int, default=1)
        sub.add_argument("--training-size", type=int, default=500, dest="training_size")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--max-set-size", type=int, default=3, dest="max_set_size")
        sub.add_argument(
            "--backend",
            choices=list(BACKENDS),
            default="sparse",
            help="feature-generation backend: 'sparse' (vectorized, default) "
            "or 'loop' (the per-pair reference oracle)",
        )
        sub.add_argument(
            "--blocking-backend",
            choices=list(BLOCKING_BACKENDS),
            default="array",
            dest="blocking_backend",
            help="block-preparation backend: 'array' (vectorized, default) "
            "or 'loop' (the object-based reference oracle)",
        )
        sub.add_argument(
            "--workers",
            type=_workers_argument,
            default=1,
            help="worker processes for the sharded execution engine "
            "(repro.parallel): a positive integer or 'auto' "
            "(cpu_count - 1); 1 (the default) is the exact single-process "
            "path, and every worker count produces identical results",
        )

    run_parser = subparsers.add_parser("run", help="regenerate one table/figure")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    add_common(run_parser)

    quickstart_parser = subparsers.add_parser("quickstart", help="run the quickstart pipeline")
    add_common(quickstart_parser)

    stream_parser = subparsers.add_parser(
        "stream",
        help="insert entities one at a time through the incremental "
        "meta-blocking session (repro.incremental)",
    )
    stream_parser.add_argument(
        "--dataset",
        default="DblpAcm",
        choices=CLEAN_CLEAN_ORDER,
        help="generated Clean-Clean benchmark to stream",
    )
    stream_parser.add_argument(
        "--dataset-dir",
        default=None,
        help="stream a CSV dataset directory (first.csv, second.csv, "
        "ground_truth.csv) instead of a generated benchmark",
    )
    stream_parser.add_argument(
        "--bootstrap",
        type=float,
        default=0.5,
        help="fraction of each collection used to train the frozen classifier",
    )
    stream_parser.add_argument(
        "--pruning",
        default="BLAST",
        choices=sorted(PRUNING_ALGORITHMS),
        help="batch pruning algorithm applied by the exact finalisation",
    )
    stream_parser.add_argument(
        "--online",
        default="wep",
        choices=("wep", "topk"),
        help="per-insert online policy: running WEP average or top-K queue",
    )
    stream_parser.add_argument(
        "--top-k", type=int, default=1000, dest="top_k",
        help="retention budget for the 'topk' online policy",
    )
    stream_parser.add_argument(
        "--limit", type=int, default=None, help="cap the number of streamed inserts"
    )
    stream_parser.add_argument(
        "--deletes",
        type=float,
        default=0.0,
        help="churn fraction: probability, after each insert, of retracting "
        "one random live entity (exercises the dynamic index)",
    )
    stream_parser.add_argument(
        "--scale", type=float, default=None,
        help="scale factor for the generated benchmark (smaller = faster)",
    )
    stream_parser.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="journal every session mutation to a write-ahead log in DIR "
        "(repro.persistence); after streaming, the session is recovered "
        "from the log and checked against the live answer",
    )
    stream_parser.add_argument(
        "--recover",
        action="store_true",
        help="skip training and streaming: recover the session persisted "
        "in --wal DIR and print its summary",
    )
    stream_parser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        dest="snapshot_every",
        metavar="N",
        help="write an automatic compacted checkpoint every N mutations "
        "while journaling (default: only the bootstrap snapshot)",
    )
    stream_parser.add_argument("--training-size", type=int, default=50, dest="training_size")
    stream_parser.add_argument("--seed", type=int, default=0)
    stream_parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="sparse",
        help="feature backend used while training the frozen classifier",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the persistent matching daemon (repro.serve): WAL-backed "
        "ingest with shard-affine workers and snapshot-consistent reads",
    )
    serve_parser.add_argument(
        "--wal",
        required=True,
        metavar="DIR",
        help="write-ahead log directory — the daemon's durable state",
    )
    serve_parser.add_argument(
        "--recover",
        action="store_true",
        help="resume the state persisted in --wal instead of starting empty",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = pick a free port; the bound port is announced "
        "on stdout as a JSON line)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=2,
        help="shard worker processes serving reads (signature-sharded "
        "replicas of the WAL)",
    )
    serve_parser.add_argument(
        "--dataset",
        default="DblpAcm",
        choices=CLEAN_CLEAN_ORDER,
        help="benchmark used to train the frozen classifier of a fresh "
        "daemon (ignored with --recover)",
    )
    serve_parser.add_argument(
        "--bootstrap", type=float, default=0.5,
        help="fraction of the dataset used to train the frozen classifier",
    )
    serve_parser.add_argument(
        "--pruning", default="BLAST", choices=sorted(PRUNING_ALGORITHMS),
        help="batch pruning algorithm behind the 'match' endpoint",
    )
    serve_parser.add_argument(
        "--online", default="wep", choices=("wep", "topk"),
        help="per-insert online policy",
    )
    serve_parser.add_argument("--top-k", type=int, default=1000, dest="top_k")
    serve_parser.add_argument(
        "--snapshot-every", type=int, default=None, dest="snapshot_every",
        metavar="N", help="automatic checkpoint every N mutations",
    )
    serve_parser.add_argument(
        "--wal-sync", default="always", choices=("always", "batch"),
        dest="wal_sync", help="fsync per record (default) or on checkpoint only",
    )
    serve_parser.add_argument(
        "--workers", type=_workers_argument, default=1,
        help="worker processes for bulk-insert tokenization (1 = inline)",
    )
    serve_parser.add_argument("--scale", type=float, default=None)
    serve_parser.add_argument("--training-size", type=int, default=50, dest="training_size")
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--backend", choices=list(BACKENDS), default="sparse",
        help="feature backend used while training the frozen classifier",
    )
    serve_parser.add_argument(
        "--degraded-reads", default="on", choices=("on", "off"),
        dest="degraded_reads",
        help="while a shard worker rebuilds: serve reads from the authority "
        "with degraded:true (on, default) or fail fast with 'unavailable' (off)",
    )
    serve_parser.add_argument(
        "--delta-shipping", default="on", choices=("on", "off"),
        dest="delta_shipping",
        help="ship only changed state on warm reads (on, default) or ship "
        "the full shard state on every read (off)",
    )
    serve_parser.add_argument(
        "--heartbeat-interval", type=float, default=1.0,
        dest="heartbeat_interval", metavar="SECONDS",
        help="supervisor heartbeat period for the shard workers",
    )
    serve_parser.add_argument(
        "--hang-timeout", type=float, default=5.0, dest="hang_timeout",
        metavar="SECONDS",
        help="missed-heartbeat / stuck-request window before a worker is "
        "declared wedged and respawned",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=256, dest="max_pending",
        metavar="N",
        help="bound on each dispatch queue; excess requests are shed with "
        "a typed 'overloaded' error",
    )
    serve_parser.add_argument(
        "--event-log", default=None, dest="event_log", metavar="DIR",
        help="write the structured JSON-lines event log (requests, WAL, "
        "supervision, faults) to DIR; defaults to $REPRO_EVENT_LOG; shard "
        "workers inherit the sink",
    )
    serve_parser.add_argument(
        "--tracing", default="on", choices=("on", "off"),
        help="record per-request span trees (asyncio loop, dispatch "
        "threads, WAL, shard fan-out) and attach them to request events",
    )
    serve_parser.add_argument(
        "--slow-ms", type=float, default=None, dest="slow_ms", metavar="MS",
        help="also journal a slow_request event for any request at or "
        "above this many milliseconds",
    )

    client_parser = subparsers.add_parser(
        "client",
        help="send one request to a running repro serve daemon",
    )
    client_parser.add_argument(
        "action",
        choices=(
            "ping", "stats", "metrics", "match", "top-k", "insert", "remove",
            "checkpoint", "shutdown",
        ),
    )
    client_parser.add_argument("--host", default="127.0.0.1")
    client_parser.add_argument("--port", type=int, required=True)
    client_parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-request socket timeout in seconds",
    )
    client_parser.add_argument(
        "--connect-timeout", type=float, default=5.0, dest="connect_timeout",
        metavar="SECONDS",
        help="total budget for connecting (retries while the daemon's "
        "listener is still binding)",
    )
    client_parser.add_argument(
        "--retries", type=int, default=2,
        help="re-send budget for retryable failures (idempotent ops, "
        "'overloaded' sheds, unsent requests)",
    )
    client_parser.add_argument(
        "--deadline-ms", type=float, default=None, dest="deadline_ms",
        metavar="MS", help="server-enforced per-request deadline",
    )
    client_parser.add_argument("--id", default=None, help="entity id")
    client_parser.add_argument(
        "--text", default=None, help="profile text for 'insert'"
    )
    client_parser.add_argument(
        "--side", type=int, default=0, choices=(0, 1),
        help="collection side of the entity",
    )
    client_parser.add_argument(
        "-k", type=int, default=10, help="result count for 'top-k'"
    )
    client_parser.add_argument(
        "--limit", type=int, default=20,
        help="retained pairs printed by 'match'",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect a structured event log (repro.obs): render one "
        "request's span tree by trace id, tail recent events, or "
        "summarize the log",
    )
    trace_parser.add_argument(
        "id", nargs="?", default=None,
        help="trace id to render (the 'trace' field of responses and "
        "event records)",
    )
    trace_parser.add_argument(
        "--log", default=None, metavar="DIR",
        help="event-log directory (defaults to $REPRO_EVENT_LOG)",
    )
    trace_parser.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="print the last N events, merged across processes",
    )
    trace_parser.add_argument(
        "--slow", type=int, default=None, metavar="N",
        help="print the N slowest requests with their span trees",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    from .parallel import resolve_workers

    if getattr(args, "workers", 1) and resolve_workers(getattr(args, "workers", 1)) > 1:
        if getattr(args, "backend", "sparse") == "loop":
            parser.error(
                "--workers above 1 requires the 'sparse' feature backend; "
                "'loop' is the single-process reference oracle"
            )
        if getattr(args, "blocking_backend", "array") == "loop":
            parser.error(
                "--workers above 1 requires the 'array' blocking backend; "
                "'loop' is the single-process reference oracle"
            )

    if args.command == "list":
        print("Available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    if args.command == "quickstart":
        print(_run_quickstart(args))
        return 0
    if args.command == "stream":
        print(_run_stream(args, parser))
        return 0
    if args.command == "serve":
        return _run_serve(args, parser)
    if args.command == "client":
        return _run_client(args, parser)
    if args.command == "trace":
        return _run_trace(args, parser)
    if args.command == "run":
        print(EXPERIMENTS[args.experiment](args))
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
