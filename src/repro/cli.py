"""Command-line interface for the reproduction.

Usage::

    python -m repro list                       # list the available experiments
    python -m repro run table2                 # regenerate one table/figure
    python -m repro run fig5 --datasets AbtBuy DblpAcm --repetitions 2
    python -m repro quickstart                 # run the quickstart pipeline

Every ``run`` command prints the same rows/series the paper reports for that
experiment (the benches in ``benchmarks/`` are the pytest-integrated variant
of the same calls).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from . import experiments as ex
from .datasets import CLEAN_CLEAN_ORDER
from .weights import BACKENDS


def _config_from_args(args: argparse.Namespace) -> ex.ExperimentConfig:
    return ex.ExperimentConfig(
        dataset_names=tuple(args.datasets),
        repetitions=args.repetitions,
        training_size=args.training_size,
        seed=args.seed,
        backend=args.backend,
    )


def _run_table2(args: argparse.Namespace) -> str:
    rows = ex.run_block_quality(tuple(args.datasets), seed=args.seed)
    return ex.format_block_quality(rows)


def _run_fig5(args: argparse.Namespace) -> str:
    return ex.format_pruning_selection(
        ex.run_figure5(_config_from_args(args)), "Figure 5 — weight-based pruning algorithms"
    )


def _run_fig6(args: argparse.Namespace) -> str:
    return ex.format_pruning_selection(
        ex.run_figure6(_config_from_args(args)), "Figure 6 — cardinality-based pruning algorithms"
    )


def _run_tables34(args: argparse.Namespace) -> str:
    parts = []
    for algorithm in ("BLAST", "RCNP"):
        result = ex.run_feature_selection(
            algorithm, _config_from_args(args), max_set_size=args.max_set_size
        )
        parts.append(ex.format_feature_selection(result))
    return "\n\n".join(parts)


def _run_fig8(args: argparse.Namespace) -> str:
    return ex.format_figure8(ex.run_figure8(_config_from_args(args)))


def _run_fig10(args: argparse.Namespace) -> str:
    return ex.format_figure10(
        ex.run_figure10(_config_from_args(args), dataset_names=tuple(args.datasets[:2]))
    )


def _run_training_size(args: argparse.Namespace) -> str:
    parts = []
    for algorithm, figure in (("BLAST", "11"), ("RCNP", "14")):
        points = ex.run_training_size_sweep(
            algorithm, _config_from_args(args), sizes=ex.FAST_TRAINING_SIZES
        )
        parts.append(
            ex.format_training_size(points, f"Figure {figure} — training-set size for {algorithm}")
        )
    return "\n\n".join(parts)


def _run_fig12(args: argparse.Namespace) -> str:
    snapshots = ex.run_probability_density(
        args.datasets[0], training_sizes=(50, 200, 500), config=_config_from_args(args)
    )
    return ex.format_probability_density(snapshots)


def _run_table5(args: argparse.Namespace) -> str:
    return ex.format_final_comparison(ex.run_table5(_config_from_args(args)))


def _run_table7(args: argparse.Namespace) -> str:
    return ex.format_final_comparison(ex.run_table7(_config_from_args(args)))


def _run_fig1516(args: argparse.Namespace) -> str:
    distributions = ex.run_common_block_distribution(
        tuple(args.datasets), _config_from_args(args)
    )
    return ex.format_common_blocks(
        distributions, "Figures 15/16 — duplicates per number of common blocks"
    )


def _run_scalability(args: argparse.Namespace) -> str:
    config = ex.ExperimentConfig(
        repetitions=args.repetitions, seed=args.seed, backend=args.backend
    )
    result = ex.run_scalability(config, dataset_names=("D10K", "D50K", "D100K"), scale=0.02)
    table6 = ex.run_table6("D100K", iterations=3, config=config, scale=0.01)
    return "\n\n".join(
        [ex.format_scalability(result), ex.format_speedups(result), ex.format_table6(table6)]
    )


#: Experiment ids accepted by ``python -m repro run <id>``.
EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table2": _run_table2,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "tables3-4": _run_tables34,
    "fig8": _run_fig8,
    "fig10": _run_fig10,
    "fig11-14": _run_training_size,
    "fig12": _run_fig12,
    "table5": _run_table5,
    "table7": _run_table7,
    "fig15-16": _run_fig1516,
    "fig17-18": _run_scalability,
}


def _run_quickstart(args: argparse.Namespace) -> str:
    from . import (
        GeneralizedSupervisedMetaBlocking,
        evaluate_candidates,
        evaluate_result,
        load_benchmark,
        prepare_blocks,
    )

    dataset = load_benchmark(args.datasets[0], seed=args.seed)
    prepared = prepare_blocks(dataset.first, dataset.second)
    before = evaluate_candidates(prepared.candidates, dataset.ground_truth)
    pipeline = GeneralizedSupervisedMetaBlocking(
        pruning="BLAST",
        training_size=args.training_size,
        seed=args.seed,
        backend=args.backend,
    )
    result = pipeline.run(prepared.blocks, prepared.candidates, dataset.ground_truth)
    after = evaluate_result(result, dataset.ground_truth)
    return (
        f"{dataset.name}: {len(prepared.candidates)} candidate pairs\n"
        f"  before meta-blocking: recall={before.recall:.3f} precision={before.precision:.5f}\n"
        f"  after  meta-blocking: recall={after.recall:.3f} precision={after.precision:.3f} "
        f"f1={after.f1:.3f} ({result.retained_count} pairs retained)"
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generalized Supervised Meta-blocking — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--datasets",
            nargs="+",
            default=list(ex.FAST_DATASET_SUBSET),
            choices=CLEAN_CLEAN_ORDER,
            help="Clean-Clean benchmark profiles to use",
        )
        sub.add_argument("--repetitions", type=int, default=1)
        sub.add_argument("--training-size", type=int, default=500, dest="training_size")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--max-set-size", type=int, default=3, dest="max_set_size")
        sub.add_argument(
            "--backend",
            choices=list(BACKENDS),
            default="loop",
            help="feature-generation backend: 'loop' (reference) or 'sparse' (vectorized)",
        )

    run_parser = subparsers.add_parser("run", help="regenerate one table/figure")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    add_common(run_parser)

    quickstart_parser = subparsers.add_parser("quickstart", help="run the quickstart pipeline")
    add_common(quickstart_parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("Available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    if args.command == "quickstart":
        print(_run_quickstart(args))
        return 0
    if args.command == "run":
        print(EXPERIMENTS[args.experiment](args))
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
