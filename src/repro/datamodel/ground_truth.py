"""Ground truth of duplicate pairs.

The ground truth ``D`` is the set of matching entity pairs.  It is used to
label training instances, to evaluate block collections and pruned candidate
sets, and to drive the undersampling procedure of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .candidates import CandidateSet
from .entity import EntityCollection, EntityIndexSpace


class GroundTruth:
    """The set of known duplicate pairs, stored as canonical node id tuples."""

    def __init__(self, pairs: Iterable[Tuple[int, int]], index_space: EntityIndexSpace) -> None:
        canonical: Set[Tuple[int, int]] = set()
        for i, j in pairs:
            if i == j:
                raise ValueError("an entity cannot be a duplicate of itself")
            canonical.add((i, j) if i < j else (j, i))
        self._pairs = canonical
        self.index_space = index_space
        self._packed: Optional[np.ndarray] = None
        self._packed_stride: int = 0

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_id_pairs(
        cls,
        id_pairs: Iterable[Tuple[str, str]],
        first: EntityCollection,
        second: Optional[EntityCollection] = None,
    ) -> "GroundTruth":
        """Build from entity-id pairs of one (dirty) or two (clean) collections.

        For Clean-Clean ER, the first id of each pair must belong to ``first``
        and the second id to ``second``.
        """
        if second is None:
            space = EntityIndexSpace(len(first))
            pairs = [
                (first.index_of(a), first.index_of(b)) for a, b in id_pairs
            ]
        else:
            space = EntityIndexSpace(len(first), len(second))
            pairs = [
                (space.node_of_first(first.index_of(a)), space.node_of_second(second.index_of(b)))
                for a, b in id_pairs
            ]
        return cls(pairs, space)

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._pairs))

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        i, j = pair
        key = (i, j) if i < j else (j, i)
        return key in self._pairs

    def pairs(self) -> Set[Tuple[int, int]]:
        """Return a copy of the duplicate pair set."""
        return set(self._pairs)

    # -- labelling --------------------------------------------------------------
    def is_match(self, i: int, j: int) -> bool:
        """True when nodes ``i`` and ``j`` are duplicates."""
        return (i, j) in self

    def packed_pairs(self) -> np.ndarray:
        """The duplicate pairs as sorted packed ``i * stride + j`` keys (cached).

        The stride is ``max(index_space.total, largest pair id + 1, 1)`` so
        packing is collision-free even for pairs constructed outside the
        declared index space; the packed form powers the vectorized
        :meth:`labels_for` lookup.
        """
        if self._packed is None:
            stride = max(self.index_space.total, 1)
            if self._pairs:
                # pairs are canonical (i < j), so j carries the largest id
                stride = max(stride, max(j for _, j in self._pairs) + 1)
                keys = np.fromiter(
                    (i * stride + j for i, j in self._pairs),
                    dtype=np.int64,
                    count=len(self._pairs),
                )
                keys.sort()
            else:
                keys = np.empty(0, dtype=np.int64)
            self._packed = keys
            self._packed_stride = stride
        return self._packed

    def labels_for(self, candidates: CandidateSet) -> np.ndarray:
        """Return a boolean label per candidate pair (True = matching).

        The array is aligned with the candidate set's storage order, so it can
        be used directly as classification target or evaluation reference.
        Labels are computed by a packed-key ``np.searchsorted`` lookup — no
        per-pair tuple allocations; :meth:`labels_for_pairs` remains the
        dict-style reference (and the fallback when the candidate node ids
        exceed the packing stride).
        """
        if len(candidates) == 0:
            return np.zeros(0, dtype=bool)
        packed = self.packed_pairs()
        if packed.size == 0:
            return np.zeros(len(candidates), dtype=bool)
        stride = self._packed_stride
        if int(candidates.right.max()) >= stride:
            return self.labels_for_pairs(candidates)
        keys = candidates.left * np.int64(stride) + candidates.right
        positions = np.minimum(np.searchsorted(packed, keys), packed.size - 1)
        return packed[positions] == keys

    def labels_for_pairs(self, candidates: CandidateSet) -> np.ndarray:
        """Reference per-pair labelling over the canonical tuple set.

        Kept for API compatibility (and as the oracle the vectorized
        :meth:`labels_for` is tested against).
        """
        labels = np.zeros(len(candidates), dtype=bool)
        pair_set = self._pairs
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            if (int(i), int(j)) in pair_set:
                labels[position] = True
        return labels

    def covered_by(self, candidates: CandidateSet) -> int:
        """Number of duplicate pairs present in the candidate set."""
        index = candidates.position_index()
        return sum(1 for pair in self._pairs if pair in index)

    def missed_by(self, candidates: CandidateSet) -> Set[Tuple[int, int]]:
        """Duplicate pairs absent from the candidate set (blocking misses)."""
        index = candidates.position_index()
        return {pair for pair in self._pairs if pair not in index}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroundTruth(duplicates={len(self)})"
