"""Entity Resolution data model: entities, blocks, candidate pairs, ground truth."""

from .block import Block, BlockCollection, build_bilateral_blocks, build_unilateral_blocks
from .candidates import CandidatePair, CandidateSet
from .entity import (
    EntityCollection,
    EntityIndexSpace,
    EntityProfile,
    collection_from_dicts,
    make_profile,
)
from .ground_truth import GroundTruth

__all__ = [
    "Block",
    "BlockCollection",
    "CandidatePair",
    "CandidateSet",
    "EntityCollection",
    "EntityIndexSpace",
    "EntityProfile",
    "GroundTruth",
    "build_bilateral_blocks",
    "build_unilateral_blocks",
    "collection_from_dicts",
    "make_profile",
]
