"""Entity profile data model.

The paper (Section 2) defines an *entity profile* as a set of textual
name-value pairs.  This simple model accommodates structured records
(relational tuples), semi-structured entity descriptions (RDF, JSON) and
free text, which is what makes schema-agnostic blocking applicable.

Two containers are provided:

* :class:`EntityProfile` — a single entity with an identifier and its
  attribute name/value pairs.
* :class:`EntityCollection` — an ordered, indexable collection of profiles,
  flagged as *clean* (duplicate-free, for Clean-Clean ER) or *dirty*
  (may contain duplicates, for Dirty ER / deduplication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class EntityProfile:
    """A single entity described by textual name/value pairs.

    Parameters
    ----------
    entity_id:
        Application-level identifier, unique within its collection.
    attributes:
        Mapping from attribute name to attribute value.  Values are kept as
        strings; ``None`` and empty values are allowed and simply contribute
        no blocking signatures.
    """

    entity_id: str
    attributes: Mapping[str, str] = field(default_factory=dict)

    def values(self) -> List[str]:
        """Return all non-empty attribute values."""
        return [value for value in self.attributes.values() if value]

    def text(self) -> str:
        """Return the concatenation of all attribute values.

        Schema-agnostic blocking treats the profile as a bag of tokens drawn
        from every attribute value, so the concatenated text is the natural
        input to signature extraction.
        """
        return " ".join(self.values())

    def attribute(self, name: str, default: str = "") -> str:
        """Return the value of ``name`` or ``default`` when absent/empty."""
        value = self.attributes.get(name)
        return value if value else default

    def is_empty(self) -> bool:
        """Return ``True`` when the profile carries no non-empty value."""
        return not self.values()

    def __len__(self) -> int:
        return len(self.attributes)


class EntityCollection:
    """An ordered collection of :class:`EntityProfile` objects.

    The collection assigns every profile a dense integer index (its position)
    used throughout the library: blocks, candidate pairs and feature matrices
    all reference entities by index, which keeps the hot paths array-friendly.

    Parameters
    ----------
    profiles:
        The entity profiles, in a stable order.
    name:
        Human-readable name (e.g. the source dataset name).
    is_clean:
        ``True`` when the collection is known to be duplicate-free
        (Clean-Clean ER source), ``False`` for dirty collections.
    """

    def __init__(
        self,
        profiles: Iterable[EntityProfile],
        name: str = "collection",
        is_clean: bool = True,
    ) -> None:
        self.name = name
        self.is_clean = is_clean
        self._profiles: List[EntityProfile] = list(profiles)
        self._id_to_index: Dict[str, int] = {}
        for index, profile in enumerate(self._profiles):
            if profile.entity_id in self._id_to_index:
                raise ValueError(
                    f"duplicate entity_id {profile.entity_id!r} in collection {name!r}"
                )
            self._id_to_index[profile.entity_id] = index

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[EntityProfile]:
        return iter(self._profiles)

    def __getitem__(self, index: int) -> EntityProfile:
        return self._profiles[index]

    def __contains__(self, entity_id: object) -> bool:
        return entity_id in self._id_to_index

    # -- lookups -------------------------------------------------------------
    def index_of(self, entity_id: str) -> int:
        """Return the dense index of ``entity_id``.

        Raises
        ------
        KeyError
            If the identifier is unknown.
        """
        return self._id_to_index[entity_id]

    def by_id(self, entity_id: str) -> EntityProfile:
        """Return the profile with the given identifier."""
        return self._profiles[self._id_to_index[entity_id]]

    def ids(self) -> List[str]:
        """Return all entity identifiers in collection order."""
        return [profile.entity_id for profile in self._profiles]

    def attribute_names(self) -> List[str]:
        """Return the sorted union of attribute names across all profiles."""
        names = set()
        for profile in self._profiles:
            names.update(profile.attributes.keys())
        return sorted(names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "clean" if self.is_clean else "dirty"
        return f"EntityCollection(name={self.name!r}, size={len(self)}, {kind})"


def make_profile(entity_id: str, **attributes: str) -> EntityProfile:
    """Convenience constructor used heavily in tests and examples."""
    return EntityProfile(entity_id=entity_id, attributes=dict(attributes))


def collection_from_dicts(
    rows: Sequence[Mapping[str, str]],
    id_field: Optional[str] = None,
    name: str = "collection",
    is_clean: bool = True,
) -> EntityCollection:
    """Build an :class:`EntityCollection` from a sequence of dictionaries.

    Parameters
    ----------
    rows:
        One mapping per entity.  Keys become attribute names.
    id_field:
        Key holding the entity identifier.  When ``None``, sequential ids
        ``"0", "1", ...`` are assigned.
    name, is_clean:
        Forwarded to :class:`EntityCollection`.
    """
    profiles = []
    for position, row in enumerate(rows):
        if id_field is not None:
            if id_field not in row:
                raise KeyError(f"row {position} misses id field {id_field!r}")
            entity_id = str(row[id_field])
            attributes = {k: str(v) for k, v in row.items() if k != id_field and v is not None}
        else:
            entity_id = str(position)
            attributes = {k: str(v) for k, v in row.items() if v is not None}
        profiles.append(EntityProfile(entity_id=entity_id, attributes=attributes))
    return EntityCollection(profiles, name=name, is_clean=is_clean)


@dataclass(frozen=True)
class EntityIndexSpace:
    """Describes how entity indices of one or two collections map to node ids.

    In Clean-Clean ER the blocking graph contains nodes for both collections.
    We assign node ids ``0 .. |E1|-1`` to the first collection and
    ``|E1| .. |E1|+|E2|-1`` to the second one.  In Dirty ER there is a single
    collection and node ids coincide with entity indices.
    """

    size_first: int
    size_second: int = 0

    @property
    def total(self) -> int:
        """Total number of node ids."""
        return self.size_first + self.size_second

    @property
    def is_clean_clean(self) -> bool:
        """True when two collections are involved."""
        return self.size_second > 0

    def node_of_first(self, index: int) -> int:
        """Node id of the ``index``-th entity of the first collection."""
        if not 0 <= index < self.size_first:
            raise IndexError(f"index {index} out of range for first collection")
        return index

    def node_of_second(self, index: int) -> int:
        """Node id of the ``index``-th entity of the second collection."""
        if not self.is_clean_clean:
            raise ValueError("no second collection in a Dirty ER index space")
        if not 0 <= index < self.size_second:
            raise IndexError(f"index {index} out of range for second collection")
        return self.size_first + index

    def side_of(self, node: int) -> Tuple[int, int]:
        """Return ``(side, local_index)`` for a node id.

        ``side`` is 0 for the first collection and 1 for the second.
        """
        if not 0 <= node < self.total:
            raise IndexError(f"node {node} out of range")
        if node < self.size_first:
            return 0, node
        return 1, node - self.size_first
