"""Blocks and block collections.

A *block* groups together the entities that share a blocking signature
(e.g. a token).  A *block collection* is the set of blocks produced by a
blocking method; the paper operates on *redundancy-positive* collections,
where the number of blocks two entities share is proportional to their
matching likelihood.

Entities inside blocks are referenced by node id (see
:class:`repro.datamodel.entity.EntityIndexSpace`): in Clean-Clean ER a block
keeps two separate node lists (one per source collection) so that only
cross-collection pairs are candidate comparisons; in Dirty ER a single list
is kept and every intra-block pair is a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .entity import EntityIndexSpace


@dataclass
class Block:
    """A single block.

    Parameters
    ----------
    key:
        The blocking signature (token, q-gram, suffix, ...).
    entities_first:
        Node ids of entities from the first (or only) collection.
    entities_second:
        Node ids from the second collection; empty for Dirty ER blocks.
    """

    key: str
    entities_first: List[int] = field(default_factory=list)
    entities_second: List[int] = field(default_factory=list)

    @property
    def is_bilateral(self) -> bool:
        """True for Clean-Clean ER blocks holding entities from two sources."""
        return bool(self.entities_second)

    def size(self) -> int:
        """Number of entities in the block (both sides)."""
        return len(self.entities_first) + len(self.entities_second)

    def cardinality(self) -> int:
        """Number of comparisons the block spawns (``||b||`` in the paper).

        Bilateral blocks only compare across sources; unilateral (dirty)
        blocks compare every intra-block pair.
        """
        if self.is_bilateral:
            return len(self.entities_first) * len(self.entities_second)
        inner = len(self.entities_first)
        return inner * (inner - 1) // 2

    def all_entities(self) -> List[int]:
        """All node ids contained in the block."""
        return list(self.entities_first) + list(self.entities_second)

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Yield every comparison (pair of node ids) the block spawns.

        Pairs are emitted with the smaller node id first for unilateral
        blocks, and as (first-side node, second-side node) for bilateral
        blocks; both conventions yield a canonical orientation because in the
        bilateral case first-side node ids are always smaller than
        second-side ones.
        """
        if self.is_bilateral:
            for i in self.entities_first:
                for j in self.entities_second:
                    yield (i, j)
        else:
            inner = self.entities_first
            for a in range(len(inner)):
                for b in range(a + 1, len(inner)):
                    i, j = inner[a], inner[b]
                    yield (i, j) if i < j else (j, i)

    def __len__(self) -> int:
        return self.size()


class BlockCollection:
    """An ordered collection of :class:`Block` objects plus bookkeeping.

    Parameters
    ----------
    blocks:
        The blocks, in a stable order; block ids are their positions.
    index_space:
        The entity/node id space the blocks refer to.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        blocks: Iterable[Block],
        index_space: EntityIndexSpace,
        name: str = "blocks",
    ) -> None:
        self.name = name
        self.index_space = index_space
        self._blocks: List[Block] = list(blocks)

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, block_id: int) -> Block:
        return self._blocks[block_id]

    # -- aggregates ------------------------------------------------------------
    def total_comparisons(self) -> int:
        """Sum of per-block cardinalities, ``||B||`` in the paper."""
        return sum(block.cardinality() for block in self._blocks)

    def total_block_assignments(self) -> int:
        """Sum of block sizes, i.e. number of (entity, block) memberships."""
        return sum(block.size() for block in self._blocks)

    def entity_block_index(self) -> Dict[int, List[int]]:
        """Map every node id to the sorted list of block ids containing it.

        This is the ``B_i`` structure the weighting schemes are defined on.
        """
        index: Dict[int, List[int]] = {}
        for block_id, block in enumerate(self._blocks):
            for node in block.all_entities():
                index.setdefault(node, []).append(block_id)
        return index

    def membership_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten into parallel ``(block_ids, node_ids)`` membership arrays.

        One entry per (entity, block) assignment, in block order.  This is the
        array-native form of :meth:`entity_block_index` consumed by the CSR
        builders in :mod:`repro.weights.sparse`.
        """
        block_parts: List[np.ndarray] = []
        node_parts: List[np.ndarray] = []
        for block_id, block in enumerate(self._blocks):
            members = block.all_entities()
            if members:
                node_parts.append(np.asarray(members, dtype=np.int64))
                block_parts.append(np.full(len(members), block_id, dtype=np.int64))
        if not block_parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(block_parts), np.concatenate(node_parts)

    def average_blocks_per_entity(self) -> float:
        """Average number of block memberships per entity that appears in B."""
        index = self.entity_block_index()
        if not index:
            return 0.0
        return sum(len(blocks) for blocks in index.values()) / len(index)

    def without_empty_blocks(self) -> "BlockCollection":
        """Return a copy that drops blocks spawning no comparison."""
        kept = [block for block in self._blocks if block.cardinality() > 0]
        return BlockCollection(kept, self.index_space, name=self.name)

    def block_sizes(self) -> List[int]:
        """Return the size (|b|) of every block."""
        return [block.size() for block in self._blocks]

    def block_cardinalities(self) -> List[int]:
        """Return the comparison cardinality (||b||) of every block."""
        return [block.cardinality() for block in self._blocks]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockCollection(name={self.name!r}, blocks={len(self)}, "
            f"comparisons={self.total_comparisons()})"
        )


def build_bilateral_blocks(
    signatures_first: Dict[str, List[int]],
    signatures_second: Dict[str, List[int]],
    index_space: EntityIndexSpace,
    name: str = "blocks",
) -> BlockCollection:
    """Assemble Clean-Clean ER blocks from per-source signature indexes.

    Only signatures appearing in *both* sources yield a block, because a
    block with entities from a single source spawns no cross-source
    comparison.
    """
    blocks = []
    for key in sorted(set(signatures_first) & set(signatures_second)):
        blocks.append(
            Block(
                key=key,
                entities_first=sorted(signatures_first[key]),
                entities_second=sorted(signatures_second[key]),
            )
        )
    return BlockCollection(blocks, index_space, name=name)


def build_unilateral_blocks(
    signatures: Dict[str, List[int]],
    index_space: EntityIndexSpace,
    name: str = "blocks",
    min_block_size: int = 2,
) -> BlockCollection:
    """Assemble Dirty ER blocks from a signature index.

    Blocks with fewer than ``min_block_size`` entities spawn no comparison
    and are dropped.
    """
    blocks = []
    for key in sorted(signatures):
        members = sorted(set(signatures[key]))
        if len(members) >= min_block_size:
            blocks.append(Block(key=key, entities_first=members))
    return BlockCollection(blocks, index_space, name=name)
