"""Candidate pairs and candidate sets.

After redundancy removal, every distinct pair of entities co-occurring in at
least one block becomes a *candidate pair* (a comparison).  The
:class:`CandidateSet` stores the distinct pairs in two parallel NumPy arrays
(left node ids, right node ids), which keeps downstream feature generation
and pruning vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .block import BlockCollection
from .entity import EntityIndexSpace


@dataclass(frozen=True)
class CandidatePair:
    """A single comparison between two entities, referenced by node id."""

    left: int
    right: int

    def canonical(self) -> "CandidatePair":
        """Return the pair with the smaller node id first."""
        if self.left <= self.right:
            return self
        return CandidatePair(self.right, self.left)

    def as_tuple(self) -> Tuple[int, int]:
        return (self.left, self.right)


class CandidateSet:
    """The distinct candidate pairs of a block collection.

    Parameters
    ----------
    left, right:
        Parallel integer arrays of node ids; pair ``k`` is
        ``(left[k], right[k])`` with ``left[k] < right[k]``.
    index_space:
        The node id space the pairs refer to.
    """

    def __init__(
        self,
        left: np.ndarray,
        right: np.ndarray,
        index_space: EntityIndexSpace,
    ) -> None:
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError("left/right arrays must have the same shape")
        if left.size and np.any(left >= right):
            raise ValueError("candidate pairs must be canonical (left < right)")
        self.left = left
        self.right = right
        self.index_space = index_space
        self._position: Optional[Dict[Tuple[int, int], int]] = None

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, int]],
        index_space: EntityIndexSpace,
    ) -> "CandidateSet":
        """Build a candidate set from (possibly repeated) pair tuples."""
        unique: Set[Tuple[int, int]] = set()
        for i, j in pairs:
            if i == j:
                raise ValueError("a candidate pair cannot relate an entity to itself")
            unique.add((i, j) if i < j else (j, i))
        ordered = sorted(unique)
        if ordered:
            left = np.fromiter((p[0] for p in ordered), dtype=np.int64, count=len(ordered))
            right = np.fromiter((p[1] for p in ordered), dtype=np.int64, count=len(ordered))
        else:
            left = np.empty(0, dtype=np.int64)
            right = np.empty(0, dtype=np.int64)
        return cls(left, right, index_space)

    @classmethod
    def from_packed_keys(
        cls, keys: np.ndarray, index_space: EntityIndexSpace
    ) -> "CandidateSet":
        """Build from sorted distinct packed keys ``left * total + right``.

        ``total`` is ``max(index_space.total, 1)`` — the stride the array
        blocking backend packs candidate pairs with.  No tuples or Python
        sets are materialized.
        """
        total = np.int64(max(index_space.total, 1))
        keys = np.asarray(keys, dtype=np.int64)
        return cls(keys // total, keys % total, index_space)

    @classmethod
    def from_blocks(cls, blocks: BlockCollection) -> "CandidateSet":
        """Extract the distinct candidate pairs of a block collection.

        This is the redundancy-removal step: pairs repeated across blocks are
        kept once.
        """
        seen: Set[Tuple[int, int]] = set()
        for block in blocks:
            seen.update(block.pairs())
        return cls.from_pairs(seen, blocks.index_space)

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.left.size)

    def __iter__(self) -> Iterator[CandidatePair]:
        for i, j in zip(self.left.tolist(), self.right.tolist()):
            yield CandidatePair(i, j)

    def pair_at(self, position: int) -> CandidatePair:
        """Return the ``position``-th pair."""
        return CandidatePair(int(self.left[position]), int(self.right[position]))

    def as_tuples(self) -> List[Tuple[int, int]]:
        """Return all pairs as a list of tuples (left < right)."""
        return list(zip(self.left.tolist(), self.right.tolist()))

    def position_index(self) -> Dict[Tuple[int, int], int]:
        """Map every canonical pair tuple to its array position (cached)."""
        if self._position is None:
            self._position = {
                (int(i), int(j)): k
                for k, (i, j) in enumerate(zip(self.left, self.right))
            }
        return self._position

    def contains(self, i: int, j: int) -> bool:
        """True when the (canonical form of the) pair is in the set."""
        key = (i, j) if i < j else (j, i)
        return key in self.position_index()

    def subset(self, mask: np.ndarray) -> "CandidateSet":
        """Return the pairs selected by a boolean mask or index array."""
        mask = np.asarray(mask)
        return CandidateSet(self.left[mask], self.right[mask], self.index_space)

    def packed_keys(self) -> np.ndarray:
        """``left * total + right`` per pair — a unique int64 key per pair.

        ``total`` is ``max(index_space.total, 1)``, the same stride
        :meth:`from_packed_keys` unpacks with.  The cardinality-based pruning
        algorithms use these keys to break probability ties deterministically:
        the retained set becomes a pure function of the ``(weight, pair)``
        multiset, independent of candidate storage order.
        """
        total = np.int64(max(self.index_space.total, 1))
        return self.left * total + self.right

    def node_degrees(self) -> np.ndarray:
        """Number of candidate pairs per node id (the LCP feature's basis)."""
        degrees = np.zeros(self.index_space.total, dtype=np.int64)
        np.add.at(degrees, self.left, 1)
        np.add.at(degrees, self.right, 1)
        return degrees

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CandidateSet(pairs={len(self)})"
