"""Feature-vector generation for candidate pairs.

Supervised Meta-blocking represents every candidate pair as a feature vector
whose components are weighting-scheme scores (paper Section 2.1).  The
generator assembles the requested schemes into an ``(n_pairs, n_features)``
matrix, recording the time spent per scheme so the run-time experiments can
attribute cost to individual features (LCP being the expensive one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datamodel import BlockCollection, CandidateSet
from ..utils.timing import StageTimer
from ..weights import BlockStatistics, get_schemes
from ..weights.registry import ORIGINAL_FEATURE_SET
from ..weights.sparse import resolve_backend


@dataclass
class FeatureMatrix:
    """A feature matrix plus its column metadata."""

    #: the (n_pairs, n_features) feature values
    values: np.ndarray
    #: column labels, e.g. ["CF-IBF", "RACCB", "LCP(e_i)", "LCP(e_j)"]
    columns: Tuple[str, ...]
    #: the scheme names the matrix was generated from
    feature_set: Tuple[str, ...]
    #: seconds spent computing each scheme
    scheme_seconds: Dict[str, float] = field(default_factory=dict)
    #: the feature backend that produced the values ("loop" or "sparse")
    backend: str = "loop"

    @property
    def n_pairs(self) -> int:
        """Number of candidate pairs (rows)."""
        return int(self.values.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return int(self.values.shape[1])

    def column_index(self, label: str) -> int:
        """Position of a column label.

        Raises
        ------
        KeyError
            Naming the available columns when ``label`` is not one of them.
        """
        try:
            return self.columns.index(label)
        except ValueError:
            available = ", ".join(repr(column) for column in self.columns)
            raise KeyError(
                f"unknown feature column {label!r}; available columns: {available}"
            ) from None

    def select(self, rows: np.ndarray) -> np.ndarray:
        """Return the feature values of the selected rows."""
        return self.values[rows]


class FeatureVectorGenerator:
    """Generate feature matrices for a configurable set of weighting schemes.

    Parameters
    ----------
    feature_set:
        Scheme names (see :mod:`repro.weights.registry`).  Defaults to the
        optimal set of Supervised Meta-blocking [21].
    backend:
        ``"loop"`` (per-pair reference implementation, the default) or
        ``"sparse"`` (vectorized batched implementation, see
        :mod:`repro.weights.sparse`).  Both produce identical matrices.
    workers:
        Worker-process count (or ``"auto"``) for the sharded co-occurrence
        pass of :mod:`repro.parallel.features`.  Requires the ``sparse``
        backend when above 1; the default ``1`` is the exact single-process
        path, and every worker count produces bit-identical matrices.
    """

    def __init__(
        self,
        feature_set: Sequence[str] = ORIGINAL_FEATURE_SET,
        backend: str = "loop",
        workers=1,
    ) -> None:
        names = tuple(feature_set)
        if not names:
            raise ValueError("feature_set must contain at least one scheme")
        self.feature_set = names
        self.backend = resolve_backend(backend)
        from ..parallel.executor import resolve_workers

        self.workers = resolve_workers(workers)
        if self.workers > 1 and self.backend != "sparse":
            raise ValueError(
                "workers > 1 requires the 'sparse' feature backend; the "
                "'loop' backend is the single-process reference oracle"
            )
        self._schemes = get_schemes(names)

    @property
    def schemes(self) -> Tuple:
        """The instantiated weighting-scheme objects, in feature-set order."""
        return tuple(self._schemes)

    @property
    def columns(self) -> Tuple[str, ...]:
        """Column labels of the matrices this generator produces."""
        labels: List[str] = []
        for scheme in self._schemes:
            if scheme.width == 1:
                labels.append(scheme.name)
            else:
                labels.extend(f"{scheme.name}(e_{side})" for side in ("i", "j"))
        return tuple(labels)

    def generate(
        self,
        candidates: CandidateSet,
        stats: BlockStatistics,
        timer: Optional[StageTimer] = None,
        executor=None,
    ) -> FeatureMatrix:
        """Compute the feature matrix for ``candidates``.

        Parameters
        ----------
        candidates:
            The distinct candidate pairs.
        stats:
            Precomputed block statistics of the underlying block collection.
        timer:
            Optional :class:`StageTimer`; feature-generation time is added to
            its ``"features"`` stage.
        executor:
            Optional live :class:`repro.parallel.ParallelExecutor` to reuse
            when ``workers > 1`` (one is created and closed around the
            generation otherwise).
        """
        columns: List[np.ndarray] = []
        scheme_seconds: Dict[str, float] = {}
        local_timer = StageTimer()
        workers = executor.workers if executor is not None else self.workers
        if workers > 1 and isinstance(stats, BlockStatistics):
            # compute the expensive ingredients (co-occurrence pass, LCP)
            # across workers and seed the statistics caches; the schemes
            # below then run unchanged on the cached aggregates
            from ..parallel.executor import ParallelExecutor
            from ..parallel.features import prefill_feature_caches

            with local_timer.stage("parallel-precompute"):
                owned = executor is None
                live = executor if executor is not None else ParallelExecutor(workers)
                try:
                    prefill_feature_caches(stats, candidates, self.feature_set, live)
                finally:
                    if owned:
                        live.close()
        for scheme in self._schemes:
            with local_timer.stage(scheme.name):
                columns.append(
                    scheme.compute_with_backend(candidates, stats, backend=self.backend)
                )
            scheme_seconds[scheme.name] = local_timer.get(scheme.name)
        values = (
            np.hstack(columns)
            if columns
            else np.empty((len(candidates), 0), dtype=np.float64)
        )
        if timer is not None:
            timer.add("features", local_timer.total)
        return FeatureMatrix(
            values=values,
            columns=self.columns,
            feature_set=self.feature_set,
            scheme_seconds=scheme_seconds,
            backend=self.backend,
        )


def generate_features(
    candidates: CandidateSet,
    blocks: BlockCollection,
    feature_set: Sequence[str] = ORIGINAL_FEATURE_SET,
    stats: Optional[BlockStatistics] = None,
    timer: Optional[StageTimer] = None,
    backend: str = "loop",
    workers=1,
    executor=None,
) -> FeatureMatrix:
    """Convenience wrapper: build statistics (if needed) and the feature matrix.

    ``workers``/``executor`` enable the sharded co-occurrence pass of
    :mod:`repro.parallel.features` (sparse backend only); the matrix is
    bit-identical for every worker count.
    """
    statistics = stats if stats is not None else BlockStatistics(blocks)
    generator = FeatureVectorGenerator(feature_set, backend=backend, workers=workers)
    return generator.generate(candidates, statistics, timer=timer, executor=executor)
