"""Training-set construction for (Generalized) Supervised Meta-blocking.

The classifier is trained on a small, balanced sample of labelled candidate
pairs.  Two sampling policies mirror the paper:

* ``"balanced"`` — a fixed number of labelled instances split equally between
  classes (the paper uses 500 for the algorithm/feature-selection studies and
  shows 50 suffices).
* ``"proportional"`` — the older rule of Supervised Meta-blocking [21]:
  5 % of the positive ground-truth pairs plus an equal number of negatives
  (used by the BCl2 / CNP2 baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..datamodel import CandidateSet, GroundTruth
from ..ml.sampling import TrainingSample, balanced_sample, proportional_positive_sample
from ..utils.rng import SeedLike
from .features import FeatureMatrix


@dataclass(frozen=True)
class TrainingSet:
    """Feature rows and labels selected for training, plus provenance."""

    features: np.ndarray
    labels: np.ndarray
    candidate_indices: np.ndarray
    policy: str

    def __len__(self) -> int:
        return int(self.labels.size)

    @property
    def positives(self) -> int:
        """Number of matching pairs in the training set."""
        return int(self.labels.sum())

    @property
    def negatives(self) -> int:
        """Number of non-matching pairs in the training set."""
        return len(self) - self.positives


def build_training_set(
    feature_matrix: FeatureMatrix,
    candidates: CandidateSet,
    ground_truth: GroundTruth,
    size: int = 50,
    policy: str = "balanced",
    positive_fraction: float = 0.05,
    seed: SeedLike = None,
    labels: Optional[np.ndarray] = None,
) -> TrainingSet:
    """Assemble a labelled training set from the candidate pairs.

    Parameters
    ----------
    feature_matrix:
        Features of *all* candidate pairs (training rows are selected from it).
    candidates:
        The candidate pairs the features describe.
    ground_truth:
        Known duplicate pairs used to label the sample.
    size:
        Total number of labelled instances for the ``"balanced"`` policy.
    policy:
        ``"balanced"`` (paper default) or ``"proportional"`` ([21] baseline).
    positive_fraction:
        Positive-class fraction for the ``"proportional"`` policy.
    seed:
        Sampling seed (one per repetition in the experiment runner).
    labels:
        Optional precomputed label array aligned with ``candidates``; passing
        it avoids recomputing ground-truth membership on repeated runs.
    """
    if feature_matrix.n_pairs != len(candidates):
        raise ValueError(
            "feature matrix and candidate set disagree on the number of pairs"
        )
    all_labels = labels if labels is not None else ground_truth.labels_for(candidates)
    if len(all_labels) != len(candidates):
        raise ValueError("labels array must align with the candidate set")

    if policy == "balanced":
        sample: TrainingSample = balanced_sample(all_labels, size=size, seed=seed)
    elif policy == "proportional":
        sample = proportional_positive_sample(
            all_labels, positive_fraction=positive_fraction, seed=seed
        )
    else:
        raise ValueError(f"unknown sampling policy {policy!r}")

    return TrainingSet(
        features=feature_matrix.values[sample.indices],
        labels=sample.labels.astype(np.float64),
        candidate_indices=sample.indices,
        policy=policy,
    )
