"""Supervised pruning algorithms of Generalized Supervised Meta-blocking."""

from typing import Dict, List, Type

from .base import SupervisedPruningAlgorithm, VALIDITY_THRESHOLD
from .cardinality_based import (
    SupervisedCEP,
    SupervisedCNP,
    SupervisedRCNP,
    cep_budget,
    cnp_budget,
)
from .weight_based import (
    BinaryClassifierPruning,
    SupervisedBLAST,
    SupervisedRWNP,
    SupervisedWEP,
    SupervisedWNP,
)

#: All pruning algorithms keyed by their paper names.
PRUNING_ALGORITHMS: Dict[str, Type[SupervisedPruningAlgorithm]] = {
    "BCl": BinaryClassifierPruning,
    "WEP": SupervisedWEP,
    "WNP": SupervisedWNP,
    "RWNP": SupervisedRWNP,
    "BLAST": SupervisedBLAST,
    "CEP": SupervisedCEP,
    "CNP": SupervisedCNP,
    "RCNP": SupervisedRCNP,
}

#: The weight-based algorithms of Figure 5 (plus the BCl baseline).
WEIGHT_BASED_ALGORITHMS: List[str] = ["BCl", "WEP", "WNP", "RWNP", "BLAST"]

#: The cardinality-based algorithms of Figure 6.
CARDINALITY_BASED_ALGORITHMS: List[str] = ["CEP", "CNP", "RCNP"]


def get_pruning_algorithm(name: str, **kwargs) -> SupervisedPruningAlgorithm:
    """Instantiate a pruning algorithm by its paper name."""
    try:
        algorithm_class = PRUNING_ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(PRUNING_ALGORITHMS))
        raise KeyError(
            f"unknown pruning algorithm {name!r}; known algorithms: {known}"
        ) from None
    return algorithm_class(**kwargs)


__all__ = [
    "BinaryClassifierPruning",
    "CARDINALITY_BASED_ALGORITHMS",
    "PRUNING_ALGORITHMS",
    "SupervisedBLAST",
    "SupervisedCEP",
    "SupervisedCNP",
    "SupervisedPruningAlgorithm",
    "SupervisedRCNP",
    "SupervisedRWNP",
    "SupervisedWEP",
    "SupervisedWNP",
    "VALIDITY_THRESHOLD",
    "WEIGHT_BASED_ALGORITHMS",
    "cep_budget",
    "cnp_budget",
    "get_pruning_algorithm",
]
