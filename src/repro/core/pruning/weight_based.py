"""Weight-based supervised pruning algorithms (paper Section 3.1).

All four algorithms first discard pairs with probability below 0.5 (the
*valid* pair threshold) and then apply a weight threshold:

* :class:`SupervisedWEP` — global average of the valid probabilities;
* :class:`SupervisedWNP` — per-entity average, a pair survives if it reaches
  the average of *either* constituent entity;
* :class:`SupervisedRWNP` — reciprocal variant, the pair must reach the
  average of *both* entities;
* :class:`SupervisedBLAST` — per-entity *maximum*, the pair must exceed the
  fraction ``r`` of the sum of the two maxima.

The baseline :class:`BinaryClassifierPruning` (BCl) reproduces Supervised
Meta-blocking [21]: it simply keeps every pair the classifier labels
positive, i.e. the validity threshold alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...datamodel import BlockCollection, CandidateSet
from ...utils.validation import check_ratio
from .base import SupervisedPruningAlgorithm, VALIDITY_THRESHOLD


class BinaryClassifierPruning(SupervisedPruningAlgorithm):
    """BCl — the Supervised Meta-blocking baseline of [21].

    Retains every candidate pair whose classification probability is at least
    0.5; equivalent to using the classifier as a single global threshold and
    the approximation of WEP the original paper relied on.
    """

    name = "BCl"
    kind = "baseline"

    def prune(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        blocks: Optional[BlockCollection] = None,
    ) -> np.ndarray:
        probabilities = self._validate(probabilities, candidates)
        return self.valid_mask(probabilities)


class SupervisedWEP(SupervisedPruningAlgorithm):
    """Weighted Edge Pruning — global average-probability threshold (Algorithm 1)."""

    name = "WEP"
    kind = "weight"

    def prune(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        blocks: Optional[BlockCollection] = None,
    ) -> np.ndarray:
        probabilities = self._validate(probabilities, candidates)
        valid = self.valid_mask(probabilities)
        if not np.any(valid):
            return np.zeros(len(candidates), dtype=bool)
        average = float(probabilities[valid].mean())
        return probabilities >= average


class SupervisedWNP(SupervisedPruningAlgorithm):
    """Weighted Node Pruning — per-entity average thresholds (Algorithm 2).

    A valid pair is retained when its probability reaches the average valid
    probability of at least one of its constituent entities.
    """

    name = "WNP"
    kind = "weight"

    def _node_averages(
        self, probabilities: np.ndarray, candidates: CandidateSet
    ) -> np.ndarray:
        """Average valid probability per node (infinite when a node has none)."""
        total_nodes = candidates.index_space.total
        sums = np.zeros(total_nodes, dtype=np.float64)
        counts = np.zeros(total_nodes, dtype=np.int64)
        valid = self.valid_mask(probabilities)
        left_valid = candidates.left[valid]
        right_valid = candidates.right[valid]
        valid_probabilities = probabilities[valid]
        np.add.at(sums, left_valid, valid_probabilities)
        np.add.at(counts, left_valid, 1)
        np.add.at(sums, right_valid, valid_probabilities)
        np.add.at(counts, right_valid, 1)
        averages = np.full(total_nodes, np.inf, dtype=np.float64)
        populated = counts > 0
        averages[populated] = sums[populated] / counts[populated]
        return averages

    def prune(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        blocks: Optional[BlockCollection] = None,
    ) -> np.ndarray:
        probabilities = self._validate(probabilities, candidates)
        averages = self._node_averages(probabilities, candidates)
        valid = self.valid_mask(probabilities)
        reaches_left = probabilities >= averages[candidates.left]
        reaches_right = probabilities >= averages[candidates.right]
        return valid & (reaches_left | reaches_right)


class SupervisedRWNP(SupervisedWNP):
    """Reciprocal Weighted Node Pruning — both per-entity averages must be reached."""

    name = "RWNP"
    kind = "weight"

    def prune(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        blocks: Optional[BlockCollection] = None,
    ) -> np.ndarray:
        probabilities = self._validate(probabilities, candidates)
        averages = self._node_averages(probabilities, candidates)
        valid = self.valid_mask(probabilities)
        reaches_left = probabilities >= averages[candidates.left]
        reaches_right = probabilities >= averages[candidates.right]
        return valid & reaches_left & reaches_right


class SupervisedBLAST(SupervisedPruningAlgorithm):
    """BLAST — per-entity maximum-probability thresholds (Algorithm 3).

    A valid pair ``(i, j)`` survives when its probability is at least
    ``r * (max_i + max_j)``, where ``max_i`` is the highest valid probability
    among the pairs of entity ``i``.  The paper fixes ``r = 0.35`` based on
    preliminary experiments.
    """

    name = "BLAST"
    kind = "weight"

    def __init__(self, ratio: float = 0.35) -> None:
        self.ratio = check_ratio(ratio, "ratio")

    def prune(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        blocks: Optional[BlockCollection] = None,
    ) -> np.ndarray:
        probabilities = self._validate(probabilities, candidates)
        valid = self.valid_mask(probabilities)
        total_nodes = candidates.index_space.total
        maxima = np.zeros(total_nodes, dtype=np.float64)
        np.maximum.at(maxima, candidates.left[valid], probabilities[valid])
        np.maximum.at(maxima, candidates.right[valid], probabilities[valid])
        thresholds = self.ratio * (maxima[candidates.left] + maxima[candidates.right])
        return valid & (probabilities >= thresholds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SupervisedBLAST(ratio={self.ratio})"
