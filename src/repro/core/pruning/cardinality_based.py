"""Cardinality-based supervised pruning algorithms (paper Section 3.2).

These algorithms retain a *budgeted number* of the top-weighted valid pairs:

* :class:`SupervisedCEP` — the global top-K pairs, with
  ``K = Σ_{b∈B} |b| / 2`` (Algorithm 4);
* :class:`SupervisedCNP` — a per-entity top-k, with ``k`` the average number
  of block memberships per entity; a pair survives when it is in the queue of
  *either* constituent entity (Algorithm 5);
* :class:`SupervisedRCNP` — the reciprocal variant, requiring membership in
  the queues of *both* entities.

Probability ties at the retention boundary are broken deterministically by
the packed candidate key (``left * total + right``, smaller key wins), so
the retained set is a pure function of the scored pair set — independent of
the order candidate pairs are stored in.  This is what makes the streaming
session's arrival-ordered registry (:mod:`repro.incremental`) reproduce the
batch pipeline's canonical ordering exactly for the cardinality algorithms.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ...datamodel import BlockCollection, CandidateSet
from ...utils.pqueue import BoundedTopQueue
from .base import SupervisedPruningAlgorithm


def cep_budget(blocks: BlockCollection) -> int:
    """The CEP retention budget: half the sum of block sizes, at least 1."""
    total_assignments = blocks.total_block_assignments()
    return max(1, total_assignments // 2)


def cnp_budget(blocks: BlockCollection) -> int:
    """The CNP per-entity budget: the average number of blocks per entity.

    ``k = max(1, Σ_{b∈B} |b| / (|E1| + |E2|))``, rounded to the nearest
    integer as in the reference implementation.
    """
    total_entities = blocks.index_space.total
    if total_entities == 0:
        return 1
    average = blocks.total_block_assignments() / total_entities
    return max(1, int(round(average)))


class SupervisedCEP(SupervisedPruningAlgorithm):
    """Cardinality Edge Pruning — retain the global top-K valid pairs.

    Parameters
    ----------
    budget:
        Optional explicit K; when ``None`` it is derived from the block
        collection with :func:`cep_budget`.
    """

    name = "CEP"
    kind = "cardinality"

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 1:
            raise ValueError("budget must be positive when given")
        self.budget = budget

    def prune(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        blocks: Optional[BlockCollection] = None,
    ) -> np.ndarray:
        probabilities = self._validate(probabilities, candidates)
        if self.budget is not None:
            budget = self.budget
        else:
            if blocks is None:
                raise ValueError("CEP needs the block collection to derive its budget K")
            budget = cep_budget(blocks)

        valid = self.valid_mask(probabilities)
        mask = np.zeros(len(candidates), dtype=bool)
        valid_positions = np.flatnonzero(valid)
        if valid_positions.size == 0:
            return mask
        if valid_positions.size <= budget:
            mask[valid_positions] = True
            return mask

        keys = candidates.packed_keys()
        queue: BoundedTopQueue[int] = BoundedTopQueue(budget)
        for position in valid_positions:
            queue.push(
                float(probabilities[position]), int(position), key=int(keys[position])
            )
        mask[np.array(queue.items(), dtype=np.int64)] = True
        return mask


class SupervisedCNP(SupervisedPruningAlgorithm):
    """Cardinality Node Pruning — per-entity top-k queues, OR-semantics.

    Parameters
    ----------
    budget:
        Optional explicit per-entity k; when ``None`` it is derived from the
        block collection with :func:`cnp_budget`.
    """

    name = "CNP"
    kind = "cardinality"
    #: whether a pair must be in the queue of both entities (RCNP) or one (CNP)
    require_both = False

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 1:
            raise ValueError("budget must be positive when given")
        self.budget = budget

    def _per_entity_queues(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        budget: int,
    ) -> Dict[int, Set[int]]:
        """Return, per node, the set of retained candidate-pair positions."""
        queues: Dict[int, BoundedTopQueue[int]] = {}
        keys = candidates.packed_keys()
        valid_positions = np.flatnonzero(self.valid_mask(probabilities))
        for position in valid_positions:
            probability = float(probabilities[position])
            key = int(keys[position])
            for node in (int(candidates.left[position]), int(candidates.right[position])):
                queue = queues.get(node)
                if queue is None:
                    queue = BoundedTopQueue(budget)
                    queues[node] = queue
                queue.push(probability, int(position), key=key)
        return {node: set(queue.items()) for node, queue in queues.items()}

    def prune(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        blocks: Optional[BlockCollection] = None,
    ) -> np.ndarray:
        probabilities = self._validate(probabilities, candidates)
        if self.budget is not None:
            budget = self.budget
        else:
            if blocks is None:
                raise ValueError("CNP needs the block collection to derive its budget k")
            budget = cnp_budget(blocks)

        retained_per_node = self._per_entity_queues(probabilities, candidates, budget)
        mask = np.zeros(len(candidates), dtype=bool)
        valid_positions = np.flatnonzero(self.valid_mask(probabilities))
        for position in valid_positions:
            left = int(candidates.left[position])
            right = int(candidates.right[position])
            in_left = int(position) in retained_per_node.get(left, ())
            in_right = int(position) in retained_per_node.get(right, ())
            if self.require_both:
                mask[position] = in_left and in_right
            else:
                mask[position] = in_left or in_right
        return mask


class SupervisedRCNP(SupervisedCNP):
    """Reciprocal Cardinality Node Pruning — AND-semantics over the two queues."""

    name = "RCNP"
    kind = "cardinality"
    require_both = True
