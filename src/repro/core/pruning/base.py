"""Base class for supervised pruning algorithms.

A supervised pruning algorithm receives the classification probability of
every candidate pair (produced by the trained probabilistic classifier) and
decides which pairs to retain.  Pairs with probability below
:data:`VALIDITY_THRESHOLD` (0.5) are never retained — they are not *valid*
in the paper's terminology — and the remaining pairs are filtered with either
a weight-based or a cardinality-based criterion.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ...datamodel import BlockCollection, CandidateSet

#: Candidate pairs with a classification probability below this value are
#: discarded before any pruning criterion is applied (paper Definition 2).
VALIDITY_THRESHOLD: float = 0.5


class SupervisedPruningAlgorithm(ABC):
    """Decide which candidate pairs to retain given their match probabilities."""

    #: short name used in reports ("WEP", "BLAST", ...)
    name: str = "pruning"
    #: "weight", "cardinality" or "baseline"
    kind: str = "weight"

    @abstractmethod
    def prune(
        self,
        probabilities: np.ndarray,
        candidates: CandidateSet,
        blocks: Optional[BlockCollection] = None,
    ) -> np.ndarray:
        """Return a boolean mask over the candidate pairs (True = retained).

        Parameters
        ----------
        probabilities:
            Positive-class probability of every candidate pair, aligned with
            ``candidates``.
        candidates:
            The candidate pairs being pruned.
        blocks:
            The originating block collection; required by cardinality-based
            algorithms to derive their retention budgets (K and k).
        """

    # -- shared helpers -------------------------------------------------------------
    @staticmethod
    def _validate(probabilities: np.ndarray, candidates: CandidateSet) -> np.ndarray:
        """Validate and return the probabilities as a float array."""
        array = np.asarray(probabilities, dtype=np.float64)
        if array.ndim != 1:
            raise ValueError("probabilities must be a 1-D array")
        if array.size != len(candidates):
            raise ValueError(
                f"expected {len(candidates)} probabilities, got {array.size}"
            )
        if array.size and (array.min() < 0.0 or array.max() > 1.0):
            raise ValueError("probabilities must lie in [0, 1]")
        return array

    @staticmethod
    def valid_mask(probabilities: np.ndarray) -> np.ndarray:
        """Mask of *valid* pairs (probability at least 0.5)."""
        return np.asarray(probabilities, dtype=np.float64) >= VALIDITY_THRESHOLD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
